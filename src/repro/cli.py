"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``figures [fig9|fig10|fig11|fig12|fig13|table1|overhead|all]`` — run the
  experiment harness behind one (or every) figure of the paper and print the
  series as a table.
* ``demo`` — run the quickstart workload (the paper's running example) and
  print the shared versus non-shared results.

The CLI is a thin wrapper over :mod:`repro.bench`; anything it does can also
be done programmatically (see README.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.bench import fig9, fig10, fig11, fig12, fig13, overhead, table1

_FIGURES: dict[str, Callable[[], None]] = {
    "fig9": fig9.main,
    "fig10": fig10.main,
    "fig11": fig11.main,
    "fig12": fig12.main,
    "fig13": fig13.main,
    "table1": table1.main,
    "overhead": overhead.main,
}


def _run_figures(names: Sequence[str]) -> None:
    targets = list(_FIGURES) if "all" in names else list(names)
    for name in targets:
        if name not in _FIGURES:
            raise SystemExit(f"unknown figure {name!r}; choose from {', '.join(_FIGURES)} or 'all'")
        print(f"==== {name} " + "=" * (60 - len(name)))
        _FIGURES[name]()
        print()


def _run_demo() -> None:
    from repro.core import HamletEngine
    from repro.events import Event, EventStream
    from repro.greta import GretaEngine
    from repro.query import Query, Window, kleene, seq
    from repro.runtime import WorkloadExecutor

    queries = [
        Query.build(seq("A", kleene("B")), window=Window.minutes(10), name="q1"),
        Query.build(seq("C", kleene("B")), window=Window.minutes(10), name="q2"),
    ]
    stream = EventStream(
        [Event("A", 0.0), Event("A", 1.0), Event("C", 2.0)]
        + [Event("B", 3.0 + i) for i in range(4)]
    )
    hamlet = WorkloadExecutor(queries, HamletEngine).run(stream)
    greta = WorkloadExecutor(queries, GretaEngine).run(stream)
    print("HAMLET (shared):   ", {k: round(v) for k, v in sorted(hamlet.totals.items())})
    print("GRETA (non-shared):", {k: round(v) for k, v in sorted(greta.totals.items())})


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HAMLET reproduction: adaptive shared online event trend aggregation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    figures = subparsers.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "names", nargs="*", default=["all"], help="figure ids (fig9..fig13, table1, overhead, all)"
    )
    subparsers.add_parser("demo", help="run the quickstart workload")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "figures":
        _run_figures(arguments.names or ["all"])
    elif arguments.command == "demo":
        _run_demo()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
