"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``figures [fig9|fig10|fig11|fig12|fig13|table1|overhead|all]`` — run the
  experiment harness behind one (or every) figure of the paper and print the
  series as a table.
* ``demo`` — run the quickstart workload (the paper's running example) and
  print the shared versus non-shared results.
* ``stream`` — run a ridesharing workload through the single-pass
  :class:`~repro.runtime.StreamingExecutor`, printing every window result as
  it is emitted, followed by the latency/memory summary.

The CLI is a thin wrapper over :mod:`repro.bench`; anything it does can also
be done programmatically (see README.md).
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Callable, Sequence

from repro.bench import fig9, fig10, fig11, fig12, fig13, overhead, table1

_FIGURES: dict[str, Callable[[], None]] = {
    "fig9": fig9.main,
    "fig10": fig10.main,
    "fig11": fig11.main,
    "fig12": fig12.main,
    "fig13": fig13.main,
    "table1": table1.main,
    "overhead": overhead.main,
}


def _run_figures(names: Sequence[str]) -> None:
    targets = list(_FIGURES) if "all" in names else list(names)
    for name in targets:
        if name not in _FIGURES:
            raise SystemExit(f"unknown figure {name!r}; choose from {', '.join(_FIGURES)} or 'all'")
        print(f"==== {name} " + "=" * (60 - len(name)))
        _FIGURES[name]()
        print()


def _run_demo() -> None:
    from repro.core import HamletEngine
    from repro.events import Event, EventStream
    from repro.greta import GretaEngine
    from repro.query import Query, Window, kleene, seq
    from repro.runtime import WorkloadExecutor

    queries = [
        Query.build(seq("A", kleene("B")), window=Window.minutes(10), name="q1"),
        Query.build(seq("C", kleene("B")), window=Window.minutes(10), name="q2"),
    ]
    stream = EventStream(
        [Event("A", 0.0), Event("A", 1.0), Event("C", 2.0)]
        + [Event("B", 3.0 + i) for i in range(4)]
    )
    hamlet = WorkloadExecutor(queries, HamletEngine).run(stream)
    greta = WorkloadExecutor(queries, GretaEngine).run(stream)
    print("HAMLET (shared):   ", {k: round(v) for k, v in sorted(hamlet.totals.items())})
    print("GRETA (non-shared):", {k: round(v) for k, v in sorted(greta.totals.items())})


def _print_late_event(event) -> None:
    """Side-output printer for ``--late-policy side_output`` (module level:
    reprolint RL003 keeps every process-boundary callable picklable, and the
    sharded executor takes this callback even though it only runs driver-side
    with ``workers=0``)."""
    print(f"late event: {event.event_type} at {event.time:.1f}s routed to side output")


def _hamlet_with_policy(policy: str):
    """Module-level engine factory: picklable for shard workers even under
    the ``spawn`` multiprocessing start method (a lambda would not be)."""
    from repro.core import HamletEngine
    from repro.optimizer import OPTIMIZER_POLICIES

    return HamletEngine(OPTIMIZER_POLICIES[policy]())


def _run_stream(
    queries: int,
    minutes: float,
    events_per_minute: float,
    shared_windows: bool,
    workers: int | None,
    shard_batch: int,
    optimizer: str | None,
    burst_size: int | None,
    kernel_backend: str | None,
    transport: str,
    allowed_lateness: float | None,
    late_policy: str,
    checkpoint_dir: str | None,
    checkpoint_interval: int,
    max_restarts: int,
) -> None:
    from repro.core import HamletEngine
    from repro.datasets.ridesharing import RidesharingGenerator
    from repro.query import Window
    from repro.runtime import ShardedStreamingExecutor, StreamingExecutor, WindowResult
    from repro.bench.workloads import kleene_sharing_workload, multi_aggregate_workload

    window = Window.minutes(1.0, 0.2)  # overlapping: slide = size/5
    if optimizer is not None:
        # Adaptive sharing needs query classes with something to share:
        # runs of identical patterns differing only in their aggregate.
        workload = multi_aggregate_workload(queries, kleene_type="Travel", window=window)
        engine_factory = functools.partial(_hamlet_with_policy, optimizer)
    else:
        workload = kleene_sharing_workload(queries, kleene_type="Travel", window=window)
        engine_factory = HamletEngine
    stream = RidesharingGenerator(
        events_per_minute=events_per_minute, seed=7, districts=3
    ).generate(minutes * 60.0)

    def print_decisions(report) -> None:
        if optimizer is None:
            return
        statistics = report.optimizer_statistics
        if statistics is None or not statistics.decisions:
            print(f"optimizer {optimizer}: no sharing decisions (no eligible query classes)")
            return
        print(
            f"optimizer {optimizer}: {statistics.decisions} decisions, "
            f"{statistics.shared_bursts} shared / {statistics.non_shared_bursts} "
            f"non-shared bursts (shared fraction "
            f"{statistics.shared_fraction * 100.0:.1f}%), "
            f"{statistics.merges} merges, {statistics.splits} splits"
        )

    def emit(result: WindowResult) -> None:
        total = sum(result.results.values())
        flag = " (retraction)" if result.retraction else ""
        print(
            f"window [{result.window_start:7.1f}s, {result.window_end:7.1f}s) "
            f"group={result.group_key} events={result.events:5d} "
            f"trends={total:g} latency={result.emission_latency * 1e3:.2f}ms{flag}"
        )

    on_late = _print_late_event if late_policy == "side_output" else None

    def print_lateness(metrics) -> None:
        if allowed_lateness is None:
            return
        print(
            f"lateness horizon {allowed_lateness:g}s, policy {late_policy}: "
            f"{metrics.late_dropped} dropped, {metrics.late_side_output} "
            f"side-output, {metrics.late_retracted} retracted"
        )

    if workers is not None:
        # Sharded run: window results cross process boundaries at finish(),
        # so the per-window live feed is replaced by the per-shard summary.
        executor = ShardedStreamingExecutor(
            workload,
            engine_factory,
            workers=workers,
            batch_size=shard_batch,
            shared_windows=shared_windows,
            optimizer=optimizer,
            burst_size=burst_size,
            kernel_backend=kernel_backend,
            transport=transport,
            allowed_lateness=allowed_lateness,
            late_policy=late_policy,
            on_late=on_late,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=checkpoint_interval,
            max_restarts=max_restarts,
        )
        report = executor.run(stream)
        metrics = report.metrics
        print(
            f"sharded execution: {executor.shard_count} shard(s), "
            f"{workers} worker process(es), routing by {executor.routing_mode}, "
            f"batches of {shard_batch} over the {transport} transport"
        )
        for shard in report.shards:
            print(
                f"  shard {shard.shard_id}: {shard.events:6d} events "
                f"in {shard.batches} batches -> "
                f"{shard.report.metrics.partitions} windows"
            )
        print(
            f"{metrics.stream_events} events -> {metrics.partitions} windows "
            f"in {metrics.wall_seconds:.3f}s wall = "
            f"{metrics.throughput_wall:,.0f} events/s wall-clock "
            f"({metrics.throughput_engine:,.0f} events/s per engine-second)"
        )
        recovery = report.recovery
        if recovery is not None:
            print(
                f"recovery: {recovery.restarts} restart(s), "
                f"{recovery.replayed_events} event(s) replayed in "
                f"{recovery.replayed_batches} batch(es), "
                f"{recovery.checkpoints} checkpoint(s) / "
                f"{recovery.checkpoint_bytes:,} bytes written "
                f"(driver waited {metrics.driver_wait_seconds:.3f}s)"
            )
        print_lateness(metrics)
        print_decisions(report)
        return

    executor = StreamingExecutor(
        workload,
        engine_factory,
        on_window=emit,
        shared_windows=shared_windows,
        optimizer=optimizer,
        burst_size=burst_size,
        kernel_backend=kernel_backend,
        allowed_lateness=allowed_lateness,
        late_policy=late_policy,
        on_late=on_late,
    )
    report = executor.run(stream)
    metrics = report.metrics
    overlap_factor = window.instances_per_event
    feeds_per_event = (
        executor.engine_feeds / metrics.stream_events if metrics.stream_events else 0.0
    )
    mode = "shared-window" if shared_windows else "per-instance"
    print(
        f"\n{metrics.stream_events} events -> {metrics.partitions} windows, "
        f"peak {metrics.peak_active_windows} active "
        f"(avg emission latency {metrics.average_emission_latency * 1e3:.2f}ms, "
        f"peak memory {metrics.peak_memory_units} units)"
    )
    print(
        f"{mode} execution: overlap factor {overlap_factor} "
        f"(ceil(size/slide)), {executor.engine_feeds} engine feeds = "
        f"{feeds_per_event:.2f} per event"
    )
    print(
        f"wall-clock throughput: {metrics.throughput_wall:,.0f} events/s "
        f"({metrics.wall_seconds:.3f}s wall)"
    )
    print_lateness(metrics)
    print_decisions(report)


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HAMLET reproduction: adaptive shared online event trend aggregation",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    figures = subparsers.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "names", nargs="*", default=["all"], help="figure ids (fig9..fig13, table1, overhead, all)"
    )
    subparsers.add_parser("demo", help="run the quickstart workload")
    stream = subparsers.add_parser(
        "stream", help="run the single-pass streaming executor, emitting window results live"
    )
    stream.add_argument("--queries", type=int, default=5, help="number of workload queries")
    stream.add_argument("--minutes", type=float, default=2.0, help="stream duration in minutes")
    stream.add_argument(
        "--events-per-minute", type=float, default=1200.0, help="stream arrival rate"
    )
    stream.add_argument(
        "--shared-windows",
        dest="shared_windows",
        action="store_true",
        default=True,
        help="evaluate overlapping window instances with one shared engine (default)",
    )
    stream.add_argument(
        "--no-shared-windows",
        dest="shared_windows",
        action="store_false",
        help="fall back to one engine per window instance (the reference path)",
    )
    stream.add_argument(
        "--workers",
        type=_non_negative_int,
        default=None,
        metavar="N",
        help="run sharded: N worker processes (0 = shard in-process); "
        "default is the unsharded single-process executor",
    )
    stream.add_argument(
        "--shard-batch",
        type=_positive_int,
        default=512,
        metavar="SIZE",
        help="events per batch shipped to shard workers (default: 512)",
    )
    stream.add_argument(
        "--optimizer",
        choices=("dynamic", "always", "never", "static"),
        default=None,
        help="adaptive per-burst sharing policy (uses the multi-aggregate "
        "workload so query classes have members to share); default: the "
        "static compile-time plan with no burst segmentation",
    )
    stream.add_argument(
        "--burst-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cap bursts at N events (default: maximal same-type runs)",
    )
    stream.add_argument(
        "--kernel-backend",
        choices=("python", "numpy", "auto"),
        default=None,
        help="burst-fold kernel backend; auto picks per burst by run "
        "length; default: REPRO_KERNEL_BACKEND or the pure-Python "
        "reference (numpy needs the [numpy] extra)",
    )
    stream.add_argument(
        "--transport",
        choices=("pickle", "shm"),
        default="pickle",
        help="how batches reach shard workers (--workers >= 1): pickled "
        "blobs through the queues, or columnar buffers in reusable "
        "shared-memory slabs (default: pickle)",
    )
    stream.add_argument(
        "--allowed-lateness",
        type=float,
        default=None,
        metavar="SECONDS",
        help="buffer and re-sort events arriving up to SECONDS behind the "
        "max event time seen (the watermark) instead of rejecting any "
        "out-of-order arrival; default: strict in-order ingestion",
    )
    stream.add_argument(
        "--late-policy",
        choices=("raise", "drop", "side_output", "retract"),
        default="raise",
        help="what to do with events later than the --allowed-lateness "
        "horizon: fail the run, drop (counted), hand to a side-output "
        "callback, or retract-and-recompute the affected windows "
        "(default: raise)",
    )
    stream.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        default=None,
        help="checkpoint shard state into PATH at window boundaries and "
        "supervise workers: a crashed worker is respawned, restored from "
        "its last checkpoint and fed the replayed tail (requires "
        "--workers; default: no checkpointing, crashes are fatal)",
    )
    stream.add_argument(
        "--checkpoint-interval",
        type=_positive_int,
        default=16,
        metavar="N",
        help="windows closed between checkpoints (default: 16)",
    )
    stream.add_argument(
        "--max-restarts",
        type=_non_negative_int,
        default=3,
        metavar="K",
        help="worker respawns before a crash becomes fatal (default: 3)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if (
        arguments.command == "stream"
        and arguments.burst_size is not None
        and arguments.optimizer is None
        and arguments.kernel_backend not in ("numpy", "auto")
    ):
        parser.error(
            "--burst-size requires --optimizer (bursts are adaptive-mode only) "
            "or --kernel-backend numpy/auto (which fold bursts without one)"
        )
    if (
        arguments.command == "stream"
        and arguments.late_policy != "raise"
        and arguments.allowed_lateness is None
    ):
        parser.error(
            "--late-policy requires --allowed-lateness (without a horizon "
            "there is no watermark to be late against)"
        )
    if (
        arguments.command == "stream"
        and arguments.late_policy == "side_output"
        and arguments.workers is not None
        and arguments.workers > 0
    ):
        parser.error(
            "--late-policy side_output requires --workers 0 or the "
            "unsharded executor (the side-output callback cannot cross "
            "a process boundary)"
        )
    if (
        arguments.command == "stream"
        and arguments.checkpoint_dir is not None
        and arguments.workers is None
    ):
        parser.error(
            "--checkpoint-dir requires --workers (checkpointing belongs to "
            "the sharded runtime)"
        )
    if arguments.command == "figures":
        _run_figures(arguments.names or ["all"])
    elif arguments.command == "demo":
        _run_demo()
    elif arguments.command == "stream":
        _run_stream(
            arguments.queries,
            arguments.minutes,
            arguments.events_per_minute,
            arguments.shared_windows,
            arguments.workers,
            arguments.shard_batch,
            arguments.optimizer,
            arguments.burst_size,
            arguments.kernel_backend,
            arguments.transport,
            arguments.allowed_lateness,
            arguments.late_policy,
            arguments.checkpoint_dir,
            arguments.checkpoint_interval,
            arguments.max_restarts,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
