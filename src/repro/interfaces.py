"""Common engine interface.

Every aggregation engine (HAMLET, GRETA, the two-step MCEP-style baseline,
the SHARON-style flattened-sequence baseline, and the brute-force oracle)
implements :class:`TrendAggregationEngine`.  An engine instance evaluates a
*partition*: the sub-stream of events belonging to one group-by key and one
window instance of a set of queries.  Routing events into partitions is the
job of :mod:`repro.runtime`.

The interface is deliberately small:

* :meth:`TrendAggregationEngine.start` resets the engine for a set of queries,
* :meth:`TrendAggregationEngine.process` ingests one event,
* :meth:`TrendAggregationEngine.results` returns the final aggregate per query,
* :meth:`TrendAggregationEngine.memory_units` reports an abstract memory
  footprint (number of stored events, intermediate aggregates, snapshot
  entries, ...) used for the paper's memory figures.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable, Mapping, Protocol, Sequence, runtime_checkable

from repro.events.event import Event
from repro.query.query import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports us)
    from repro.runtime.executor import ExecutionReport

#: Result type: final aggregate value per query name.
ResultMap = Mapping[str, float]


@runtime_checkable
class StreamProcessor(Protocol):
    """The worker-facing runtime interface: feed events, then flush.

    This is the contract the sharded driver
    (:class:`~repro.runtime.sharding.ShardedStreamingExecutor`) programs
    against: a shard worker is *any* object that accepts in-order events one
    at a time and produces an
    :class:`~repro.runtime.executor.ExecutionReport` when the stream ends.
    The single-process :class:`~repro.runtime.streaming.StreamingExecutor`
    satisfies it unchanged — which is exactly what lets an unmodified
    streaming executor run as a shard worker — and the sharded driver
    satisfies it too, so drivers nest.
    """

    def process(self, event: Event) -> None:
        """Ingest one event (events arrive in non-decreasing time order)."""
        ...

    def finish(self) -> "ExecutionReport":
        """Close all remaining state and return the final report."""
        ...


class TrendAggregationEngine(abc.ABC):
    """Abstract base class of all trend aggregation engines."""

    #: Human-readable engine name used in benchmark reports.
    name: str = "engine"

    #: How this engine's work can be shared across overlapping window
    #: instances by the streaming runtime (see
    #: :mod:`repro.runtime.shared_windows`):
    #:
    #: * ``None`` — no shared-window implementation; the runtime falls back
    #:   to one engine instance per ``(group, window instance)`` partition;
    #: * ``"classes"`` — linear aggregation whose per-event work may be done
    #:   once per *query class* (queries with identical template + predicates)
    #:   and tagged with per-window coefficients (the HAMLET flavour);
    #: * ``"per-query"`` — linear aggregation evaluated independently per
    #:   query but still sharing the event graph across window instances
    #:   (the GRETA flavour; no cross-query sharing).
    shared_window_flavor: str | None = None

    @abc.abstractmethod
    def start(self, queries: Sequence[Query]) -> None:
        """Reset the engine and prepare to evaluate ``queries`` over one partition."""

    @abc.abstractmethod
    def process(self, event: Event) -> None:
        """Ingest one event of the partition (events arrive in time order)."""

    @abc.abstractmethod
    def results(self) -> dict[str, float]:
        """Return the final aggregate of every query over the ingested events."""

    @abc.abstractmethod
    def memory_units(self) -> int:
        """Approximate memory footprint in abstract units.

        Units count stored events, per-event intermediate aggregates, snapshot
        table entries and per-query bookkeeping, mirroring how the paper
        measures "peak memory" across approaches.
        """

    def close(self) -> None:
        """Release the per-partition state built since :meth:`start`.

        Called by the streaming executor when a window instance is evicted:
        the engine must drop the graph/table state of the finished partition
        (so pooled idle engines hold no window state) while *keeping* compiled
        artifacts that are pure functions of the query set (templates, sharing
        analysis), which makes restarting a pooled engine cheap.  The default
        is a no-op; engines that hold per-partition state override it.
        """

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def evaluate(self, queries: Sequence[Query], events: Iterable[Event]) -> dict[str, float]:
        """Evaluate ``queries`` over ``events`` in one go and return the results."""
        self.start(queries)
        for event in events:
            self.process(event)
        return self.results()

    def operations(self) -> int:
        """Abstract count of work units performed since :meth:`start`.

        Engines increment an internal counter for every predecessor access,
        snapshot evaluation and aggregate update.  The benchmark harness uses
        this as a machine-independent cost signal alongside wall-clock time.
        """
        return 0


class MultiWindowEngine(abc.ABC):
    """One engine evaluating *all* overlapping window instances of a unit.

    Where a :class:`TrendAggregationEngine` instance evaluates a single
    ``(group key, window instance)`` partition, a multi-window engine holds
    the state of one ``(group key, execution unit)`` pair across **every**
    live window instance at once: :meth:`process` does the graph work of an
    event exactly once and tags the per-window aggregates with
    window-instance coefficients, and :meth:`close_window` turns a window's
    close into an O(window) coefficient readout plus eviction.

    The contract mirrors the streaming executor's driving loop:

    * events arrive in timestamp order; every call passes the inclusive
      range ``[lo, hi]`` of window-instance indices covering the event —
      which, for an in-order stream, is exactly the set of live instances;
    * :meth:`close_window` is called once per instance, in ascending index
      order, the moment the stream passes the instance's end; it returns
      the final aggregate per query and evicts the instance's coefficients;
    * :meth:`evict_to` drops stored events that fall outside every window
      instance at or after ``oldest`` (``None`` empties the store).
    """

    @abc.abstractmethod
    def process(self, event: Event, lo: int, hi: int) -> None:
        """Ingest one event covered by window instances ``lo..hi`` (inclusive)."""

    @abc.abstractmethod
    def close_window(self, index: int) -> dict[str, float]:
        """Read out the final aggregates of instance ``index`` and evict it."""

    @abc.abstractmethod
    def memory_units(self) -> int:
        """Abstract footprint of the shared state (see the engine variant)."""

    def evict_to(self, oldest: int | None) -> None:
        """Drop stored events not covered by any instance ``>= oldest``."""

    def operations(self) -> int:
        """Abstract work units performed so far (monotone counter)."""
        return 0
