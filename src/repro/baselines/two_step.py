"""MCEP-style two-step engine: shared trend construction, then aggregation.

MCEP [22] is the strongest shared *two-step* competitor in the paper: it
shares the construction of event trends across queries but still materializes
every trend before aggregating, so its cost remains exponential in the number
of matched events per window (Section 1, Figure 9).

This engine reproduces that structure:

1. queries whose pattern and predicates coincide share one trend-construction
   pass (the "shared construction" aspect of MCEP),
2. every constructed trend is kept (memory accounting mirrors the paper:
   the current trend plus matched events), and
3. aggregation is a post-processing step over the constructed trends.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ExecutionError
from repro.events.event import Event
from repro.baselines.brute_force import Trend, enumerate_trends, trend_aggregate
from repro.interfaces import TrendAggregationEngine
from repro.query.query import Query


class TwoStepEngine(TrendAggregationEngine):
    """Shared trend construction followed by per-query aggregation."""

    name = "two-step"

    def __init__(self, *, max_events: int = 512, max_trends: int = 2_000_000) -> None:
        #: Trend construction is exponential; refuse partitions beyond this size.
        self.max_events = max_events
        #: Refuse to construct more than this many trends per partition — the
        #: guard that keeps benchmark runs from exploding when a partition is
        #: denser than the two-step approach can realistically handle.
        self.max_trends = max_trends
        self._queries: tuple[Query, ...] = ()
        self._events: list[Event] = []
        self._constructed_trends = 0
        self._started = False

    # ------------------------------------------------------------------ #
    # Engine interface
    # ------------------------------------------------------------------ #
    def start(self, queries: Sequence[Query]) -> None:
        if not queries:
            raise ExecutionError("TwoStepEngine.start requires at least one query")
        self._queries = tuple(queries)
        self._events = []
        self._constructed_trends = 0
        self._started = True

    def process(self, event: Event) -> None:
        if not self._started:
            raise ExecutionError("TwoStepEngine.process called before start()")
        self._events.append(event)
        if len(self._events) > self.max_events:
            raise ExecutionError(
                f"two-step engine refuses partitions larger than {self.max_events} events"
            )

    def results(self) -> dict[str, float]:
        if not self._started:
            raise ExecutionError("TwoStepEngine.results called before start()")
        results: dict[str, float] = {}
        self._constructed_trends = 0
        construction_cache: dict[tuple, list[Trend]] = {}
        for query in self._queries:
            key = self._construction_key(query)
            if key not in construction_cache:
                trends: list[Trend] = []
                for trend in enumerate_trends(query, self._events):
                    trends.append(trend)
                    if self._constructed_trends + len(trends) > self.max_trends:
                        raise ExecutionError(
                            f"two-step engine exceeded {self.max_trends} constructed trends; "
                            "reduce the partition size for this baseline"
                        )
                construction_cache[key] = trends
                self._constructed_trends += len(trends)
            results[query.name] = trend_aggregate(query, construction_cache[key])
        return results

    def memory_units(self) -> int:
        """Matched events plus one unit per constructed trend plus per-query results."""
        return len(self._events) + self._constructed_trends + len(self._queries)

    def operations(self) -> int:
        return self._constructed_trends

    # ------------------------------------------------------------------ #
    # Sharing of the construction step
    # ------------------------------------------------------------------ #
    @staticmethod
    def _construction_key(query: Query) -> tuple:
        """Queries with equal keys share one trend-construction pass."""
        return (query.pattern.describe(), query.predicates.signature())
