"""Baseline engines the paper compares HAMLET against.

* :class:`~repro.baselines.brute_force.BruteForceOracle` — exhaustive trend
  enumeration; used as the correctness oracle in tests and as the
  "two-step, non-shared" lower bound.
* :class:`~repro.baselines.two_step.TwoStepEngine` — MCEP-style shared trend
  *construction* followed by per-query aggregation.
* :class:`~repro.baselines.flat_sequences.FlatSequenceEngine` — SHARON-style
  online aggregation of fixed-length sequences; Kleene patterns are flattened
  into a workload of bounded-length sequence queries.
"""

from repro.baselines.brute_force import BruteForceOracle, enumerate_trends, trend_aggregate
from repro.baselines.flat_sequences import FlatSequenceEngine
from repro.baselines.two_step import TwoStepEngine

__all__ = [
    "BruteForceOracle",
    "FlatSequenceEngine",
    "TwoStepEngine",
    "enumerate_trends",
    "trend_aggregate",
]
