"""Exhaustive trend enumeration.

The oracle constructs every event trend matched by a query (Definition 3)
and aggregates over the constructed trends.  Its cost is exponential in the
number of matched events, which is precisely why the paper's two-step
approaches cannot keep up — but it is the most direct encoding of the query
semantics, so the test suite uses it to validate every online engine on
small inputs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.events.event import Event
from repro.interfaces import TrendAggregationEngine
from repro.query.aggregates import AggregateKind
from repro.query.query import Query
from repro.template.template import QueryTemplate, compile_pattern

#: A trend is simply the tuple of its events in temporal order.
Trend = tuple[Event, ...]


def _matched_positive(query: Query, template: QueryTemplate, events: Sequence[Event]) -> list[Event]:
    return [
        event
        for event in events
        if event.event_type in template.event_types and query.accepts_event(event)
    ]


def _negative_events(query: Query, template: QueryTemplate, events: Sequence[Event]) -> list[Event]:
    return [
        event
        for event in events
        if event.event_type in template.negated_types and query.accepts_event(event)
    ]


def _edge_allowed(
    query: Query,
    template: QueryTemplate,
    negatives: Sequence[Event],
    previous: Event,
    current: Event,
) -> bool:
    if current.event_type not in template.successor_types(previous.event_type):
        return False
    if not previous < current:
        return False
    if not query.accepts_edge(previous, current):
        return False
    for constraint in template.negations:
        if not constraint.after_types:
            continue
        if previous.event_type not in constraint.before_types:
            continue
        if current.event_type not in constraint.after_types:
            continue
        for negative in negatives:
            if negative.event_type == constraint.negated_type and previous < negative < current:
                return False
    return True


def _trend_complete(
    template: QueryTemplate, negatives: Sequence[Event], last_event: Event
) -> bool:
    if last_event.event_type not in template.end_types:
        return False
    for constraint in template.negations:
        if constraint.after_types:
            continue
        if last_event.event_type not in constraint.before_types:
            continue
        for negative in negatives:
            if negative.event_type == constraint.negated_type and last_event < negative:
                return False
    return True


def enumerate_trends(query: Query, events: Iterable[Event]) -> Iterator[Trend]:
    """Yield every trend matched by ``query`` over ``events``.

    Events must already belong to a single group/window partition; windows
    and grouping are not re-checked here.
    """
    ordered = sorted(events)
    template = compile_pattern(query.pattern)
    matched = _matched_positive(query, template, ordered)
    negatives = _negative_events(query, template, ordered)

    def extend(trend: list[Event]) -> Iterator[Trend]:
        last = trend[-1]
        if _trend_complete(template, negatives, last):
            yield tuple(trend)
        for candidate in matched:
            if _edge_allowed(query, template, negatives, last, candidate):
                trend.append(candidate)
                yield from extend(trend)
                trend.pop()

    for event in matched:
        if template.is_start(event.event_type):
            yield from extend([event])


def trend_aggregate(query: Query, trends: Iterable[Trend]) -> float:
    """Aggregate constructed trends according to the query's RETURN clause."""
    aggregate = query.aggregate
    kind = aggregate.kind
    if kind is AggregateKind.COUNT_TRENDS:
        return float(sum(1 for _ in trends))
    if kind is AggregateKind.COUNT_EVENTS:
        return float(
            sum(
                sum(1 for event in trend if event.event_type == aggregate.event_type)
                for trend in trends
            )
        )
    if kind is AggregateKind.SUM:
        return float(
            sum(
                sum(
                    float(event[aggregate.attribute])
                    for event in trend
                    if event.event_type == aggregate.event_type
                )
                for trend in trends
            )
        )
    if kind is AggregateKind.AVG:
        total = 0.0
        count = 0
        for trend in trends:
            for event in trend:
                if event.event_type == aggregate.event_type:
                    total += float(event[aggregate.attribute])
                    count += 1
        return total / count if count else 0.0
    # MIN / MAX
    values = [
        float(event[aggregate.attribute])
        for trend in trends
        for event in trend
        if event.event_type == aggregate.event_type
    ]
    if not values:
        return 0.0
    return min(values) if kind is AggregateKind.MIN else max(values)


class BruteForceOracle(TrendAggregationEngine):
    """Two-step, non-shared engine: construct every trend, then aggregate."""

    name = "brute-force"

    def __init__(self, *, max_events: int = 64) -> None:
        #: Safety valve: enumeration is exponential, so refuse unexpectedly
        #: large partitions instead of hanging the test suite.
        self.max_events = max_events
        self._queries: tuple[Query, ...] = ()
        self._events: list[Event] = []
        self._trend_count = 0
        self._started = False

    def start(self, queries: Sequence[Query]) -> None:
        if not queries:
            raise ExecutionError("BruteForceOracle.start requires at least one query")
        self._queries = tuple(queries)
        self._events = []
        self._trend_count = 0
        self._started = True

    def process(self, event: Event) -> None:
        if not self._started:
            raise ExecutionError("BruteForceOracle.process called before start()")
        self._events.append(event)
        if len(self._events) > self.max_events:
            raise ExecutionError(
                f"brute-force oracle refuses partitions larger than {self.max_events} events"
            )

    def results(self) -> dict[str, float]:
        if not self._started:
            raise ExecutionError("BruteForceOracle.results called before start()")
        results: dict[str, float] = {}
        self._trend_count = 0
        for query in self._queries:
            trends = list(enumerate_trends(query, self._events))
            self._trend_count += len(trends)
            results[query.name] = trend_aggregate(query, trends)
        return results

    def memory_units(self) -> int:
        """Stored events plus one unit per constructed trend."""
        return len(self._events) + self._trend_count

    def operations(self) -> int:
        return self._trend_count
