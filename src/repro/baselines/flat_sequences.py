"""SHARON-style engine: online aggregation of fixed-length sequences.

SHARON [35] aggregates event sequences online (no construction) but does not
support Kleene closure.  Following the paper's methodology (Section 6.1), a
Kleene pattern ``E+`` is flattened into a set of fixed-length sequence
queries covering every length up to the longest possible match, and the whole
flattened workload is evaluated.  The per-length counting uses the classic
A-Seq dynamic program: ``cnt[i]`` is the number of matches of the length-i
prefix, updated in reverse position order for each arriving event.

The flattening explodes the workload (one sub-query per possible trend
length), which is exactly why SHARON falls orders of magnitude behind the
Kleene-native engines on bursty streams — the behaviour Figures 9 and 10
report.

Limitations mirroring SHARON's model: only local predicates are applied (the
fixed-length DP has no access to the concrete previous event, so edge
predicates such as ``[driver, rider]`` are ignored), and only COUNT(*) /
COUNT(E) / SUM / AVG aggregates are supported.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ExecutionError
from repro.events.event import Event, EventType
from repro.interfaces import TrendAggregationEngine
from repro.query.aggregates import AggregateKind
from repro.query.pattern import EventTypePattern, Kleene, Pattern, Sequence as SeqPattern
from repro.query.query import Query


class _FlattenedQuery:
    """One fixed-length sequence query produced by flattening a Kleene query."""

    def __init__(self, owner: Query, type_sequence: tuple[EventType, ...]) -> None:
        self.owner = owner
        self.type_sequence = type_sequence
        # counts[i] = number of matches of the prefix of length i; counts[0] = 1.
        self.counts = [1.0] + [0.0] * len(type_sequence)
        # Companion DP for SUM/COUNT(E)/AVG measures: totals[i] accumulates the
        # measure over all matches of the prefix of length i.
        self.measure_totals = [0.0] * (len(type_sequence) + 1)
        self.measure_counts = [0.0] * (len(type_sequence) + 1)

    def update(self, event: Event) -> int:
        """Feed one event through the DP; returns the number of updates performed."""
        updates = 0
        aggregate = self.owner.aggregate
        for position in range(len(self.type_sequence), 0, -1):
            if self.type_sequence[position - 1] != event.event_type:
                continue
            prefix_count = self.counts[position - 1]
            if prefix_count == 0.0 and self.measure_totals[position - 1] == 0.0:
                continue
            self.counts[position] += prefix_count
            if aggregate.kind in (AggregateKind.SUM, AggregateKind.AVG, AggregateKind.COUNT_EVENTS):
                contribution = aggregate.contribution(event)
                self.measure_totals[position] += (
                    self.measure_totals[position - 1] + contribution * prefix_count
                )
                if event.event_type == aggregate.event_type:
                    self.measure_counts[position] += self.measure_counts[position - 1] + prefix_count
                else:
                    self.measure_counts[position] += self.measure_counts[position - 1]
            updates += 1
        return updates

    @property
    def full_match_count(self) -> float:
        return self.counts[-1]

    @property
    def full_match_measure(self) -> float:
        return self.measure_totals[-1]

    @property
    def full_match_measure_count(self) -> float:
        return self.measure_counts[-1]


def flatten_pattern(pattern: Pattern, kleene_budget: int) -> list[tuple[EventType, ...]]:
    """Flatten a pattern into fixed-length event-type sequences.

    Every Kleene plus is expanded into 1..``kleene_budget`` repetitions of its
    (single-type) body.  Patterns with nested Kleene, negation, disjunction or
    conjunction are not supported by this baseline.

    Raises:
        ExecutionError: if the pattern is outside the supported fragment.
    """
    if isinstance(pattern, EventTypePattern):
        return [(pattern.event_type,)]
    if isinstance(pattern, Kleene):
        body = pattern.sub_pattern
        if not isinstance(body, EventTypePattern):
            raise ExecutionError(
                "the SHARON-style baseline only flattens Kleene over a single event type"
            )
        return [
            tuple([body.event_type] * repetitions)
            for repetitions in range(1, kleene_budget + 1)
        ]
    if isinstance(pattern, SeqPattern):
        expansions: list[tuple[EventType, ...]] = [()]
        for part in pattern.parts:
            part_expansions = flatten_pattern(part, kleene_budget)
            expansions = [
                prefix + suffix for prefix in expansions for suffix in part_expansions
            ]
        return expansions
    raise ExecutionError(
        f"the SHARON-style baseline does not support pattern node "
        f"{type(pattern).__name__}"
    )


class FlatSequenceEngine(TrendAggregationEngine):
    """Online aggregation over a workload of flattened fixed-length sequences."""

    name = "sharon-flat"

    def __init__(self, *, kleene_budget: Optional[int] = None, max_budget: int = 64) -> None:
        """Create the engine.

        Args:
            kleene_budget: Fixed number of repetitions each Kleene plus is
                expanded to.  ``None`` (the default) grows the budget to the
                number of events of the Kleene type seen in the partition,
                which makes the flattening exact.
            max_budget: Upper bound on the automatically grown budget.
        """
        self._configured_budget = kleene_budget
        self.max_budget = max_budget
        self._queries: tuple[Query, ...] = ()
        self._events: list[Event] = []
        self._flattened: list[_FlattenedQuery] = []
        self._updates = 0
        self._started = False

    # ------------------------------------------------------------------ #
    # Engine interface
    # ------------------------------------------------------------------ #
    def start(self, queries: Sequence[Query]) -> None:
        if not queries:
            raise ExecutionError("FlatSequenceEngine.start requires at least one query")
        for query in queries:
            if query.aggregate.kind in (AggregateKind.MIN, AggregateKind.MAX):
                raise ExecutionError(
                    "the SHARON-style baseline does not support MIN/MAX aggregates"
                )
        self._queries = tuple(queries)
        self._events = []
        self._flattened = []
        self._updates = 0
        self._started = True

    def process(self, event: Event) -> None:
        if not self._started:
            raise ExecutionError("FlatSequenceEngine.process called before start()")
        self._events.append(event)

    def results(self) -> dict[str, float]:
        if not self._started:
            raise ExecutionError("FlatSequenceEngine.results called before start()")
        self._flattened = []
        self._updates = 0
        results: dict[str, float] = {}
        for query in self._queries:
            budget = self._budget_for(query)
            flattened = [
                _FlattenedQuery(query, type_sequence)
                for type_sequence in flatten_pattern(query.pattern, budget)
            ]
            self._flattened.extend(flattened)
            for event in self._events:
                if not query.accepts_event(event):
                    continue
                for sub_query in flattened:
                    self._updates += sub_query.update(event)
            results[query.name] = self._combine(query, flattened)
        return results

    def memory_units(self) -> int:
        """Stored events plus DP state of every flattened sub-query.

        The flattened workload is the dominant term: one prefix-count array
        per sub-query per Kleene query, which is why SHARON's memory is
        orders of magnitude above the graph-based engines in Figure 10.
        """
        dp_cells = sum(len(sub.counts) + len(sub.measure_totals) for sub in self._flattened)
        return len(self._events) + dp_cells + len(self._queries)

    def operations(self) -> int:
        return self._updates

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _budget_for(self, query: Query) -> int:
        if self._configured_budget is not None:
            return self._configured_budget
        kleene_types = query.kleene_types()
        if not kleene_types:
            return 1
        longest = max(
            sum(1 for event in self._events if event.event_type == event_type)
            for event_type in kleene_types
        )
        return max(1, min(longest, self.max_budget))

    @staticmethod
    def _combine(query: Query, flattened: list[_FlattenedQuery]) -> float:
        kind = query.aggregate.kind
        if kind is AggregateKind.COUNT_TRENDS:
            return float(sum(sub.full_match_count for sub in flattened))
        total = sum(sub.full_match_measure for sub in flattened)
        if kind in (AggregateKind.SUM, AggregateKind.COUNT_EVENTS):
            return float(total)
        count = sum(sub.full_match_measure_count for sub in flattened)
        return float(total / count) if count else 0.0
