"""HAMLET reproduction: adaptive shared online event trend aggregation.

The top-level package re-exports the most commonly used classes so that a
downstream user can write::

    from repro import (
        Event, EventStream, Query, Workload, Window,
        parse_query, HamletEngine, GretaEngine, WorkloadExecutor,
    )

See README.md for a quickstart and DESIGN.md for the architecture.
"""

from repro.errors import (
    BenchmarkError,
    DatasetError,
    ExecutionError,
    PatternError,
    PredicateError,
    QueryParseError,
    ReproError,
    SchemaError,
    SharingError,
    StreamError,
    TemplateError,
    WindowError,
    WorkloadError,
)
from repro.events import Event, EventStream, Schema, merge_streams
from repro.query import (
    Query,
    Window,
    Workload,
    avg,
    count_events,
    count_trends,
    kleene,
    max_of,
    min_of,
    parse_pattern,
    parse_query,
    same_attributes,
    seq,
    sum_of,
    typ,
)

__version__ = "1.0.0"

__all__ = [
    "BenchmarkError",
    "DatasetError",
    "Event",
    "EventStream",
    "ExecutionError",
    "PatternError",
    "PredicateError",
    "Query",
    "QueryParseError",
    "ReproError",
    "Schema",
    "SchemaError",
    "SharingError",
    "StreamError",
    "TemplateError",
    "Window",
    "WindowError",
    "Workload",
    "WorkloadError",
    "avg",
    "count_events",
    "count_trends",
    "kleene",
    "max_of",
    "merge_streams",
    "min_of",
    "parse_pattern",
    "parse_query",
    "same_attributes",
    "seq",
    "sum_of",
    "typ",
]

try:  # pragma: no cover - exercised implicitly on import
    from repro.core import HamletEngine  # noqa: F401
    from repro.greta import GretaEngine  # noqa: F401
    from repro.baselines import BruteForceOracle, FlatSequenceEngine, TwoStepEngine  # noqa: F401
    from repro.runtime import ExecutionReport, WorkloadExecutor  # noqa: F401

    __all__ += [
        "BruteForceOracle",
        "ExecutionReport",
        "FlatSequenceEngine",
        "GretaEngine",
        "HamletEngine",
        "TwoStepEngine",
        "WorkloadExecutor",
    ]
except ImportError:  # pragma: no cover - during partial builds only
    pass
