"""Graphlets and HAMLET graph nodes (Definitions 6 and 7).

A graphlet is a maximal run of same-type events.  A *shared* graphlet stores
one symbolic snapshot expression per event — the propagation work is done
once for all sharing queries.  A *non-shared* event stores one resolved
aggregate vector per query.  A single :class:`HamletNode` can carry both: the
expression for the queries that shared its processing and resolved vectors
for queries that processed it individually (e.g. queries that reference the
event type outside a Kleene plus).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.expression import SnapshotExpression
from repro.core.kernels import MutableExpressionBuilder
from repro.core.snapshot import SnapshotTable
from repro.errors import SharingError
from repro.events.event import Event, EventType
from repro.greta.aggregators import AggregateVector

_graphlet_counter = itertools.count(1)


@dataclass
class HamletNode:
    """A matched event plus its per-query intermediate aggregates."""

    event: Event
    #: Symbolic expression shared by ``expression_queries`` (None if the event
    #: was only processed non-shared).
    expression: Optional[SnapshotExpression] = None
    expression_queries: frozenset[str] = frozenset()
    #: Resolved per-query vectors for queries processed non-shared.
    resolved: dict[str, AggregateVector] = field(default_factory=dict)

    def covers_query(self, query_name: str) -> bool:
        """True if this node carries an aggregate for ``query_name``."""
        return query_name in self.resolved or query_name in self.expression_queries

    def vector_for(self, query_name: str, table: SnapshotTable) -> AggregateVector:
        """The intermediate aggregate of this event for one query.

        Queries that did not match the event get the zero vector, which makes
        the node safe to use as a predecessor for any query.
        """
        if query_name in self.resolved:
            return self.resolved[query_name]
        if self.expression is not None and query_name in self.expression_queries:
            return self.expression.evaluate(table.resolver(query_name))
        return AggregateVector.zero(table.dimension)

    def vector_into(self, accumulator, query_name: str, table: SnapshotTable) -> None:
        """Fold this node's aggregate for one query into a mutable accumulator."""
        resolved = self.resolved.get(query_name)
        if resolved is not None:
            accumulator.add_vector(resolved)
        elif self.expression is not None and query_name in self.expression_queries:
            self.expression.evaluate_into(accumulator, table.raw_lookup(query_name))

    def memory_units(self) -> int:
        """One unit per stored event, per expression coefficient, per resolved vector."""
        units = 1
        if self.expression is not None:
            units += self.expression.size()
        units += len(self.resolved)
        return units


class Graphlet:
    """A run of same-type events, processed shared or non-shared."""

    def __init__(
        self,
        event_type: EventType,
        shared: bool,
        query_names: frozenset[str],
        input_snapshot_id: Optional[str] = None,
        dimension: int = 0,
    ) -> None:
        if shared and input_snapshot_id is None:
            raise SharingError("a shared graphlet requires an input snapshot")
        self.graphlet_id = f"G{next(_graphlet_counter)}"
        self.event_type = event_type
        self.shared = shared
        self.query_names = query_names
        self.input_snapshot_id = input_snapshot_id
        self.active = True
        self.nodes: list[HamletNode] = []
        #: Running sum of the expressions of all events in this graphlet —
        #: lets the next event be computed in O(#snapshots) instead of O(g)
        #: (Table 3: the doubling propagation).  Kept mutable and updated in
        #: place; frozen per node at registration time (see docs/DESIGN.md).
        self.running_builder = MutableExpressionBuilder(dimension)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def size(self) -> int:
        """Number of events stored in the graphlet (``g`` in the cost model)."""
        return len(self.nodes)

    def deactivate(self) -> None:
        """Mark the graphlet inactive: no more events may be appended."""
        self.active = False

    def propagated_snapshots(self) -> frozenset[str]:
        """Snapshots currently propagated through this graphlet (``sp``)."""
        return self.running_builder.snapshot_ids()

    def append(self, node: HamletNode) -> None:
        """Append a node (the engine keeps the running sums up to date)."""
        if not self.active:
            raise SharingError(f"cannot append to inactive graphlet {self.graphlet_id}")
        if node.event.event_type != self.event_type:
            raise SharingError(
                f"graphlet {self.graphlet_id} holds {self.event_type} events, "
                f"got {node.event.event_type}"
            )
        self.nodes.append(node)

    def memory_units(self) -> int:
        """Footprint of the graphlet: nodes plus running-sum bookkeeping."""
        units = sum(node.memory_units() for node in self.nodes)
        units += self.running_builder.size()
        return units

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "shared" if self.shared else "non-shared"
        return (
            f"Graphlet({self.graphlet_id}, {self.event_type}, {mode}, "
            f"{len(self.nodes)} events, active={self.active})"
        )
