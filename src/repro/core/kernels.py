"""Mutable hot-path kernels for trend aggregation.

The immutable value types (:class:`~repro.greta.aggregators.AggregateVector`,
:class:`~repro.core.expression.SnapshotExpression`) give the library clean
algebraic semantics, but allocating a fresh tuple or dict per event is what
dominated the Python-level cost of the engines.  This module provides the
mutable accumulators the engines use *inside* a hot loop:

* :class:`MutableAggregate` — an in-place ``(count, measures)`` accumulator.
  All per-event folding (Equation 1/2 sums, expression evaluation, end-type
  totals) happens here without intermediate allocations; callers
  :meth:`~MutableAggregate.freeze` the accumulator into an
  :class:`~repro.greta.aggregators.AggregateVector` only when the value
  crosses an API boundary.
* :class:`MutableExpressionBuilder` — a dict-of-lists coefficient store for
  symbolic snapshot expressions.  Shared graphlets keep their running sum in
  a builder and update it in place per event; the builder is frozen into an
  immutable :class:`~repro.core.expression.SnapshotExpression` only at
  node-registration boundaries (see docs/DESIGN.md).

Both kernels preserve the summation *order* of the immutable code paths they
replace, so integer-valued workloads produce bit-identical aggregates on the
fast and slow paths (the property the cross-engine equivalence suite checks).

The module also defines the :class:`KernelBackend` interface — the swappable
numeric core behind the multi-window engine's burst folds.  The
:class:`PythonKernelBackend` here is the reference implementation (the exact
per-event fold above, with the per-(class, type) plan resolution hoisted to
burst start); :mod:`repro.core.kernels_numpy` provides the vectorized
closed-form alternative.  Backends resolve by *name* through
:func:`resolve_kernel_backend` — the same registry pattern as
:mod:`repro.optimizer.registry` — so a backend choice crosses shard-worker
process boundaries as a plain picklable string.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.core.expression import SnapshotCoefficient, SnapshotExpression
from repro.errors import ExecutionError
from repro.greta.aggregators import AggregateVector

#: A per-query snapshot value lookup: ``snapshot_id -> AggregateVector | None``
#: (``None`` means the query has no entry, i.e. the value is zero).
RawLookup = Callable[[str], Optional[AggregateVector]]


class MutableAggregate:
    """In-place ``(trend count, measure values...)`` accumulator.

    The mutable twin of :class:`~repro.greta.aggregators.AggregateVector`:
    the count is a plain float attribute and the measures live in a list that
    is mutated in place.
    """

    __slots__ = ("count", "measures")

    def __init__(self, dimension: int) -> None:
        self.count = 0.0
        self.measures = [0.0] * dimension

    @property
    def dimension(self) -> int:
        """Number of measure components."""
        return len(self.measures)

    # ------------------------------------------------------------------ #
    # In-place folding
    # ------------------------------------------------------------------ #
    def add_vector(self, vector: AggregateVector) -> None:
        """Fold an immutable vector into this accumulator."""
        self.count += vector.count
        measures = self.measures
        for index, value in enumerate(vector.measures):
            measures[index] += value

    def add(self, other: "MutableAggregate") -> None:
        """Fold another mutable accumulator into this one."""
        self.count += other.count
        measures = self.measures
        for index, value in enumerate(other.measures):
            measures[index] += value

    def add_weighted(
        self, weight: float, cross: tuple[float, ...], value: AggregateVector
    ) -> None:
        """Fold one snapshot coefficient applied to a snapshot value.

        Implements :meth:`SnapshotCoefficient.apply` without allocating:
        ``count += w * v.count`` and ``m_i += w * v.m_i + cross_i * v.count``.
        """
        value_count = value.count
        self.count += weight * value_count
        measures = self.measures
        value_measures = value.measures
        for index in range(len(measures)):
            measures[index] += weight * value_measures[index] + cross[index] * value_count

    def apply_contributions(self, contributions: Iterable[float]) -> None:
        """Fold an event's measure contributions: ``m_i += c_i * count``.

        Must be called after all predecessor counts have been summed
        (Equation 1 ordering).
        """
        count = self.count
        measures = self.measures
        for index, contribution in enumerate(contributions):
            if contribution:
                measures[index] += contribution * count

    def copy(self) -> "MutableAggregate":
        """An independent accumulator holding the same value.

        Used by the multi-window engine's split transition: per-query
        coefficient columns start as copies of the shared column and are
        folded independently from there.
        """
        duplicate = MutableAggregate.__new__(MutableAggregate)
        duplicate.count = self.count
        duplicate.measures = list(self.measures)
        return duplicate

    # ------------------------------------------------------------------ #
    # Boundary conversions
    # ------------------------------------------------------------------ #
    def freeze(self) -> AggregateVector:
        """Immutable snapshot of the current value."""
        return AggregateVector(self.count, tuple(self.measures))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MutableAggregate(count={self.count:g}, measures={self.measures})"


class MutableExpressionBuilder:
    """Dict-of-lists coefficient store for symbolic snapshot expressions.

    Each coefficient row is the list ``[weight, cross_0, ..., cross_d-1]``
    (one row per snapshot), mutated in place.  The builder supports the three
    operations of the shared hot loop — add another expression/builder, fold
    an event contribution, evaluate per query — plus :meth:`freeze`, the only
    place immutable coefficient objects are created.
    """

    __slots__ = ("dimension", "_coefficients")

    def __init__(self, dimension: int) -> None:
        self.dimension = dimension
        self._coefficients: dict[str, list[float]] = {}

    # ------------------------------------------------------------------ #
    # Construction / mutation
    # ------------------------------------------------------------------ #
    def copy(self) -> "MutableExpressionBuilder":
        """An independent copy (rows are duplicated)."""
        clone = MutableExpressionBuilder.__new__(MutableExpressionBuilder)
        clone.dimension = self.dimension
        clone._coefficients = {
            snapshot_id: row.copy() for snapshot_id, row in self._coefficients.items()
        }
        return clone

    def _row(self, snapshot_id: str) -> list[float]:
        row = self._coefficients.get(snapshot_id)
        if row is None:
            row = [0.0] * (1 + self.dimension)
            self._coefficients[snapshot_id] = row
        return row

    def add_identity(self, snapshot_id: str) -> None:
        """Add ``1 * snapshot`` (weight one, no cross terms)."""
        self._row(snapshot_id)[0] += 1.0

    def add_expression(self, expression: SnapshotExpression) -> None:
        """Fold an immutable expression into the builder."""
        for snapshot_id, coefficient in expression.items():
            row = self._row(snapshot_id)
            row[0] += coefficient.weight
            for index, value in enumerate(coefficient.cross):
                row[1 + index] += value

    def add_builder(self, other: "MutableExpressionBuilder") -> None:
        """Fold another builder into this one."""
        for snapshot_id, other_row in other._coefficients.items():
            row = self._coefficients.get(snapshot_id)
            if row is None:
                self._coefficients[snapshot_id] = other_row.copy()
            else:
                for index, value in enumerate(other_row):
                    row[index] += value

    def fold_contribution(self, contributions: tuple[float, ...]) -> None:
        """Fold an event's measure contributions into every coefficient.

        ``cross_i += c_i * weight`` — the builder twin of
        :meth:`SnapshotExpression.with_event_contribution`.
        """
        if not any(contributions):
            return
        for row in self._coefficients.values():
            weight = row[0]
            if weight:
                for index, contribution in enumerate(contributions):
                    row[1 + index] += contribution * weight

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate_into(self, accumulator: MutableAggregate, lookup: RawLookup) -> int:
        """Evaluate for one query, folding into ``accumulator``.

        Returns the number of coefficients visited (work units).
        """
        count = 0
        # Accumulator state is hoisted out of the loop (the count folds into
        # a local, written back once): the loop runs per (coefficient, query)
        # on the fast path — during a burst, per buffered event — and must
        # not allocate or repeat attribute traffic.
        total_count = accumulator.count
        measures = accumulator.measures
        dimension = len(measures)
        for snapshot_id, row in self._coefficients.items():
            value = lookup(snapshot_id)
            count += 1
            if value is None:
                continue
            # Inlined add_weighted over the raw row.
            weight = row[0]
            value_count = value.count
            total_count += weight * value_count
            value_measures = value.measures
            for index in range(dimension):
                measures[index] += (
                    weight * value_measures[index] + row[1 + index] * value_count
                )
        accumulator.count = total_count
        return count

    # ------------------------------------------------------------------ #
    # Introspection / freezing
    # ------------------------------------------------------------------ #
    def size(self) -> int:
        """Number of snapshots referenced."""
        return len(self._coefficients)

    def snapshot_ids(self) -> frozenset[str]:
        """Identifiers of the snapshots referenced."""
        return frozenset(self._coefficients)

    def freeze(self) -> SnapshotExpression:
        """Immutable expression with the builder's current coefficients.

        This is the node-registration boundary: the frozen expression is safe
        to store on a :class:`~repro.core.graphlet.HamletNode` while the
        builder keeps mutating.
        """
        coefficients = {
            snapshot_id: SnapshotCoefficient(row[0], tuple(row[1:]))
            for snapshot_id, row in self._coefficients.items()
        }
        return SnapshotExpression.from_frozen(self.dimension, coefficients)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{row[0]:g}*{sid}" for sid, row in sorted(self._coefficients.items())]
        return "Builder(" + (" + ".join(parts) if parts else "0") + ")"


# ---------------------------------------------------------------------- #
# Kernel backends: the swappable numeric core of the burst fold
# ---------------------------------------------------------------------- #
class KernelBackend:
    """Numeric core for the multi-window engine's same-type burst folds.

    A backend folds one *run* — ``count`` consecutive accepted events of one
    type — into one sharing column of one ``(query class, event type)``
    plan.  The engine has already resolved everything positional (the armed
    window indices, the fold's source maps with the Kleene self-loop
    substituted, the per-event measure contributions); the backend only does
    arithmetic.  Fold semantics are those of the reference per-event loop:
    per event and window, ``value = base + sum(sources[window])`` folds into
    ``total_map[window]`` (the vector form additionally applies the event's
    measure contributions — Equation 1/2 of the paper).

    ``exact`` declares the backend's equivalence contract: ``True`` means
    bit-identical to the reference loop; ``False`` means equal up to the
    documented float tolerance (closed-form folds reassociate sums — see
    docs/DESIGN.md, "Transport & kernel backends").  ``wants_bursts`` asks
    the streaming executor to buffer maximal same-type runs even without an
    adaptive optimizer, so the backend sees whole bursts to vectorize.
    """

    name: str = "abstract"
    exact: bool = True
    wants_bursts: bool = False

    def fold_scalar_run(
        self,
        total_map: dict,
        indices: Sequence[int],
        sources: Sequence[dict],
        base: float,
        count: int,
    ) -> int:
        """Fold a run into a scalar (COUNT-only) column.

        ``sources`` may contain ``total_map`` itself (a Kleene self-loop).
        Returns the number of window entries newly created in ``total_map``.
        """
        raise NotImplementedError

    def fold_vector_run(
        self,
        total_map: dict,
        indices: Sequence[int],
        sources: Sequence[dict],
        base: float,
        contribution_rows: Sequence[tuple[float, ...]],
        dimension: int,
    ) -> int:
        """Fold a run into a vector column of :class:`MutableAggregate`.

        ``contribution_rows[i]`` is the i-th event's per-measure
        contribution vector.  Returns the number of entries newly created.
        """
        raise NotImplementedError


class PythonKernelBackend(KernelBackend):
    """The reference backend: the exact per-event fold, hoisted per run.

    Arithmetic, iteration order and entry creation match the engine's
    per-event fast path exactly (bit-identical totals); the run-level entry
    point only hoists the per-(class, type) plan resolution — map lookups,
    source tuples, bound methods — out of the per-event loop.
    """

    name = "python"
    exact = True
    wants_bursts = False

    def fold_scalar_run(self, total_map, indices, sources, base, count):
        created = 0
        gets = [window_map.get for window_map in sources]
        total_get = total_map.get
        for _ in range(count):
            for index in indices:
                value = base
                for get in gets:
                    previous = get(index)
                    if previous is not None:
                        value += previous
                current = total_get(index)
                if current is None:
                    total_map[index] = value
                    created += 1
                else:
                    total_map[index] = current + value
        return created

    def fold_vector_run(
        self, total_map, indices, sources, base, contribution_rows, dimension
    ):
        created = 0
        total_get = total_map.get
        for contributions in contribution_rows:
            for index in indices:
                accumulator = MutableAggregate(dimension)
                accumulator.count = base
                for window_map in sources:
                    previous = window_map.get(index)
                    if previous is not None:
                        accumulator.add(previous)
                accumulator.apply_contributions(contributions)
                total = total_get(index)
                if total is None:
                    total_map[index] = accumulator
                    created += 1
                else:
                    total.add(accumulator)
        return created


def _load_numpy_backend() -> KernelBackend:
    try:
        from repro.core.kernels_numpy import NumpyKernelBackend
    except ImportError:
        raise ExecutionError(
            "kernel backend 'numpy' requires NumPy, which is not installed; "
            "install the [numpy] extra or use kernel_backend='python'"
        ) from None
    return NumpyKernelBackend()


#: Environment override pinning the auto backend's run-length threshold
#: (skips startup calibration; used to make fold choices reproducible).
AUTO_KERNEL_THRESHOLD_ENV = "REPRO_AUTO_KERNEL_THRESHOLD"


class AutoKernelBackend(KernelBackend):
    """Per-burst backend selection: NumPy only where it wins.

    BENCH_PR6 showed the vectorized backend *losing* on short runs — array
    setup costs more than the per-event loop it replaces — so picking
    ``numpy`` globally regresses workloads dominated by short bursts.  This
    backend dispatches each run by length: runs of at least ``threshold``
    events fold through the closed-form NumPy kernels, shorter runs through
    the reference loop.  Without NumPy installed it degrades to the
    reference backend for every run (and never calibrates).

    The threshold is calibrated once at startup by timing both backends on
    synthetic scalar runs (pin it via ``REPRO_AUTO_KERNEL_THRESHOLD`` to
    skip calibration).  Calibration affects *which* backend folds a given
    run, never the value contract: on integer-valued workloads both
    backends are bit-identical, and beyond 2^53 the choice is covered by
    the documented ``1e-9`` tolerance (see :mod:`repro.core.kernels_numpy`),
    so ``exact`` is inherited from the vectorized side.
    """

    name = "auto"
    exact = False
    wants_bursts = True

    #: Fallback threshold when calibration is inconclusive (and the upper
    #: bound probed): past ~64-event runs the closed form has always won on
    #: the boxes benchmarked so far.
    DEFAULT_THRESHOLD = 64

    _CALIBRATION_LENGTHS = (4, 8, 16, 32, 64)
    _CALIBRATION_WINDOWS = 32
    _CALIBRATION_REPEATS = 5

    def __init__(self, threshold: Optional[int] = None) -> None:
        self._python = PythonKernelBackend()
        try:
            from repro.core.kernels_numpy import NumpyKernelBackend

            self._vector: Optional[KernelBackend] = NumpyKernelBackend()
        except ImportError:
            self._vector = None
        if threshold is None:
            pinned = os.environ.get(AUTO_KERNEL_THRESHOLD_ENV)
            if pinned:
                threshold = int(pinned)
            elif self._vector is None:
                threshold = self.DEFAULT_THRESHOLD
            else:
                threshold = self._calibrate()
        self.threshold = max(1, threshold)

    def _calibrate(self) -> int:
        """Smallest probed run length where the vectorized fold wins.

        Times both backends folding a scalar Kleene run over a fixed set of
        armed windows.  Wall-clock noise only moves the crossover point, so
        a noisy measurement costs a little speed, never correctness.
        """
        import timeit

        vector = self._vector
        assert vector is not None
        indices = tuple(range(self._CALIBRATION_WINDOWS))
        for length in self._CALIBRATION_LENGTHS:

            def run(backend: KernelBackend, count: int = length) -> None:
                total: dict[int, float] = dict.fromkeys(indices, 1.0)
                backend.fold_scalar_run(total, indices, (total,), 1.0, count)

            python_time = min(
                timeit.repeat(
                    lambda: run(self._python), number=1, repeat=self._CALIBRATION_REPEATS
                )
            )
            vector_time = min(
                timeit.repeat(
                    lambda: run(vector), number=1, repeat=self._CALIBRATION_REPEATS
                )
            )
            if vector_time < python_time:
                return length
        return self.DEFAULT_THRESHOLD

    def _select(self, count: int) -> KernelBackend:
        if self._vector is not None and count >= self.threshold:
            return self._vector
        return self._python

    def fold_scalar_run(self, total_map, indices, sources, base, count):
        return self._select(count).fold_scalar_run(
            total_map, indices, sources, base, count
        )

    def fold_vector_run(
        self, total_map, indices, sources, base, contribution_rows, dimension
    ):
        return self._select(len(contribution_rows)).fold_vector_run(
            total_map, indices, sources, base, contribution_rows, dimension
        )


#: Zero-argument factories keyed by backend name (the registry shard
#: workers resolve names through, mirroring ``OPTIMIZER_POLICIES``).
KERNEL_BACKENDS: dict[str, Callable[[], KernelBackend]] = {
    "python": PythonKernelBackend,
    "numpy": _load_numpy_backend,
    "auto": AutoKernelBackend,
}

#: What callers may pass: nothing (environment default), a backend name, or
#: a ready instance.
KernelBackendSpec = Union[None, str, KernelBackend]

#: Environment override for the default backend (used by the CI matrix to
#: run the whole suite under each backend without touching call sites).
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"


def resolve_kernel_backend(spec: KernelBackendSpec) -> KernelBackend:
    """Resolve a backend spec to an instance.

    ``None`` consults the ``REPRO_KERNEL_BACKEND`` environment variable and
    falls back to the pure-Python reference backend.
    """
    if spec is None:
        spec = os.environ.get(KERNEL_BACKEND_ENV) or "python"
    if isinstance(spec, KernelBackend):
        return spec
    if isinstance(spec, str):
        try:
            factory = KERNEL_BACKENDS[spec]
        except KeyError:
            raise ExecutionError(
                f"unknown kernel backend {spec!r}; choose one of "
                f"{', '.join(sorted(KERNEL_BACKENDS))}"
            ) from None
        return factory()
    raise ExecutionError(
        f"kernel_backend must be None, a backend name or a KernelBackend "
        f"instance, got {spec!r}"
    )
