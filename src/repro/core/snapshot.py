"""Snapshots and the snapshot table (Definitions 8 and 9).

A snapshot is a variable whose value is an intermediate trend aggregate *per
query*.  Graphlet-level snapshots capture the aggregate a query has reached
at the point a shared graphlet starts; event-level snapshots capture the
per-query aggregate of a single event whose predecessor set differs across
the sharing queries (because of predicates or negation).

The snapshot table ``S`` maps ``(snapshot, query)`` to the query's value —
the paper's "hash table of snapshots".
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional

from repro.errors import SharingError
from repro.events.event import EventType
from repro.greta.aggregators import AggregateVector


class SnapshotLevel(enum.Enum):
    """Whether a snapshot was created at graphlet or at event level."""

    GRAPHLET = "graphlet"
    EVENT = "event"


@dataclass(frozen=True, slots=True)
class Snapshot:
    """A snapshot variable (identity only; values live in the table)."""

    snapshot_id: str
    level: SnapshotLevel
    event_type: EventType

    def __repr__(self) -> str:
        return self.snapshot_id


class SnapshotTable:
    """Mapping from ``(snapshot, query)`` to the query's aggregate vector."""

    __slots__ = ("_dimension", "_snapshots", "_values", "_id_counter", "_created")

    def __init__(self, dimension: int) -> None:
        self._dimension = dimension
        self._snapshots: dict[str, Snapshot] = {}
        self._values: dict[tuple[str, str], AggregateVector] = {}
        self._id_counter = itertools.count(1)
        self._created = {SnapshotLevel.GRAPHLET: 0, SnapshotLevel.EVENT: 0}

    # ------------------------------------------------------------------ #
    # Creation
    # ------------------------------------------------------------------ #
    def create(
        self,
        level: SnapshotLevel,
        event_type: EventType,
        values: Mapping[str, AggregateVector],
    ) -> Snapshot:
        """Create a new snapshot with its per-query values.

        Args:
            level: graphlet- or event-level.
            event_type: The event type of the graphlet the snapshot feeds.
            values: Mapping from query name to the query's value.
        """
        prefix = "x" if level is SnapshotLevel.GRAPHLET else "z"
        snapshot = Snapshot(f"{prefix}{next(self._id_counter)}", level, event_type)
        self._snapshots[snapshot.snapshot_id] = snapshot
        self._created[level] += 1
        for query_name, value in values.items():
            self.set_value(snapshot.snapshot_id, query_name, value)
        return snapshot

    def set_value(self, snapshot_id: str, query_name: str, value: AggregateVector) -> None:
        """Set the value of ``snapshot_id`` for ``query_name``."""
        if value.dimension != self._dimension:
            raise SharingError(
                f"snapshot value has {value.dimension} measures, table expects {self._dimension}"
            )
        self._values[(snapshot_id, query_name)] = value

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def value(self, snapshot_id: str, query_name: str) -> AggregateVector:
        """Value of a snapshot for one query (zero if the query has no entry)."""
        if snapshot_id not in self._snapshots:
            raise SharingError(f"unknown snapshot {snapshot_id!r}")
        return self._values.get(
            (snapshot_id, query_name), AggregateVector.zero(self._dimension)
        )

    def resolver(self, query_name: str) -> Callable[[str], AggregateVector]:
        """Return a ``snapshot_id -> value`` callable for one query."""
        return lambda snapshot_id: self.value(snapshot_id, query_name)

    def raw_lookup(self, query_name: str) -> Callable[[str], Optional[AggregateVector]]:
        """A hot-path lookup for one query: ``snapshot_id -> value | None``.

        Unlike :meth:`resolver` this never allocates a zero vector — a query
        without an entry yields ``None`` (callers treat it as zero) — and it
        skips the known-snapshot check, which engine-built expressions
        guarantee by construction.
        """
        values = self._values
        return lambda snapshot_id: values.get((snapshot_id, query_name))

    def snapshot(self, snapshot_id: str) -> Snapshot:
        """The snapshot object for ``snapshot_id``."""
        try:
            return self._snapshots[snapshot_id]
        except KeyError:
            raise SharingError(f"unknown snapshot {snapshot_id!r}") from None

    def snapshots(self) -> Iterable[Snapshot]:
        """All snapshots created so far."""
        return tuple(self._snapshots.values())

    # ------------------------------------------------------------------ #
    # Statistics used by the optimizer, benchmarks and memory accounting
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Number of measure components per value."""
        return self._dimension

    def created_count(self, level: SnapshotLevel | None = None) -> int:
        """Number of snapshots created (optionally of one level)."""
        if level is None:
            return sum(self._created.values())
        return self._created[level]

    def entry_count(self) -> int:
        """Number of ``(snapshot, query)`` value entries stored."""
        return len(self._values)

    def memory_units(self) -> int:
        """One unit per snapshot plus one per stored per-query value."""
        return len(self._snapshots) + len(self._values)


class WindowCoefficientTable:
    """Per-``(consumer, window instance)`` running aggregate coefficients.

    The snapshot table above separates the per-*query* values of a shared
    symbolic aggregate; this is its cross-*window* twin: for every consumer
    (a query, or a class of computationally identical queries) and every
    live window instance it keeps one running total — the coefficient the
    shared graph work is tagged with, so a window's close is a readout of
    its column and an eviction of its entries rather than a replay.

    The per-window maps are plain dicts keyed by the integer window-instance
    index and are handed out raw (:meth:`window_map`) because the engines'
    hot loops fold into them per event; measure-less workloads store bare
    floats instead of :class:`~repro.core.kernels.MutableAggregate` rows.
    """

    __slots__ = ("dimension", "scalar", "_maps")

    def __init__(self, dimension: int) -> None:
        self.dimension = dimension
        #: Scalar mode: COUNT(*)-only consumers track one float per window.
        self.scalar = dimension == 0
        self._maps: dict[tuple, dict[int, object]] = {}

    def window_map(self, consumer: tuple) -> dict:
        """The raw ``window index -> coefficient`` map of one consumer."""
        window_map = self._maps.get(consumer)
        if window_map is None:
            window_map = self._maps[consumer] = {}
        return window_map

    def entry_count(self) -> int:
        """Number of live ``(consumer, window)`` coefficients.

        O(consumers) scan — engines keep their own incremental counter for
        the hot path; this accessor is the ground truth the invariant tests
        compare that counter against.
        """
        return sum(len(window_map) for window_map in self._maps.values())

    def memory_units(self) -> int:
        """One unit per coefficient (plus its measure components)."""
        per_entry = 1 if self.scalar else 1 + self.dimension
        return self.entry_count() * per_entry
