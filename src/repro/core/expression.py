"""Symbolic snapshot expressions.

In a shared graphlet, the intermediate aggregate of an event is *not* a
number — its value differs across the queries sharing the graphlet.  HAMLET
therefore propagates a symbolic linear combination of snapshots
(Section 3.3, "hash table of snapshot coefficients": e.g.
``count(b6, Q) = 4x + z`` in Figure 5(c)).  Only when a per-query value is
actually needed (a new snapshot is created, or the final aggregate is
extracted) is the expression evaluated against the snapshot table.

The library tracks, besides the trend count, a list of linear *measures*
(sums of attributes / counts of events of a type — see
:mod:`repro.greta.aggregators`).  Both recurrences stay linear in the
snapshot values::

    count(e) = Σ_x  w_x        * x.count
    m_i(e)   = Σ_x (w_x * x.m_i  +  cross_{i,x} * x.count)

so a coefficient per snapshot is the pair ``(weight, cross)`` where ``cross``
has one entry per measure.  The ``weight`` of snapshot ``x`` in the
expression of event ``e`` is exactly the paper's snapshot coefficient
(``x -> 4`` for event ``b6``); the cross terms carry the attribute
contributions of the events the trends passed through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.errors import SharingError
from repro.greta.aggregators import AggregateVector


@dataclass(frozen=True)
class SnapshotCoefficient:
    """Coefficient of one snapshot inside a snapshot expression."""

    weight: float
    cross: tuple[float, ...] = ()

    def add(self, other: "SnapshotCoefficient") -> "SnapshotCoefficient":
        """Component-wise sum of two coefficients."""
        return SnapshotCoefficient(
            self.weight + other.weight,
            tuple(a + b for a, b in zip(self.cross, other.cross)),
        )

    def with_contribution(self, contributions: tuple[float, ...]) -> "SnapshotCoefficient":
        """Fold an event's measure contributions into the cross terms.

        Applying an event with measure contributions ``c_i`` turns
        ``m_i(e) += c_i * count(e)`` into ``cross_i += c_i * weight``.
        """
        return SnapshotCoefficient(
            self.weight,
            tuple(cross + contribution * self.weight
                  for cross, contribution in zip(self.cross, contributions)),
        )

    def apply(self, value: AggregateVector) -> AggregateVector:
        """Contribution of a snapshot with per-query value ``value``."""
        count = self.weight * value.count
        measures = tuple(
            self.weight * measure + cross * value.count
            for measure, cross in zip(value.measures, self.cross)
        )
        return AggregateVector(count, measures)


class SnapshotExpression:
    """A linear combination of snapshots (immutable value semantics)."""

    __slots__ = ("_dimension", "_coefficients")

    def __init__(
        self,
        dimension: int,
        coefficients: Mapping[str, SnapshotCoefficient] | None = None,
    ) -> None:
        self._dimension = dimension
        self._coefficients: dict[str, SnapshotCoefficient] = dict(coefficients or {})
        for coefficient in self._coefficients.values():
            if len(coefficient.cross) != dimension:
                raise SharingError(
                    f"coefficient has {len(coefficient.cross)} cross terms, "
                    f"expression expects {dimension}"
                )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zero(cls, dimension: int) -> "SnapshotExpression":
        """The empty (zero) expression."""
        return cls(dimension)

    @classmethod
    def identity(cls, snapshot_id: str, dimension: int) -> "SnapshotExpression":
        """The expression ``1 * snapshot`` (weight one, no cross terms)."""
        return cls(dimension, {snapshot_id: SnapshotCoefficient(1.0, (0.0,) * dimension)})

    @classmethod
    def from_frozen(
        cls, dimension: int, coefficients: dict[str, SnapshotCoefficient]
    ) -> "SnapshotExpression":
        """Adopt an already-validated coefficient dict without copying.

        This is the freeze boundary used by
        :class:`~repro.core.kernels.MutableExpressionBuilder`: the caller
        guarantees every coefficient has ``dimension`` cross terms and that
        the dict is not mutated afterwards.
        """
        expression = cls.__new__(cls)
        expression._dimension = dimension
        expression._coefficients = coefficients
        return expression

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Number of measure components tracked alongside the count."""
        return self._dimension

    @property
    def coefficients(self) -> Mapping[str, SnapshotCoefficient]:
        """Read-only view of the snapshot-to-coefficient mapping."""
        return dict(self._coefficients)

    def items(self):
        """Iterate ``(snapshot_id, coefficient)`` pairs without copying."""
        return self._coefficients.items()

    def snapshot_ids(self) -> frozenset[str]:
        """Identifiers of the snapshots referenced by this expression."""
        return frozenset(self._coefficients)

    def size(self) -> int:
        """Number of snapshots referenced (``s`` in the complexity analysis)."""
        return len(self._coefficients)

    def add(self, other: "SnapshotExpression") -> "SnapshotExpression":
        """Sum of two expressions."""
        if other._dimension != self._dimension:
            raise SharingError("cannot add snapshot expressions of different dimensions")
        merged = dict(self._coefficients)
        for snapshot_id, coefficient in other._coefficients.items():
            if snapshot_id in merged:
                merged[snapshot_id] = merged[snapshot_id].add(coefficient)
            else:
                merged[snapshot_id] = coefficient
        return SnapshotExpression(self._dimension, merged)

    def with_event_contribution(self, contributions: Iterable[float]) -> "SnapshotExpression":
        """Fold an event's measure contributions into every coefficient.

        This implements ``m_i(e) = contrib_i(e) * count(e) + Σ m_i(e')`` after
        the counts have been summed into the expression.
        """
        contributions = tuple(contributions)
        if len(contributions) != self._dimension:
            raise SharingError(
                f"expected {self._dimension} contributions, got {len(contributions)}"
            )
        if all(value == 0.0 for value in contributions):
            return self
        return SnapshotExpression(
            self._dimension,
            {
                snapshot_id: coefficient.with_contribution(contributions)
                for snapshot_id, coefficient in self._coefficients.items()
            },
        )

    def evaluate(self, resolve: Callable[[str], AggregateVector]) -> AggregateVector:
        """Evaluate the expression with ``resolve(snapshot_id)`` giving values."""
        total = AggregateVector.zero(self._dimension)
        for snapshot_id, coefficient in self._coefficients.items():
            total = total.add(coefficient.apply(resolve(snapshot_id)))
        return total

    def evaluate_into(self, accumulator, lookup) -> int:
        """Evaluate for one query, folding into a mutable accumulator.

        ``lookup`` returns the query's value of a snapshot or ``None`` when
        the query has no entry (a zero value); ``accumulator`` is a
        :class:`~repro.core.kernels.MutableAggregate`.  Returns the number of
        coefficients visited (work units).
        """
        count = 0
        for snapshot_id, coefficient in self._coefficients.items():
            value = lookup(snapshot_id)
            count += 1
            if value is None:
                continue
            accumulator.add_weighted(coefficient.weight, coefficient.cross, value)
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"{coefficient.weight:g}*{snapshot_id}"
            for snapshot_id, coefficient in sorted(self._coefficients.items())
        ]
        return " + ".join(parts) if parts else "0"
