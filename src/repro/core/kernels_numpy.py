"""NumPy kernel backend: closed-form vectorized burst folds.

The reference backend folds a run of ``k`` same-type events with ``k``
per-event Python loops over the armed windows.  Both fold recurrences have
closed forms over a run (the event's contribution vector varies per event,
everything positional is constant), so this backend replaces the ``O(k * W)``
Python work with a handful of ``O(W)``/``O(W * d)`` array operations:

* no Kleene self-loop — per event every window gains ``D = base + P`` (``P``
  the sum of its predecessor coefficients, constant during the run)::

      t_k = t_0 + k * D
      M_k = M_0 + k * P_m + outer(D, S1)          # S1 = sum of contributions

* Kleene self-loop — the recurrence ``t <- 2t + D`` doubles, so::

      t_k = 2^k * t_0 + (2^k - 1) * D
      M_k = 2^k * M_0 + (2^k - 1) * P_m + 2^(k-1) * (t_0 + D) (x) S1

  (``(x)`` the outer product over windows x measures — the ``np.matmul``
  shape of the burst fold).

Equivalence contract (``exact = False``): the closed form *reassociates*
floating-point sums, so results match the reference backend bit-for-bit
only while every intermediate stays in the exactly-representable integer
range of f64 (|value| < 2^53) — which covers the integer-valued equivalence
workloads — and to relative tolerance ``1e-9`` beyond (the differential
suites compare with exactly this tolerance; see docs/DESIGN.md, "Transport
& kernel backends").  Doubling runs that overflow f64 saturate to ``inf``
on both backends; the ``_scaled`` guard keeps ``inf * 0`` from minting
spurious NaNs where the reference loop would keep an exact zero.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.kernels import KernelBackend, MutableAggregate

__all__ = ["NumpyKernelBackend"]


def _pow2(count: int) -> float:
    """``2.0 ** count`` saturating to ``inf`` instead of overflowing."""
    return 2.0**count if count < 1024 else math.inf


def _scaled(factor: float, values: np.ndarray) -> np.ndarray:
    """``factor * values`` with ``factor=inf`` times exact zero staying zero.

    The reference loop doubles each window independently, so a window whose
    value is exactly ``0.0`` stays ``0.0`` forever; a plain ``inf * 0.0``
    would turn it into NaN.
    """
    with np.errstate(over="ignore", invalid="ignore"):
        product = factor * values
    return np.where(values == 0.0, 0.0, product)


class NumpyKernelBackend(KernelBackend):
    """Closed-form burst folds over contiguous coefficient columns."""

    name = "numpy"
    exact = False
    wants_bursts = True

    def fold_scalar_run(self, total_map, indices, sources, base, count):
        if not indices:
            return 0
        self_loop = any(source is total_map for source in sources)
        window_count = len(indices)
        predecessors = np.zeros(window_count, dtype=np.float64)
        for source in sources:
            if source is total_map:
                continue
            get = source.get
            predecessors += np.fromiter(
                (get(index, 0.0) for index in indices),
                dtype=np.float64,
                count=window_count,
            )
        total_get = total_map.get
        initial = np.fromiter(
            (total_get(index, 0.0) for index in indices),
            dtype=np.float64,
            count=window_count,
        )
        per_event = predecessors + base
        if self_loop:
            pow2 = _pow2(count)
            folded = _scaled(pow2, initial) + _scaled(pow2 - 1.0, per_event)
        else:
            folded = initial + count * per_event
        created = 0
        for position, index in enumerate(indices):
            if index not in total_map:
                created += 1
            total_map[index] = float(folded[position])
        return created

    def fold_vector_run(
        self, total_map, indices, sources, base, contribution_rows, dimension
    ):
        if not indices:
            return 0
        self_loop = any(source is total_map for source in sources)
        window_count = len(indices)
        count = len(contribution_rows)
        pred_counts = np.zeros(window_count, dtype=np.float64)
        pred_measures = np.zeros((window_count, dimension), dtype=np.float64)
        for source in sources:
            if source is total_map:
                continue
            get = source.get
            for position, index in enumerate(indices):
                value = get(index)
                if value is not None:
                    pred_counts[position] += value.count
                    pred_measures[position] += value.measures
        initial_counts = np.zeros(window_count, dtype=np.float64)
        initial_measures = np.zeros((window_count, dimension), dtype=np.float64)
        total_get = total_map.get
        for position, index in enumerate(indices):
            value = total_get(index)
            if value is not None:
                initial_counts[position] = value.count
                initial_measures[position] = value.measures
        per_event = pred_counts + base
        contribution_sum = np.asarray(contribution_rows, dtype=np.float64).sum(axis=0)
        if self_loop:
            pow2 = _pow2(count)
            folded_counts = _scaled(pow2, initial_counts) + _scaled(
                pow2 - 1.0, per_event
            )
            outer_weight = _scaled(pow2 * 0.5, initial_counts + per_event)
            folded_measures = (
                _scaled(pow2, initial_measures)
                + _scaled(pow2 - 1.0, pred_measures)
                + _outer(outer_weight, contribution_sum)
            )
        else:
            folded_counts = initial_counts + count * per_event
            folded_measures = (
                initial_measures
                + count * pred_measures
                + _outer(per_event, contribution_sum)
            )
        created = 0
        for position, index in enumerate(indices):
            existing = total_map.get(index)
            if existing is None:
                existing = MutableAggregate(dimension)
                total_map[index] = existing
                created += 1
            existing.count = float(folded_counts[position])
            existing.measures = folded_measures[position].tolist()
        return created


def _outer(weights: np.ndarray, contributions: np.ndarray) -> np.ndarray:
    """Outer product that keeps ``inf * 0`` contributions at exact zero.

    The reference loop skips zero contributions entirely
    (:meth:`MutableAggregate.apply_contributions`), so a measure whose
    contribution is zero must stay untouched even when the window weight has
    saturated to ``inf``.
    """
    with np.errstate(invalid="ignore", over="ignore"):
        product = np.outer(weights, contributions)
    if np.isnan(product).any():
        product = np.where(
            (weights[:, None] == 0.0) | (contributions[None, :] == 0.0),
            0.0,
            product,
        )
    return product
