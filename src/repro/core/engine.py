"""The HAMLET engine (Algorithm 1 + the split/merge executor of Section 4.2).

The engine evaluates one stream partition (one group-by key / window
instance) for a set of sharable queries.  Events are buffered into *bursts*
(maximal runs of same-type events, Definition 10).  When a burst completes,
the sharing optimizer is consulted; the burst is then processed either

* **shared** — appended to a shared graphlet whose propagation is symbolic
  (one snapshot expression per event, valid for every sharing query), or
* **non-shared** — processed once per query, GRETA-style, against the
  individual predecessor events stored in the HAMLET graph.

Switching from non-shared to shared processing creates a graphlet-level
snapshot that consolidates each query's current aggregate (a *merge*,
Figure 6(f)); switching from shared to non-shared simply stops extending the
shared graphlet (a *split*, Figure 6(d)) — earlier symbolic aggregates remain
valid and are resolved per query on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.expression import SnapshotExpression
from repro.core.graphlet import Graphlet, HamletNode
from repro.core.hamlet_graph import HamletGraph
from repro.core.kernels import MutableAggregate
from repro.core.snapshot import SnapshotLevel, SnapshotTable
from repro.errors import ExecutionError, SharingError
from repro.events.event import Event, EventType
from repro.greta.aggregators import (
    AggregateVector,
    Measure,
    measures_for_queries,
    result_from_vector,
)
from repro.interfaces import TrendAggregationEngine
from repro.optimizer.decisions import DynamicSharingOptimizer, SharingDecision, SharingOptimizer
from repro.optimizer.statistics import BurstStatistics, QueryBurstProfile
from repro.query.query import Query
from repro.template.merged import MergedTemplate
from repro.template.template import QueryTemplate


def compile_fast_path_guards(
    queries: Sequence[Query], templates: dict[str, QueryTemplate]
) -> dict[tuple[str, EventType], tuple[EventType, ...]]:
    """Which ``(query, event type)`` pairs may use the O(1) Equation 2 path.

    A pair is eligible when no edge predicate of the query applies to events
    of the type — then every stored predecessor is accepted and the per-type
    running totals equal the predecessor scan.  Negation constraints whose
    after-set contains the type are recorded as runtime guards: the fast
    path applies only while no matching negative event has been stored.

    Shared by :class:`HamletEngine` and the multi-window engines of
    :mod:`repro.runtime.shared_windows` (where the same table gates the
    per-window coefficient path).
    """
    table: dict[tuple[str, EventType], tuple[EventType, ...]] = {}
    for query in queries:
        template = templates[query.name]
        for event_type in template.event_types:
            if query.predicates.has_edge_predicates_for(event_type):
                continue
            guards = tuple(
                sorted(
                    {
                        constraint.negated_type
                        for constraint in template.negations
                        if constraint.after_types and event_type in constraint.after_types
                    }
                )
            )
            table[(query.name, event_type)] = guards
    return table


@dataclass
class _TypeSharingInfo:
    """Compile-time facts about sharing a Kleene sub-pattern of one type."""

    event_type: EventType
    #: Names of the queries whose pattern contains ``event_type +``.
    candidates: frozenset[str]
    #: Per-query flag: sharing this query is expected to require snapshots.
    introduces_snapshots: dict[str, bool] = field(default_factory=dict)
    #: Exponential moving average of event-level snapshots per burst event.
    slow_fraction: float = 0.0


class HamletEngine(TrendAggregationEngine):
    """Shared online trend aggregation with runtime sharing decisions."""

    name = "hamlet"
    #: Cross-window sharing: identical-query classes computed once per event
    #: and tagged with per-window coefficients (see runtime/shared_windows).
    shared_window_flavor = "classes"

    def __init__(
        self,
        optimizer: Optional[SharingOptimizer] = None,
        *,
        fast_predecessor_totals: bool = True,
    ) -> None:
        """Create the engine.

        Args:
            optimizer: Sharing optimizer (default: dynamic).
            fast_predecessor_totals: Enable the O(1) Equation 2/3 fast paths
                that answer predecessor and end-type sums from the per-type
                running totals.  Disabling forces the predecessor-scan slow
                path everywhere — only useful for equivalence testing and
                debugging (see docs/DESIGN.md).
        """
        #: The sharing optimizer persists across partitions so that its
        #: decision statistics cover a whole benchmark run.
        self.optimizer = optimizer if optimizer is not None else DynamicSharingOptimizer()
        self.fast_predecessor_totals = fast_predecessor_totals
        self._queries: tuple[Query, ...] = ()
        self._templates: dict[str, QueryTemplate] = {}
        self._merged: Optional[MergedTemplate] = None
        self._measures: tuple[Measure, ...] = ()
        self._table: Optional[SnapshotTable] = None
        self._graph: Optional[HamletGraph] = None
        self._sharing_info: dict[EventType, _TypeSharingInfo] = {}
        self._relevant_types: set[EventType] = set()
        #: Equation 2 fast-path table: ``(query name, event type) -> negated
        #: types to re-check at runtime``.  A missing key means the pair is
        #: ineligible (edge predicates apply) and must use the node scan.
        self._fast_path_guards: dict[tuple[str, EventType], tuple[EventType, ...]] = {}
        self._burst_type: Optional[EventType] = None
        self._burst: list[Event] = []
        self._operations = 0
        self._started = False
        #: Snapshots created across all partitions this engine instance has
        #: evaluated (the per-partition table is reset by :meth:`start`).
        self._lifetime_snapshots = 0

    # ------------------------------------------------------------------ #
    # Engine interface
    # ------------------------------------------------------------------ #
    def start(self, queries: Sequence[Query]) -> None:
        """Prepare templates, the snapshot table and the HAMLET graph."""
        if not queries:
            raise ExecutionError("HamletEngine.start requires at least one query")
        if self._table is not None:
            self._lifetime_snapshots += self._table.created_count()
        for query in queries:
            if not query.aggregate.kind.is_linear:
                raise SharingError(
                    f"HamletEngine only supports linear aggregates; query {query.name} "
                    f"computes {query.aggregate.describe()} — route it to GretaEngine"
                )
        # A new partition has no burst continuity with the previous one: the
        # optimizer's merge/split counters must not compare the first burst
        # of this partition against the last decision of the previous one.
        self.optimizer.begin_partition()
        same_queries = tuple(queries) == self._queries
        self._queries = tuple(queries)
        if not same_queries or self._merged is None:
            # Template compilation and sharing analysis are pure functions of
            # the query set; reuse them across partitions of the same unit.
            self._merged = MergedTemplate.from_queries(self._queries)
            self._templates = {
                query.name: self._merged.template(query) for query in self._queries
            }
            self._measures = measures_for_queries(self._queries)
            self._sharing_info = self._analyze_sharing()
            self._fast_path_guards = self._compile_fast_paths()
            self._relevant_types = set()
            for template in self._templates.values():
                self._relevant_types |= set(template.event_types) | set(template.negated_types)
        self._table = SnapshotTable(len(self._measures))
        self._graph = HamletGraph(self._queries, len(self._measures))
        self._burst_type = None
        self._burst = []
        self._operations = 0
        self._started = True

    def process(self, event: Event) -> None:
        """Buffer the event into the current burst, flushing completed bursts."""
        if not self._started:
            raise ExecutionError("HamletEngine.process called before start()")
        if event.event_type not in self._relevant_types:
            return
        if self._burst_type == event.event_type:
            self._burst.append(event)
            return
        self._flush_burst()
        if self._is_positive_type(event.event_type):
            self._burst_type = event.event_type
            self._burst = [event]
        else:
            # The type appears only under NOT: record it immediately.
            self._record_negatives([event])

    def results(self) -> dict[str, float]:
        """Final aggregate per query (Equation 3), resolving snapshot expressions."""
        if not self._started:
            raise ExecutionError("HamletEngine.results called before start()")
        self._flush_burst()
        assert self._graph is not None and self._table is not None
        results: dict[str, float] = {}
        for query in self._queries:
            template = self._templates[query.name]
            if not self.fast_predecessor_totals or any(
                not constraint.after_types for constraint in template.negations
            ):
                # Trailing NOT needs the per-node validity filter.
                total = self._graph.end_total(query, template, self._table)
            else:
                total = self._graph.end_total_from_accumulators(
                    query, template, self._table
                )
            results[query.name] = result_from_vector(query, total, self._measures)
        return results

    def close(self) -> None:
        """Evict the finished partition's graph and snapshot table.

        Compiled, query-set-pure state (templates, merged template, sharing
        analysis, fast-path guards) is kept so a pooled engine restarts
        without recompiling.
        """
        if self._table is not None:
            self._lifetime_snapshots += self._table.created_count()
        self._table = None
        self._graph = None
        self._burst_type = None
        self._burst = []
        self._operations = 0
        self._started = False

    def memory_units(self) -> int:
        """Graph, snapshot table and one result slot per query."""
        if self._graph is None or self._table is None:
            return 0
        return self._graph.memory_units() + self._table.memory_units() + len(self._queries)

    def operations(self) -> int:
        """Abstract work units performed since :meth:`start`."""
        graph_ops = self._graph.operations if self._graph is not None else 0
        return self._operations + graph_ops

    # ------------------------------------------------------------------ #
    # Introspection for tests and benchmarks
    # ------------------------------------------------------------------ #
    @property
    def snapshot_table(self) -> SnapshotTable:
        """The snapshot table of the current partition."""
        if self._table is None:
            raise ExecutionError("engine not started")
        return self._table

    @property
    def graph(self) -> HamletGraph:
        """The HAMLET graph of the current partition."""
        if self._graph is None:
            raise ExecutionError("engine not started")
        return self._graph

    def snapshots_created(self) -> int:
        """Number of snapshots created in the current partition."""
        return self._table.created_count() if self._table is not None else 0

    def total_snapshots_created(self) -> int:
        """Snapshots created across every partition this instance evaluated."""
        return self._lifetime_snapshots + self.snapshots_created()

    # ------------------------------------------------------------------ #
    # Compile-time sharing analysis
    # ------------------------------------------------------------------ #
    def _analyze_sharing(self) -> dict[EventType, _TypeSharingInfo]:
        assert self._merged is not None
        info: dict[EventType, _TypeSharingInfo] = {}
        for event_type in self._merged.shared_kleene_types():
            sharing_queries = self._merged.queries_sharing_kleene(event_type)
            candidates = frozenset(query.name for query in sharing_queries)
            type_info = _TypeSharingInfo(event_type=event_type, candidates=candidates)
            signatures = {
                query.name: query.predicates.signature_for_type(event_type)
                for query in sharing_queries
            }
            distinct_signatures = set(signatures.values())
            for query in sharing_queries:
                template = self._templates[query.name]
                has_edge_predicates = query.predicates.has_edge_predicates_for(event_type)
                negation_risk = any(
                    event_type in constraint.after_types for constraint in template.negations
                )
                differing_predicates = len(distinct_signatures) > 1
                type_info.introduces_snapshots[query.name] = bool(
                    has_edge_predicates or negation_risk or differing_predicates
                )
            info[event_type] = type_info
        return info

    def _compile_fast_paths(self) -> dict[tuple[str, EventType], tuple[EventType, ...]]:
        """Equation 2 fast-path table (see :func:`compile_fast_path_guards`)."""
        if not self.fast_predecessor_totals:
            return {}
        return compile_fast_path_guards(self._queries, self._templates)

    def _is_positive_type(self, event_type: EventType) -> bool:
        return any(
            event_type in template.event_types for template in self._templates.values()
        )

    # ------------------------------------------------------------------ #
    # Burst processing
    # ------------------------------------------------------------------ #
    def _flush_burst(self) -> None:
        if not self._burst:
            self._burst_type = None
            return
        events = self._burst
        event_type = self._burst_type
        self._burst = []
        self._burst_type = None
        assert event_type is not None and self._graph is not None

        self._record_negatives(events)

        positive_queries = [
            query
            for query in self._queries
            if event_type in self._templates[query.name].event_types
        ]
        if not positive_queries:
            return

        # A burst of E events closes the active graphlets of every other type
        # (Algorithm 1, lines 4–6).
        self._graph.deactivate_other_types(event_type)

        sharing_info = self._sharing_info.get(event_type)
        decision = self._decide(event_type, events, sharing_info)

        shared_names = decision.shared_queries if decision.share else frozenset()
        shared_queries = [query for query in positive_queries if query.name in shared_names]
        separate_queries = [query for query in positive_queries if query.name not in shared_names]

        if decision.share and len(shared_queries) >= 2:
            self._process_shared_burst(event_type, events, shared_queries, separate_queries)
        else:
            self._process_non_shared_burst(event_type, events, positive_queries)

    def _decide(
        self,
        event_type: EventType,
        events: list[Event],
        sharing_info: Optional[_TypeSharingInfo],
    ) -> SharingDecision:
        if sharing_info is None or len(sharing_info.candidates) < 2:
            candidates = frozenset() if sharing_info is None else sharing_info.candidates
            return SharingDecision(False, frozenset(), candidates, 0.0, "no shareable sub-pattern")
        stats = self._burst_statistics(event_type, events, sharing_info)
        return self.optimizer.decide(stats)

    def _burst_statistics(
        self, event_type: EventType, events: list[Event], info: _TypeSharingInfo
    ) -> BurstStatistics:
        assert self._graph is not None
        burst_size = len(events)
        # ``n`` in the cost model: events a non-shared evaluation would have
        # to touch per new event, i.e. the stored events of the burst type's
        # predecessor types (plus the burst itself), not the whole window.
        predecessor_types: set[EventType] = {event_type}
        for query_name in info.candidates:
            predecessor_types |= set(self._templates[query_name].predecessor_types(event_type))
        stored_predecessors = sum(
            len(self._graph.nodes_of_type(predecessor)) for predecessor in predecessor_types
        )
        events_in_window = max(1, stored_predecessors + burst_size)
        active = self._graph.active_graphlet(event_type)
        continuing = (
            active is not None and active.shared and active.query_names >= info.candidates
        )
        graphlet_size = (active.size() + burst_size) if continuing and active else burst_size
        snapshots_propagated = (
            len(active.propagated_snapshots()) if continuing and active else 1
        )
        profiles = []
        for query_name in sorted(info.candidates):
            template = self._templates[query_name]
            introduces = info.introduces_snapshots.get(query_name, False)
            expected = info.slow_fraction * burst_size if introduces else 0.0
            profiles.append(
                QueryBurstProfile(
                    query_name=query_name,
                    introduces_snapshots=introduces,
                    expected_snapshots=expected,
                    predecessor_types=max(1, len(template.predecessor_types(event_type))),
                )
            )
        types_per_query = max(
            2, round(sum(len(t.event_types) for t in self._templates.values()) / len(self._templates))
        )
        return BurstStatistics(
            event_type=event_type,
            burst_size=burst_size,
            events_in_window=events_in_window,
            graphlet_size=graphlet_size,
            snapshots_propagated=snapshots_propagated,
            graphlet_snapshots_needed=0 if continuing else 1,
            profiles=tuple(profiles),
            types_per_query=types_per_query,
        )

    # ------------------------------------------------------------------ #
    # Negative events
    # ------------------------------------------------------------------ #
    def _record_negatives(self, events: list[Event]) -> None:
        assert self._graph is not None
        for event in events:
            matched_by = frozenset(
                query.name
                for query in self._queries
                if event.event_type in self._templates[query.name].negated_types
                and query.accepts_event(event)
            )
            if matched_by:
                self._graph.add_negative(event, matched_by)

    # ------------------------------------------------------------------ #
    # Shared processing
    # ------------------------------------------------------------------ #
    def _process_shared_burst(
        self,
        event_type: EventType,
        events: list[Event],
        shared_queries: list[Query],
        separate_queries: list[Query],
    ) -> None:
        assert self._graph is not None and self._table is not None
        shared_names = frozenset(query.name for query in shared_queries)
        graphlet = self._ensure_shared_graphlet(event_type, shared_names, shared_queries)
        info = self._sharing_info.get(event_type)
        slow_events = 0

        for event in events:
            node = HamletNode(event=event)
            slow_events += self._append_shared(event, node, graphlet, shared_queries)
            for query in separate_queries:
                self._append_non_shared(event, node, query)
            if node.expression is not None or node.resolved:
                self._graph.register_node(graphlet, node)

        if info is not None and events:
            observed = slow_events / len(events)
            info.slow_fraction = 0.5 * info.slow_fraction + 0.5 * observed

    def _ensure_shared_graphlet(
        self,
        event_type: EventType,
        shared_names: frozenset[str],
        shared_queries: list[Query],
    ) -> Graphlet:
        assert self._graph is not None and self._table is not None
        active = self._graph.active_graphlet(event_type)
        if active is not None and active.shared and active.query_names == shared_names:
            return active
        # Merge: consolidate each query's current aggregate into a new
        # graphlet-level snapshot (Definition 8 / Figure 6(f)).  Pending
        # symbolic contributions are folded by predecessor_total_into.
        values: dict[str, AggregateVector] = {}
        for query in shared_queries:
            template = self._templates[query.name]
            total = MutableAggregate(len(self._measures))
            if template.is_start(event_type):
                total.count = 1.0
            self._graph.predecessor_total_into(total, query, template, event_type, self._table)
            values[query.name] = total.freeze()
            self._operations += 1
        snapshot = self._table.create(SnapshotLevel.GRAPHLET, event_type, values)
        graphlet = Graphlet(
            event_type=event_type,
            shared=True,
            query_names=shared_names,
            input_snapshot_id=snapshot.snapshot_id,
            dimension=len(self._measures),
        )
        return self._graph.open_graphlet(graphlet)

    def _append_shared(
        self, event: Event, node: HamletNode, graphlet: Graphlet, shared_queries: list[Query]
    ) -> int:
        """Process one event for the sharing queries; returns 1 if it needed a snapshot."""
        assert self._graph is not None and self._table is not None
        shared_names = graphlet.query_names
        matching = [query for query in shared_queries if query.accepts_event(event)]
        fast = len(matching) in (0, len(shared_queries)) and not self._needs_event_snapshot(
            event, shared_queries
        )
        if fast and not matching:
            # No sharing query matches the event; nothing to add for them.
            return 0
        if fast:
            # Mutable kernel: copy the graphlet's running sum once, extend it
            # in place, and freeze a single immutable expression for the node.
            builder = graphlet.running_builder.copy()
            builder.add_identity(graphlet.input_snapshot_id)
            if self._measures:
                contributions = tuple(
                    measure.contribution(event) for measure in self._measures
                )
                builder.fold_contribution(contributions)
            expression = builder.freeze()
            self._operations += expression.size()
            node.expression = expression
            node.expression_queries = shared_names
            graphlet.running_builder.add_builder(builder)
            self._graph.accumulator(event.event_type).add_pending(expression, shared_names)
            return 0
        # Event-level snapshot (Definition 9): per-query aggregates computed
        # individually, then propagated symbolically as a single variable.
        values: dict[str, AggregateVector] = {}
        for query in shared_queries:
            values[query.name] = self._non_shared_vector(event, query)
        snapshot = self._table.create(SnapshotLevel.EVENT, event.event_type, values)
        expression = SnapshotExpression.identity(snapshot.snapshot_id, len(self._measures))
        node.expression = expression
        node.expression_queries = shared_names
        graphlet.running_builder.add_identity(snapshot.snapshot_id)
        self._graph.accumulator(event.event_type).add_pending(expression, shared_names)
        self._operations += len(shared_queries)
        return 1

    def _needs_event_snapshot(self, event: Event, shared_queries: list[Query]) -> bool:
        """True if per-query predecessor sets may differ for this event."""
        assert self._graph is not None
        for query in shared_queries:
            if query.predicates.has_edge_predicates_for(event.event_type):
                return True
            template = self._templates[query.name]
            for constraint in template.negations:
                if event.event_type not in constraint.after_types:
                    continue
                if self._graph.nodes_of_type(constraint.negated_type) or self._graph.has_negatives(
                    constraint.negated_type
                ):
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Non-shared processing
    # ------------------------------------------------------------------ #
    def _process_non_shared_burst(
        self, event_type: EventType, events: list[Event], positive_queries: list[Query]
    ) -> None:
        assert self._graph is not None
        graphlet = self._ensure_non_shared_graphlet(event_type, positive_queries)
        for event in events:
            node = HamletNode(event=event)
            for query in positive_queries:
                self._append_non_shared(event, node, query)
            if node.resolved:
                self._graph.register_node(graphlet, node)

    def _ensure_non_shared_graphlet(
        self, event_type: EventType, positive_queries: list[Query]
    ) -> Graphlet:
        assert self._graph is not None
        query_names = frozenset(query.name for query in positive_queries)
        active = self._graph.active_graphlet(event_type)
        if active is not None and not active.shared and active.query_names == query_names:
            return active
        # Split (Figure 6(d)): simply start a fresh non-shared graphlet; the
        # aggregates of the previously shared graphlet stay symbolic and are
        # resolved per query on demand.
        graphlet = Graphlet(
            event_type=event_type,
            shared=False,
            query_names=query_names,
            dimension=len(self._measures),
        )
        return self._graph.open_graphlet(graphlet)

    def _append_non_shared(self, event: Event, node: HamletNode, query: Query) -> None:
        assert self._graph is not None
        if not query.accepts_event(event):
            return
        vector = self._non_shared_vector(event, query)
        node.resolved[query.name] = vector
        self._graph.accumulator(event.event_type).add_resolved(query.name, vector)

    def _non_shared_vector(self, event: Event, query: Query) -> AggregateVector:
        """Equation 2 for one query: aggregate of the event's predecessors.

        Fast path: when no edge predicate applies to the event's type and no
        applicable negation constraint is armed (no matching negative event
        stored), every stored predecessor is accepted, so the per-type
        running totals give the predecessor sum in O(predecessor types).
        Otherwise the stored predecessor nodes are scanned (the GRETA-style
        slow path).  Both paths fold in the same order, so they agree
        bit-for-bit on integer-valued inputs (see docs/DESIGN.md).
        """
        assert self._graph is not None and self._table is not None
        if not query.accepts_event(event):
            return AggregateVector.zero(len(self._measures))
        template = self._templates[query.name]
        total = MutableAggregate(len(self._measures))
        if template.is_start(event.event_type):
            total.count = 1.0
        if self._use_fast_predecessors(event, query):
            self._graph.predecessor_total_into(
                total, query, template, event.event_type, self._table
            )
        else:
            for predecessor in self._graph.predecessors_for(query, template, event):
                predecessor.vector_into(total, query.name, self._table)
        if self._measures:
            total.apply_contributions(
                measure.contribution(event) for measure in self._measures
            )
        self._operations += 1
        return total.freeze()

    def _use_fast_predecessors(self, event: Event, query: Query) -> bool:
        """Select the Equation 2 path for one ``(event, query)`` pair."""
        assert self._graph is not None
        guards = self._fast_path_guards.get((query.name, event.event_type))
        if guards is None:
            return False
        if not self._graph.is_in_order(event):
            return False
        for negated_type in guards:
            if self._graph.has_negatives(negated_type):
                return False
        return True
