"""HAMLET core: shared online event trend aggregation (Sections 3.3 and 4.2).

The pieces:

* :mod:`repro.core.expression` — symbolic snapshot expressions: the
  intermediate aggregate of an event in a *shared* graphlet is a linear
  combination of snapshots whose per-query values live in the snapshot table.
* :mod:`repro.core.snapshot` — snapshots and the snapshot table
  (Definitions 8 and 9).
* :mod:`repro.core.graphlet` — graphlets: runs of same-type events processed
  either shared (one expression per event for all queries) or non-shared
  (one resolved vector per event per query) (Definitions 6 and 7).
* :mod:`repro.core.hamlet_graph` — the HAMLET graph: all graphlets plus the
  per-type accumulators that feed new graphlet-level snapshots.
* :mod:`repro.core.engine` — the executor (Algorithm 1) that buffers bursts,
  asks the sharing optimizer for a decision per burst, and splits/merges
  graphlets accordingly.
"""

from repro.core.engine import HamletEngine
from repro.core.expression import SnapshotCoefficient, SnapshotExpression
from repro.core.graphlet import Graphlet, HamletNode
from repro.core.hamlet_graph import HamletGraph, TypeAccumulator
from repro.core.kernels import (
    KERNEL_BACKENDS,
    AutoKernelBackend,
    KernelBackend,
    PythonKernelBackend,
    resolve_kernel_backend,
)
from repro.core.snapshot import Snapshot, SnapshotTable

__all__ = [
    "AutoKernelBackend",
    "Graphlet",
    "HamletEngine",
    "HamletGraph",
    "HamletNode",
    "KERNEL_BACKENDS",
    "KernelBackend",
    "PythonKernelBackend",
    "Snapshot",
    "SnapshotCoefficient",
    "SnapshotExpression",
    "SnapshotTable",
    "TypeAccumulator",
    "resolve_kernel_backend",
]
