"""The HAMLET graph: graphlets, per-type accumulators and predecessor access.

The graph serves three access patterns:

* **shared propagation** — the engine only touches the active graphlet's
  running expression (O(#snapshots) per event);
* **snapshot creation** — a new graphlet-level snapshot needs, per sharing
  query, the total intermediate aggregate of every predecessor *type*
  (Definition 8, Equation 5).  :class:`TypeAccumulator` maintains those
  totals, deferring the per-query evaluation of shared (symbolic) events
  until a snapshot actually needs them;
* **non-shared propagation** — the GRETA-style path needs the individual
  predecessor events of a new event for one query, with edge predicates and
  negation applied (Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.expression import SnapshotExpression
from repro.core.graphlet import Graphlet, HamletNode
from repro.core.snapshot import SnapshotTable
from repro.events.event import Event, EventType
from repro.greta.aggregators import AggregateVector
from repro.query.query import Query
from repro.template.template import QueryTemplate


@dataclass
class TypeAccumulator:
    """Running totals of intermediate aggregates for one event type.

    ``resolved`` holds per-query totals that are already plain numbers;
    ``pending`` holds the symbolic expressions of shared events that have not
    been evaluated per query yet.  Deferring the evaluation keeps the shared
    fast path free of per-query work — the fold only happens when a snapshot
    is created (the "snapshot maintenance" cost of the paper's model).
    """

    dimension: int
    resolved: dict[str, AggregateVector] = field(default_factory=dict)
    pending: list[tuple[SnapshotExpression, frozenset[str]]] = field(default_factory=list)

    def add_resolved(self, query_name: str, vector: AggregateVector) -> None:
        """Add a per-query resolved vector to the running total."""
        current = self.resolved.get(query_name, AggregateVector.zero(self.dimension))
        self.resolved[query_name] = current.add(vector)

    def add_pending(self, expression: SnapshotExpression, query_names: frozenset[str]) -> None:
        """Add a shared event's expression (valid for ``query_names``)."""
        self.pending.append((expression, query_names))

    def fold(self, table: SnapshotTable) -> int:
        """Evaluate all pending expressions per query and fold them into ``resolved``.

        Returns the number of per-query evaluations performed (work units).
        """
        evaluations = 0
        for expression, query_names in self.pending:
            for query_name in query_names:
                vector = expression.evaluate(table.resolver(query_name))
                self.add_resolved(query_name, vector)
                evaluations += max(1, expression.size())
        self.pending.clear()
        return evaluations

    def total(self, query_name: str, table: SnapshotTable) -> AggregateVector:
        """Current total for one query (evaluating pending expressions read-only)."""
        total = self.resolved.get(query_name, AggregateVector.zero(self.dimension))
        for expression, query_names in self.pending:
            if query_name in query_names:
                total = total.add(expression.evaluate(table.resolver(query_name)))
        return total

    def memory_units(self) -> int:
        """Entries kept for the running totals."""
        return len(self.resolved) + sum(expr.size() for expr, _ in self.pending)


class HamletGraph:
    """All graphlets of one partition plus the indexes the engine needs."""

    def __init__(self, queries: Iterable[Query], dimension: int) -> None:
        self._dimension = dimension
        self._queries = tuple(queries)
        self.graphlets: list[Graphlet] = []
        self._active_by_type: dict[EventType, Graphlet] = {}
        self._nodes_by_type: dict[EventType, list[HamletNode]] = {}
        self._accumulators: dict[EventType, TypeAccumulator] = {}
        self._negatives: dict[EventType, list[tuple[Event, frozenset[str]]]] = {}
        #: Abstract work counter (predecessor accesses, expression updates,
        #: per-query evaluations); read by the engine's ``operations()``.
        self.operations = 0

    # ------------------------------------------------------------------ #
    # Graphlets
    # ------------------------------------------------------------------ #
    def active_graphlet(self, event_type: EventType) -> Graphlet | None:
        """The active graphlet of ``event_type``, if any."""
        graphlet = self._active_by_type.get(event_type)
        if graphlet is not None and graphlet.active:
            return graphlet
        return None

    def open_graphlet(self, graphlet: Graphlet) -> Graphlet:
        """Register a freshly created graphlet as the active one for its type."""
        previous = self._active_by_type.get(graphlet.event_type)
        if previous is not None:
            previous.deactivate()
        self.graphlets.append(graphlet)
        self._active_by_type[graphlet.event_type] = graphlet
        return graphlet

    def deactivate_type(self, event_type: EventType) -> None:
        """Deactivate the active graphlet of ``event_type`` (if any)."""
        graphlet = self._active_by_type.get(event_type)
        if graphlet is not None:
            graphlet.deactivate()

    def deactivate_other_types(self, event_type: EventType) -> None:
        """Deactivate active graphlets of every type except ``event_type``.

        Mirrors Algorithm 1 lines 4–6: the arrival of an ``E`` event closes
        the graphlets of all other types.
        """
        for other_type, graphlet in self._active_by_type.items():
            if other_type != event_type:
                graphlet.deactivate()

    # ------------------------------------------------------------------ #
    # Nodes
    # ------------------------------------------------------------------ #
    def register_node(self, graphlet: Graphlet, node: HamletNode) -> None:
        """Append a node to its graphlet and to the per-type index."""
        graphlet.append(node)
        self._nodes_by_type.setdefault(node.event.event_type, []).append(node)

    def nodes_of_type(self, event_type: EventType) -> list[HamletNode]:
        """All stored nodes of one type, in arrival order."""
        return self._nodes_by_type.get(event_type, [])

    def node_count(self) -> int:
        """Total number of stored (matched) events."""
        return sum(len(nodes) for nodes in self._nodes_by_type.values())

    def add_negative(self, event: Event, query_names: frozenset[str]) -> None:
        """Record an event matched by a negated sub-pattern of some queries."""
        self._negatives.setdefault(event.event_type, []).append((event, query_names))

    # ------------------------------------------------------------------ #
    # Accumulators (feed graphlet-level snapshots)
    # ------------------------------------------------------------------ #
    def accumulator(self, event_type: EventType) -> TypeAccumulator:
        """The running-total accumulator of one event type."""
        if event_type not in self._accumulators:
            self._accumulators[event_type] = TypeAccumulator(self._dimension)
        return self._accumulators[event_type]

    def predecessor_total(
        self, query: Query, template: QueryTemplate, event_type: EventType, table: SnapshotTable
    ) -> AggregateVector:
        """Equation 5: total aggregate of all predecessor-type events for one query."""
        total = AggregateVector.zero(self._dimension)
        for predecessor_type in template.predecessor_types(event_type):
            accumulator = self._accumulators.get(predecessor_type)
            if accumulator is None:
                continue
            total = total.add(accumulator.total(query.name, table))
            self.operations += 1
        return total

    def fold_accumulators(self, event_types: Iterable[EventType], table: SnapshotTable) -> None:
        """Fold pending expressions of the given types into resolved totals."""
        for event_type in event_types:
            accumulator = self._accumulators.get(event_type)
            if accumulator is not None:
                self.operations += accumulator.fold(table)

    # ------------------------------------------------------------------ #
    # Non-shared (GRETA-style) predecessor access
    # ------------------------------------------------------------------ #
    def predecessors_for(
        self, query: Query, template: QueryTemplate, event: Event
    ) -> Iterator[HamletNode]:
        """Individual predecessor nodes of ``event`` for one query (Equation 2)."""
        for predecessor_type in template.predecessor_types(event.event_type):
            for node in self._nodes_by_type.get(predecessor_type, ()):
                self.operations += 1
                if not node.event < event:
                    continue
                if not node.covers_query(query.name):
                    continue
                if not query.accepts_edge(node.event, event):
                    continue
                if self._negation_blocks(query.name, template, node.event, event):
                    continue
                yield node

    def _negation_blocks(
        self, query_name: str, template: QueryTemplate, previous: Event, current: Event
    ) -> bool:
        for constraint in template.negations:
            if not constraint.after_types:
                continue
            if previous.event_type not in constraint.before_types:
                continue
            if current.event_type not in constraint.after_types:
                continue
            for negative, matched_by in self._negatives.get(constraint.negated_type, ()):
                if query_name in matched_by and previous < negative < current:
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def end_total(self, query: Query, template: QueryTemplate, table: SnapshotTable) -> AggregateVector:
        """Equation 3: sum of intermediate aggregates of valid end-type events."""
        trailing = [c for c in template.negations if not c.after_types]
        total = AggregateVector.zero(self._dimension)
        for event_type in template.end_types:
            for node in self._nodes_by_type.get(event_type, ()):
                if not node.covers_query(query.name):
                    continue
                if trailing and self._cancelled_by_trailing(query.name, node.event, trailing):
                    continue
                total = total.add(node.vector_for(query.name, table))
                self.operations += 1
        return total

    def _cancelled_by_trailing(self, query_name: str, event: Event, constraints) -> bool:
        for constraint in constraints:
            if event.event_type not in constraint.before_types:
                continue
            for negative, matched_by in self._negatives.get(constraint.negated_type, ()):
                if query_name in matched_by and event < negative:
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def memory_units(self) -> int:
        """Graphlets, nodes, accumulators and negative events."""
        units = sum(graphlet.memory_units() for graphlet in self.graphlets)
        units += sum(acc.memory_units() for acc in self._accumulators.values())
        units += sum(len(entries) for entries in self._negatives.values())
        return units
