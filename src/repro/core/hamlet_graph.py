"""The HAMLET graph: graphlets, per-type accumulators and predecessor access.

The graph serves three access patterns:

* **shared propagation** — the engine only touches the active graphlet's
  running expression (O(#snapshots) per event);
* **snapshot creation** — a new graphlet-level snapshot needs, per sharing
  query, the total intermediate aggregate of every predecessor *type*
  (Definition 8, Equation 5).  :class:`TypeAccumulator` maintains those
  totals, deferring the per-query evaluation of shared (symbolic) events
  until a snapshot actually needs them;
* **non-shared propagation** — the GRETA-style path needs the predecessors of
  a new event for one query, with edge predicates and negation applied
  (Equation 2).  When neither applies, the per-type running totals answer the
  predecessor sum in O(predecessor types) instead of a node scan — the fast
  path selected by the engine (see docs/DESIGN.md).

All running totals are kept in the mutable kernels of
:mod:`repro.core.kernels`; immutable values are produced only at API
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.expression import SnapshotExpression
from repro.core.graphlet import Graphlet, HamletNode
from repro.core.kernels import MutableAggregate, MutableExpressionBuilder
from repro.core.snapshot import SnapshotTable
from repro.events.event import Event, EventType
from repro.greta.aggregators import AggregateVector
from repro.query.query import Query
from repro.template.template import QueryTemplate


@dataclass
class TypeAccumulator:
    """Running totals of intermediate aggregates for one event type.

    ``resolved`` holds per-query totals that are already plain numbers;
    ``pending`` holds the symbolic contributions of shared events that have
    not been evaluated per query yet, merged in place into one
    :class:`~repro.core.kernels.MutableExpressionBuilder` per sharing query
    set.  Deferring (and batching) the evaluation keeps the shared fast path
    free of per-query work — the fold happens when a snapshot is created or a
    fast-path total is needed, and costs one expression evaluation per query
    set rather than one per event.
    """

    dimension: int
    resolved: dict[str, MutableAggregate] = field(default_factory=dict)
    pending: dict[frozenset[str], MutableExpressionBuilder] = field(default_factory=dict)

    def _resolved_for(self, query_name: str) -> MutableAggregate:
        accumulator = self.resolved.get(query_name)
        if accumulator is None:
            accumulator = self.resolved[query_name] = MutableAggregate(self.dimension)
        return accumulator

    def add_resolved(self, query_name: str, vector: AggregateVector) -> None:
        """Add a per-query resolved vector to the running total."""
        self._resolved_for(query_name).add_vector(vector)

    def add_pending(self, expression: SnapshotExpression, query_names: frozenset[str]) -> None:
        """Add a shared event's expression (valid for ``query_names``)."""
        builder = self.pending.get(query_names)
        if builder is None:
            builder = self.pending[query_names] = MutableExpressionBuilder(self.dimension)
        builder.add_expression(expression)

    def fold(self, table: SnapshotTable) -> int:
        """Evaluate all pending contributions per query and fold them into ``resolved``.

        Returns the number of per-query evaluations performed (work units).
        """
        if not self.pending:
            return 0
        evaluations = 0
        for query_names, builder in self.pending.items():
            for query_name in query_names:
                lookup = table.raw_lookup(query_name)
                applied = builder.evaluate_into(self._resolved_for(query_name), lookup)
                evaluations += max(1, applied)
        self.pending.clear()
        return evaluations

    def total_into(
        self, accumulator: MutableAggregate, query_name: str, table: SnapshotTable
    ) -> None:
        """Fold the current total for one query into ``accumulator``.

        Pending contributions are evaluated read-only; call :meth:`fold`
        first when repeated totals of the same type are expected.
        """
        resolved = self.resolved.get(query_name)
        if resolved is not None:
            accumulator.add(resolved)
        for query_names, builder in self.pending.items():
            if query_name in query_names:
                builder.evaluate_into(accumulator, table.raw_lookup(query_name))

    def total(self, query_name: str, table: SnapshotTable) -> AggregateVector:
        """Current total for one query (evaluating pending expressions read-only)."""
        accumulator = MutableAggregate(self.dimension)
        self.total_into(accumulator, query_name, table)
        return accumulator.freeze()

    def memory_units(self) -> int:
        """Entries kept for the running totals."""
        return len(self.resolved) + sum(builder.size() for builder in self.pending.values())


class HamletGraph:
    """All graphlets of one partition plus the indexes the engine needs."""

    def __init__(self, queries: Iterable[Query], dimension: int) -> None:
        self._dimension = dimension
        self._queries = tuple(queries)
        self.graphlets: list[Graphlet] = []
        self._active_by_type: dict[EventType, Graphlet] = {}
        self._nodes_by_type: dict[EventType, list[HamletNode]] = {}
        self._accumulators: dict[EventType, TypeAccumulator] = {}
        self._negatives: dict[EventType, list[tuple[Event, frozenset[str]]]] = {}
        #: The most recent event stored in the graph (nodes or negatives);
        #: guards the O(1) predecessor fast path, which assumes in-order
        #: streams (every stored event precedes the incoming one).
        self._latest_event: Event | None = None
        #: Abstract work counter (predecessor accesses, expression updates,
        #: per-query evaluations); read by the engine's ``operations()``.
        self.operations = 0

    # ------------------------------------------------------------------ #
    # Graphlets
    # ------------------------------------------------------------------ #
    def active_graphlet(self, event_type: EventType) -> Graphlet | None:
        """The active graphlet of ``event_type``, if any."""
        graphlet = self._active_by_type.get(event_type)
        if graphlet is not None and graphlet.active:
            return graphlet
        return None

    def open_graphlet(self, graphlet: Graphlet) -> Graphlet:
        """Register a freshly created graphlet as the active one for its type."""
        previous = self._active_by_type.get(graphlet.event_type)
        if previous is not None:
            previous.deactivate()
        self.graphlets.append(graphlet)
        self._active_by_type[graphlet.event_type] = graphlet
        return graphlet

    def deactivate_type(self, event_type: EventType) -> None:
        """Deactivate the active graphlet of ``event_type`` (if any)."""
        graphlet = self._active_by_type.get(event_type)
        if graphlet is not None:
            graphlet.deactivate()

    def deactivate_other_types(self, event_type: EventType) -> None:
        """Deactivate active graphlets of every type except ``event_type``.

        Mirrors Algorithm 1 lines 4–6: the arrival of an ``E`` event closes
        the graphlets of all other types.
        """
        for other_type, graphlet in self._active_by_type.items():
            if other_type != event_type:
                graphlet.deactivate()

    # ------------------------------------------------------------------ #
    # Nodes
    # ------------------------------------------------------------------ #
    def register_node(self, graphlet: Graphlet, node: HamletNode) -> None:
        """Append a node to its graphlet and to the per-type index."""
        graphlet.append(node)
        self._nodes_by_type.setdefault(node.event.event_type, []).append(node)
        if self._latest_event is None or self._latest_event < node.event:
            self._latest_event = node.event

    def nodes_of_type(self, event_type: EventType) -> list[HamletNode]:
        """All stored nodes of one type, in arrival order."""
        return self._nodes_by_type.get(event_type, [])

    def node_count(self) -> int:
        """Total number of stored (matched) events."""
        return sum(len(nodes) for nodes in self._nodes_by_type.values())

    def add_negative(self, event: Event, query_names: frozenset[str]) -> None:
        """Record an event matched by a negated sub-pattern of some queries."""
        self._negatives.setdefault(event.event_type, []).append((event, query_names))
        if self._latest_event is None or self._latest_event < event:
            self._latest_event = event

    def has_negatives(self, negated_type: EventType) -> bool:
        """True if any recorded negative event of ``negated_type`` exists."""
        return bool(self._negatives.get(negated_type))

    def is_in_order(self, event: Event) -> bool:
        """True if ``event`` arrives after every event stored so far.

        The O(1) predecessor fast path relies on this: running per-type
        totals only equal the predecessor scan when all stored events
        strictly precede the incoming one.
        """
        return self._latest_event is None or self._latest_event < event

    # ------------------------------------------------------------------ #
    # Accumulators (feed graphlet-level snapshots and the fast path)
    # ------------------------------------------------------------------ #
    def accumulator(self, event_type: EventType) -> TypeAccumulator:
        """The running-total accumulator of one event type."""
        accumulator = self._accumulators.get(event_type)
        if accumulator is None:
            accumulator = self._accumulators[event_type] = TypeAccumulator(self._dimension)
        return accumulator

    def predecessor_total_into(
        self,
        accumulator: MutableAggregate,
        query: Query,
        template: QueryTemplate,
        event_type: EventType,
        table: SnapshotTable,
    ) -> None:
        """Equation 5, in place: fold the predecessor-type totals for one query.

        This is also Equation 2's O(1) fast path: when no edge predicate or
        negation constraint discriminates between stored predecessors, the
        per-type running totals *are* the predecessor sum — O(predecessor
        types) instead of a scan over stored nodes.
        """
        for predecessor_type in template.predecessor_types(event_type):
            type_accumulator = self._accumulators.get(predecessor_type)
            if type_accumulator is None:
                continue
            if type_accumulator.pending:
                # Fold so repeated fast-path totals stay O(1) per type.
                self.operations += type_accumulator.fold(table)
            type_accumulator.total_into(accumulator, query.name, table)
            self.operations += 1

    def predecessor_total(
        self, query: Query, template: QueryTemplate, event_type: EventType, table: SnapshotTable
    ) -> AggregateVector:
        """Equation 5: total aggregate of all predecessor-type events for one query."""
        accumulator = MutableAggregate(self._dimension)
        self.predecessor_total_into(accumulator, query, template, event_type, table)
        return accumulator.freeze()

    def fold_accumulators(self, event_types: Iterable[EventType], table: SnapshotTable) -> None:
        """Fold pending expressions of the given types into resolved totals."""
        for event_type in event_types:
            accumulator = self._accumulators.get(event_type)
            if accumulator is not None:
                self.operations += accumulator.fold(table)

    # ------------------------------------------------------------------ #
    # Non-shared (GRETA-style) predecessor access — the slow path
    # ------------------------------------------------------------------ #
    def predecessors_for(
        self, query: Query, template: QueryTemplate, event: Event
    ) -> Iterator[HamletNode]:
        """Individual predecessor nodes of ``event`` for one query (Equation 2)."""
        query_name = query.name
        check_edges = bool(query.predicates.edge_predicates)
        constraints = [
            constraint
            for constraint in template.negations
            if constraint.after_types
            and event.event_type in constraint.after_types
            and self.has_negatives(constraint.negated_type)
        ]
        for predecessor_type in template.predecessor_types(event.event_type):
            for node in self._nodes_by_type.get(predecessor_type, ()):
                self.operations += 1
                if not node.event < event:
                    continue
                if not node.covers_query(query_name):
                    continue
                if check_edges and not query.accepts_edge(node.event, event):
                    continue
                if constraints and self._negation_blocks(
                    query_name, constraints, node.event, event
                ):
                    continue
                yield node

    def _negation_blocks(
        self, query_name: str, constraints, previous: Event, current: Event
    ) -> bool:
        for constraint in constraints:
            if previous.event_type not in constraint.before_types:
                continue
            for negative, matched_by in self._negatives.get(constraint.negated_type, ()):
                if query_name in matched_by and previous < negative < current:
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def end_total(self, query: Query, template: QueryTemplate, table: SnapshotTable) -> AggregateVector:
        """Equation 3: sum of intermediate aggregates of valid end-type events."""
        trailing = [c for c in template.negations if not c.after_types]
        total = MutableAggregate(self._dimension)
        for event_type in template.end_types:
            for node in self._nodes_by_type.get(event_type, ()):
                if not node.covers_query(query.name):
                    continue
                if trailing and self._cancelled_by_trailing(query.name, node.event, trailing):
                    continue
                node.vector_into(total, query.name, table)
                self.operations += 1
        return total.freeze()

    def end_total_from_accumulators(
        self, query: Query, template: QueryTemplate, table: SnapshotTable
    ) -> AggregateVector:
        """Equation 3 via the per-type running totals — O(end types).

        Only valid when (a) every registered node's aggregate was also folded
        into its type accumulator (the engine maintains this invariant) and
        (b) the query has no trailing negation constraint, so every stored
        end-type node contributes.  Callers that cannot guarantee both must
        use :meth:`end_total`.
        """
        total = MutableAggregate(self._dimension)
        for event_type in template.end_types:
            accumulator = self._accumulators.get(event_type)
            if accumulator is None:
                continue
            accumulator.total_into(total, query.name, table)
            self.operations += 1
        return total.freeze()

    def _cancelled_by_trailing(self, query_name: str, event: Event, constraints) -> bool:
        for constraint in constraints:
            if event.event_type not in constraint.before_types:
                continue
            for negative, matched_by in self._negatives.get(constraint.negated_type, ()):
                if query_name in matched_by and event < negative:
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def memory_units(self) -> int:
        """Graphlets, nodes, accumulators and negative events."""
        units = sum(graphlet.memory_units() for graphlet in self.graphlets)
        units += sum(acc.memory_units() for acc in self._accumulators.values())
        units += sum(len(entries) for entries in self._negatives.values())
        return units


class StoredEvent:
    """One event stored once for *all* window instances covering it.

    ``lo..hi`` is the inclusive range of window-instance indices the event
    belongs to (computed with the snapped integer window arithmetic when the
    event arrived, so membership tests are exact integer comparisons even
    for fractional slides).  ``values`` holds the event's per-``(consumer,
    window)`` intermediate aggregates for consumers that may later need a
    per-node scan (edge predicates, negation) — consumers on the pure
    coefficient path store nothing per node.
    """

    __slots__ = ("event", "lo", "hi", "values")

    def __init__(self, event: Event, lo: int, hi: int, values: dict | None) -> None:
        self.event = event
        self.lo = lo
        self.hi = hi
        self.values = values

    def covers(self, index: int) -> bool:
        """True if the event belongs to window instance ``index``."""
        return self.lo <= index <= self.hi


class SharedWindowStore:
    """Event store shared by every live window instance of one partition group.

    The multi-window engines keep each matched event (and each negated
    event) exactly once, tagged with its covering-window range, instead of
    duplicating it into ``ceil(size/slide)`` per-instance graphs.  The store
    serves the window-filtered accesses the slow paths need — predecessor
    scans under edge predicates, negation "between" checks, trailing-NOT
    end-node filtering — and evicts events the moment their range falls
    below every live instance.
    """

    def __init__(self) -> None:
        self._nodes: dict[EventType, list[StoredEvent]] = {}
        #: Negated events as ``(stored event, matching consumer keys)``.
        self._negatives: dict[EventType, list[tuple[StoredEvent, frozenset]]] = {}
        #: Incrementally tracked footprint so :meth:`memory_units` is O(1):
        #: one unit per stored event plus one per stored per-window value.
        self._units = 0
        self.operations = 0

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def add_node(self, event: Event, lo: int, hi: int, values: dict | None) -> StoredEvent:
        """Store one matched event covered by window instances ``lo..hi``."""
        stored = StoredEvent(event, lo, hi, values)
        self._nodes.setdefault(event.event_type, []).append(stored)
        self._units += 1 + (len(values) if values else 0)
        return stored

    def add_negative(self, event: Event, lo: int, hi: int, matched_by: frozenset) -> None:
        """Store one negated event matched by the given consumers."""
        stored = StoredEvent(event, lo, hi, None)
        self._negatives.setdefault(event.event_type, []).append((stored, matched_by))
        self._units += 1

    # ------------------------------------------------------------------ #
    # Window-filtered access
    # ------------------------------------------------------------------ #
    def nodes_of_type(self, event_type: EventType) -> list[StoredEvent]:
        """All stored events of one type, in arrival order."""
        return self._nodes.get(event_type, [])

    def node_count(self) -> int:
        """Total number of stored (matched) events."""
        return sum(len(nodes) for nodes in self._nodes.values())

    def has_negatives(self, negated_type: EventType) -> bool:
        """True if any negated event of ``negated_type`` is still stored."""
        return bool(self._negatives.get(negated_type))

    def negative_count(self) -> int:
        """Number of stored negated events."""
        return sum(len(entries) for entries in self._negatives.values())

    def negation_blocks(
        self, consumer, constraints, previous: Event, current: Event
    ) -> bool:
        """True if a negated event of ``consumer`` lies between the two events.

        Both events belong to the window under evaluation, so any negated
        event strictly between them does too — the check needs no window
        filter (mirrors :meth:`HamletGraph._negation_blocks`).
        """
        for constraint in constraints:
            if previous.event_type not in constraint.before_types:
                continue
            for stored, matched_by in self._negatives.get(constraint.negated_type, ()):
                if consumer in matched_by and previous < stored.event < current:
                    return True
        return False

    def cancelled_by_trailing(
        self, consumer, constraints, event: Event, window_index: int
    ) -> bool:
        """Trailing-NOT check: a matching negated event follows ``event`` in-window."""
        for constraint in constraints:
            if event.event_type not in constraint.before_types:
                continue
            for stored, matched_by in self._negatives.get(constraint.negated_type, ()):
                if (
                    consumer in matched_by
                    and stored.covers(window_index)
                    and event < stored.event
                ):
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #
    def evict_to(self, oldest: int | None) -> None:
        """Drop events whose covering range ends before instance ``oldest``.

        Events arrive in time order, so each per-type list is non-decreasing
        in ``hi`` and eviction trims a prefix.  ``None`` empties the store.
        """
        if oldest is None:
            self._nodes.clear()
            self._negatives.clear()
            self._units = 0
            return
        for event_type, nodes in list(self._nodes.items()):
            keep = 0
            while keep < len(nodes) and nodes[keep].hi < oldest:
                stored = nodes[keep]
                self._units -= 1 + (len(stored.values) if stored.values else 0)
                keep += 1
            if keep:
                del nodes[:keep]
                if not nodes:
                    del self._nodes[event_type]
        for event_type, entries in list(self._negatives.items()):
            keep = 0
            while keep < len(entries) and entries[keep][0].hi < oldest:
                self._units -= 1
                keep += 1
            if keep:
                del entries[:keep]
                if not entries:
                    del self._negatives[event_type]

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def memory_units(self) -> int:
        """One unit per stored event plus one per stored per-window value.

        O(1): the count is maintained incrementally on insert and eviction.
        A node's *values* entries are counted as of insertion time; windows
        closed since then keep their (dead) entries until the node is
        evicted, which bounds the overhang by one window span.
        """
        return self._units
