"""Watermark-driven reorder buffer and the runtime's arrival-order guards.

Every executor used to hard-require strict ``(time, sequence)`` arrival:
one late event raised and killed the whole run, so the real feeds behind
the paper's benchmarks (NYC taxi, stock ticks) only worked as pre-sorted
replays.  This module turns that crash into configurable behaviour:

* a :class:`ReorderBuffer` sits in front of a streaming executor.  With
  ``allowed_lateness=N`` an event is *buffered* until the **watermark** —
  the maximum event time seen so far minus ``N`` — passes its timestamp;
  buffered events are released strictly below the watermark, re-sorted by
  ``(time, sequence)``, so any stream shuffled within the lateness horizon
  replays the fully ordered stream bit-identically into the executor core
  (and window close is automatically deferred until the watermark passes
  the window end, because closes are driven by *released* event times);
* an event older than the watermark is **late** and hits a policy:
  ``"raise"`` (the pre-buffer behaviour, default), ``"drop"`` (counted in
  :class:`~repro.runtime.metrics.ExecutionMetrics`), ``"side_output"``
  (handed to a callback) or ``"retract"`` (the affected closed windows are
  re-emitted from checkpoint-style engine state with bounded per-update
  work — see :class:`~repro.runtime.streaming.StreamingExecutor`).

The buffer is columnar-aware: a sorted :class:`~repro.events.block.EventBlock`
is buffered as a zero-copy *segment* and released as block slices split at
watermark boundaries — never exploded into per-event objects — so the
block hot path stays block-shaped end to end.  Loose events (scalar
ingest, unsorted-block fallback rows) ride an in-order fast-path tail
list, falling back to a heap only when an arrival regresses; releases
k-way-merge the sources by ``(time, sequence)``.

This module is also the one sanctioned home (with
:mod:`repro.events.stream`) of raw "cursor versus event time" order
comparisons: reprolint RL011 forbids them everywhere else, so the
executors and shared-window engines call the ``ensure_*`` guards below
instead of inlining the comparison — one exception type
(:class:`~repro.errors.OutOfOrderError`), one message format per
contract, no copy-paste drift.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Any, Iterator, Optional, Sequence, Union

from repro.errors import ExecutionError, OutOfOrderError
from repro.events.block import EventBlock

__all__ = [
    "LATE_POLICIES",
    "ReorderBuffer",
    "ensure_block_in_order",
    "ensure_in_order",
    "ensure_shared_event_run_order",
    "ensure_shared_order",
    "ensure_shared_run_order",
    "late_event_error",
    "validate_lateness",
]

#: The supported late-event policies, in documentation order.
LATE_POLICIES = ("raise", "drop", "side_output", "retract")

#: A release batch: loose events in order, or a zero-copy block slice.
Release = tuple[str, Union[list, EventBlock]]

#: Shared "nothing released" result of :meth:`ReorderBuffer.push` — callers
#: only iterate releases, so one immutable-by-convention instance avoids an
#: allocation per in-order event.
_NO_RELEASES: list = []


def validate_lateness(allowed_lateness, late_policy, on_late) -> None:
    """Fail fast on an inconsistent lateness configuration.

    Shared by the streaming executor, the sharded driver and the CLI so
    the three surfaces cannot drift on what a valid combination is.
    """
    if late_policy not in LATE_POLICIES:
        raise ExecutionError(
            f"late policy must be one of {', '.join(LATE_POLICIES)}, "
            f"got {late_policy!r}"
        )
    if allowed_lateness is None:
        if late_policy != "raise":
            raise ExecutionError(
                f"late_policy={late_policy!r} requires allowed_lateness: "
                "without a lateness horizon there is no watermark to be "
                "late against"
            )
        if on_late is not None:
            raise ExecutionError(
                "on_late requires allowed_lateness and "
                "late_policy='side_output'"
            )
        return
    if not allowed_lateness >= 0.0:  # also rejects NaN
        raise ExecutionError(
            f"allowed_lateness must be >= 0, got {allowed_lateness!r}"
        )
    if late_policy == "side_output" and on_late is None:
        raise ExecutionError(
            "late_policy='side_output' requires an on_late callback to "
            "receive the late events"
        )
    if on_late is not None and late_policy != "side_output":
        raise ExecutionError(
            "on_late is only consumed by late_policy='side_output'; "
            f"got late_policy={late_policy!r}"
        )


# ---------------------------------------------------------------------- #
# Order guards (the one sanctioned home of raw order comparisons)
# ---------------------------------------------------------------------- #
def ensure_in_order(time, clock, *, what: str = "streaming executor") -> None:
    """Reject an event time regressing behind the stream clock.

    The time-only, non-strict contract of the executor boundaries: equal
    times are fine (``(time, sequence)`` strictness is the shared-window
    engines' stricter, separate contract).
    """
    if time < clock:
        raise OutOfOrderError(
            f"{what} requires in-order arrival: event at {time} arrived "
            f"after stream time {clock}; pass allowed_lateness=... to "
            "buffer bounded disorder"
        )


def ensure_block_in_order(
    times: Sequence, start: int, stop: int, clock, *, what: str = "streaming executor"
):
    """Validate a whole block slice against the clock in one pass.

    Checks ``times[start:stop]`` is non-decreasing and does not start
    before ``clock`` — exactly what per-row :func:`ensure_in_order` calls
    with an advancing clock would enforce, hoisted out of the processing
    loop.  Returns the last time of the slice (the new clock), or
    ``clock`` for an empty slice.
    """
    previous = clock
    for position in range(start, stop):
        value = times[position]
        if value < previous:
            raise OutOfOrderError(
                f"{what} requires in-order arrival: event at {value} arrived "
                f"after stream time {previous}; pass allowed_lateness=... to "
                "buffer bounded disorder"
            )
        previous = value
    return previous


def _shared_order_error(time, sequence, last_time, last_sequence) -> OutOfOrderError:
    # The single message format of the strict shared-window contract; the
    # three historical call sites each had their own wording (and split
    # between StreamError and ExecutionError for the same condition).
    return OutOfOrderError(
        "shared-window execution requires strictly ordered arrival (by "
        f"time, then sequence); event time={time!r} seq={sequence} does "
        f"not follow time={last_time!r} seq={last_sequence} — use "
        "shared_windows=False for such streams"
    )


def ensure_shared_order(latest, event) -> None:
    """Strict ``(time, sequence)`` guard for one event against a cursor.

    ``latest`` is the engine's order cursor (an ``Event``, an
    ``_OrderPoint``, or ``None`` at start of stream); the comparison is
    duck-typed on ``time``/``sequence`` exactly like ``Event.__lt__``.
    """
    if latest is not None and not latest < event:
        raise _shared_order_error(
            event.time, event.sequence, latest.time, latest.sequence
        )


def ensure_shared_event_run_order(events: Iterator, latest):
    """Strict guard over a run of events; returns the new cursor.

    ``events`` yields objects with ``time``/``sequence``; the run must
    strictly follow ``latest`` and be strictly ordered internally.
    Returns the last event (or ``latest`` for an empty run).
    """
    previous = latest
    for event in events:
        if previous is not None and not previous < event:
            raise _shared_order_error(
                event.time, event.sequence, previous.time, previous.sequence
            )
        previous = event
    return previous


def ensure_shared_run_order(times: Sequence, sequences: Sequence, latest):
    """Strict guard over parallel scalar columns; returns ``(time, seq)``.

    The columnar sibling of :func:`ensure_shared_event_run_order` for the
    block fast path — no per-event objects anywhere.  Returns the run's
    last ``(time, sequence)`` pair, or ``None`` for an empty run.
    """
    if latest is not None:
        last_time, last_sequence = latest.time, latest.sequence
    else:
        last_time, last_sequence = None, -1
    for time_value, sequence_value in zip(times, sequences):
        if last_time is not None and not (
            last_time < time_value
            or (last_time == time_value and last_sequence < sequence_value)
        ):
            raise _shared_order_error(
                time_value, sequence_value, last_time, last_sequence
            )
        last_time, last_sequence = time_value, sequence_value
    if last_time is None:
        return None
    return last_time, last_sequence


def late_event_error(
    time, sequence, watermark, allowed_lateness, *, what: str = "streaming executor"
) -> OutOfOrderError:
    """The ``"raise"`` late policy's error (also the retract-miss error)."""
    return OutOfOrderError(
        f"{what} received an event at time={time!r} seq={sequence} behind "
        f"the watermark {watermark!r} (allowed_lateness={allowed_lateness!r}); "
        "raise allowed_lateness to buffer it, or pick a late policy "
        "('drop', 'side_output', 'retract')"
    )


# ---------------------------------------------------------------------- #
# The reorder buffer
# ---------------------------------------------------------------------- #
def _min_key(first: Optional[tuple], second: Optional[tuple]) -> Optional[tuple]:
    if first is None:
        return second
    if second is None:
        return first
    return first if first < second else second


class ReorderBuffer:
    """Buffer-and-resort stage with a bounded lateness horizon.

    The buffer never interprets events — it orders opaque items by the
    ``(time, sequence)`` keys the caller hands in — so scalar events and
    columnar block segments coexist on one instance.  The contract:

    * :meth:`observe` advances the maximum event time seen (and with it
      the watermark ``max_time - allowed_lateness``);
    * :meth:`is_late` classifies an arrival against the watermark
      (strictly below: late — exactly the keys :meth:`release_ready`
      would already have released);
    * :meth:`add` / :meth:`add_segment` buffer an item / a sorted block;
    * :meth:`release_ready` pops everything strictly below the watermark
      in global ``(time, sequence)`` order, as maximal per-source runs:
      loose events batch into ``("events", [...])``, block segments come
      back as ``("block", slice)`` — zero-copy, split at the watermark
      (and at interleave points with other sources), never exploded into
      per-row objects;
    * :meth:`flush` drains everything (end of stream).

    Equal-time safety: an event at exactly the watermark stays buffered
    until the watermark strictly passes it, so a same-time,
    later-sequence arrival can never find its predecessor already
    released.  The instance pickles as-is — buffered state rides the
    executor snapshots into checkpoints.
    """

    __slots__ = (
        "allowed_lateness",
        "_max_time",
        "_tail",
        "_tail_pos",
        "_tail_last_time",
        "_tail_last_seq",
        "_heap",
        "_pushes",
        "_segments",
        "_buffered",
    )

    def __init__(self, allowed_lateness: float) -> None:
        if not allowed_lateness >= 0.0:
            raise ExecutionError(
                f"allowed_lateness must be >= 0, got {allowed_lateness!r}"
            )
        self.allowed_lateness = allowed_lateness
        self._max_time = float("-inf")
        #: In-order fast path: arrivals that do not regress behind the last
        #: buffered key append here (cursor pops, no heap churn) — the
        #: common case, and what keeps fully in-order overhead near zero.
        self._tail: list[tuple[Any, int, Any]] = []
        self._tail_pos = 0
        #: The last tail key, as two scalars: the hot-path order test is
        #: two number compares, no tuple allocation.
        self._tail_last_time: Any = None
        self._tail_last_seq: int = -1
        #: Regressed arrivals: a heap keyed ``(time, sequence, push#)`` —
        #: the push counter breaks exact-key ties without comparing items.
        self._heap: list[tuple] = []
        self._pushes = 0
        #: Sorted block segments as ``[block, next_relative_row]``.
        self._segments: list[list] = []
        self._buffered = 0

    def __len__(self) -> int:
        """Items currently buffered (block rows count individually)."""
        return self._buffered

    @property
    def max_event_time(self) -> float:
        """Maximum event time observed so far (``-inf`` before any)."""
        return self._max_time

    @property
    def watermark(self) -> float:
        """``max_event_time - allowed_lateness`` (``-inf`` before any)."""
        return self._max_time - self.allowed_lateness

    def observe(self, time) -> None:
        """Advance the maximum event time (watermark) past ``time``."""
        if time > self._max_time:
            self._max_time = time

    def is_late(self, time) -> bool:
        """True when ``time`` is strictly behind the watermark."""
        return time < self._max_time - self.allowed_lateness

    def add(self, time, sequence: int, item) -> None:
        """Buffer one item under key ``(time, sequence)``."""
        if self._tail_pos == len(self._tail):
            # Tail fully drained: any key restarts it in sorted order.
            if self._tail:
                self._tail.clear()
                self._tail_pos = 0
            self._tail.append((time, sequence, item))
            self._tail_last_time = time
            self._tail_last_seq = sequence
        elif time > self._tail_last_time or (
            time == self._tail_last_time and sequence >= self._tail_last_seq
        ):
            self._tail.append((time, sequence, item))
            self._tail_last_time = time
            self._tail_last_seq = sequence
        else:
            heapq.heappush(self._heap, (time, sequence, self._pushes, item))
            self._pushes += 1
        self._buffered += 1

    def push(self, time, sequence: int, item) -> Optional[list]:
        """``add`` + ``observe`` + a pure-tail release, in one call.

        The scalar hot path: when only the in-order tail is in play (no
        heap, no segments — the steady state of a well-behaved stream) the
        released items come back directly as a list, skipping the k-way
        merge and its per-release wrappers.  Returns ``None`` when the
        buffer fell back to the heap or segments exist; the caller must
        then run :meth:`release_ready` for the full merge.
        """
        if time > self._max_time:
            self._max_time = time
        if self._heap or self._segments:
            self.add(time, sequence, item)
            return None
        tail = self._tail
        position = self._tail_pos
        if position == len(tail):
            if tail:
                tail.clear()
                position = self._tail_pos = 0
            tail.append((time, sequence, item))
            self._tail_last_time = time
            self._tail_last_seq = sequence
        elif time > self._tail_last_time or (
            time == self._tail_last_time and sequence >= self._tail_last_seq
        ):
            tail.append((time, sequence, item))
            self._tail_last_time = time
            self._tail_last_seq = sequence
        else:
            heapq.heappush(self._heap, (time, sequence, self._pushes, item))
            self._pushes += 1
            self._buffered += 1
            return None
        self._buffered += 1
        # Release the tail prefix strictly below the watermark: with only
        # the tail populated, the global (time, sequence) order IS the tail
        # order, and "key < (watermark,)" reduces to "time < watermark".
        bound = self._max_time - self.allowed_lateness
        if tail[position][0] >= bound:
            return _NO_RELEASES
        released = []
        while position < len(tail) and tail[position][0] < bound:
            released.append(tail[position][2])
            position += 1
        if position == len(tail):
            tail.clear()
            position = 0
        self._tail_pos = position
        self._buffered -= len(released)
        return released

    def add_segment(self, block: EventBlock) -> None:
        """Buffer a non-empty, ``(time, sequence)``-sorted block zero-copy."""
        self._segments.append([block, 0])
        self._buffered += len(block)

    # ------------------------------------------------------------------ #
    # Release
    # ------------------------------------------------------------------ #
    def release_ready(self) -> list[Release]:
        """Pop every buffered item strictly below the watermark, in order."""
        if not self._buffered:
            return []
        return self._release((self._max_time - self.allowed_lateness,))

    def flush(self) -> list[Release]:
        """Pop everything (end of stream), in ``(time, sequence)`` order."""
        if not self._buffered:
            return []
        return self._release(None)

    def _tail_head(self) -> Optional[tuple]:
        if self._tail_pos < len(self._tail):
            entry = self._tail[self._tail_pos]
            return (entry[0], entry[1])
        return None

    def _heap_head(self) -> Optional[tuple]:
        if self._heap:
            return (self._heap[0][0], self._heap[0][1])
        return None

    def _segment_head(self, segment: list) -> tuple:
        block, relative = segment
        position = block.start + relative
        return (block.times[position], block.sequences[position])

    def _release(self, bound: Optional[tuple]) -> list[Release]:
        # Run-based k-way merge: each outer iteration finds the globally
        # smallest head, then emits that source's maximal run — every item
        # below both the bound and every *other* source's head.  A bound
        # key ``(time,)`` compares below every same-time ``(time, seq)``
        # key, which is what keeps equal-time items buffered until the
        # watermark strictly passes them.
        releases: list[Release] = []
        while True:
            tail_head = self._tail_head()
            heap_head = self._heap_head()
            loose_head = _min_key(tail_head, heap_head)
            best_key = loose_head
            best_segment = -1
            for index, segment in enumerate(self._segments):
                key = self._segment_head(segment)
                if best_key is None or key < best_key:
                    best_key = key
                    best_segment = index
            if best_key is None or (bound is not None and not best_key < bound):
                return releases
            if best_segment >= 0:
                limit = bound if loose_head is None else _min_key(bound, loose_head)
                for index, segment in enumerate(self._segments):
                    if index != best_segment:
                        limit = _min_key(limit, self._segment_head(segment))
                segment = self._segments[best_segment]
                block, relative = segment
                stop = self._segment_stop(block, relative, limit)
                releases.append(("block", block.slice(relative, stop)))
                self._buffered -= stop - relative
                if stop == len(block):
                    del self._segments[best_segment]
                else:
                    segment[1] = stop
            else:
                limit = bound
                for segment in self._segments:
                    limit = _min_key(limit, self._segment_head(segment))
                events: list = []
                while True:
                    tail_head = self._tail_head()
                    heap_head = self._heap_head()
                    if heap_head is not None and (
                        tail_head is None or heap_head < tail_head
                    ):
                        if limit is not None and not heap_head < limit:
                            break
                        events.append(heapq.heappop(self._heap)[3])
                    elif tail_head is not None:
                        if limit is not None and not tail_head < limit:
                            break
                        events.append(self._tail[self._tail_pos][2])
                        self._tail_pos += 1
                    else:
                        break
                if self._tail_pos == len(self._tail) and self._tail:
                    self._tail.clear()
                    self._tail_pos = 0
                self._buffered -= len(events)
                releases.append(("events", events))

    def _segment_stop(self, block: EventBlock, relative: int, limit: Optional[tuple]) -> int:
        """First relative row of ``block`` at or past ``limit`` (len if none)."""
        length = len(block)
        if limit is None:
            return length
        times = block.times
        base = block.start
        stop = bisect.bisect_left(times, limit[0], base + relative, block.stop) - base
        if len(limit) == 2:
            sequences = block.sequences
            while (
                stop < length
                and times[base + stop] == limit[0]
                and sequences[base + stop] < limit[1]
            ):
                stop += 1
        return stop
