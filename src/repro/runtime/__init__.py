"""Runtime: stream partitioning, execution and metrics.

The :class:`~repro.runtime.executor.WorkloadExecutor` is the piece a
downstream user actually calls: it analyses the workload (Definitions 4–5),
routes stream events into per-group / per-window partitions, drives an
aggregation engine over every partition and collects latency, throughput and
memory metrics — the quantities reported by the paper's figures.
"""

from repro.runtime.executor import (
    ExecutionReport,
    PartitionResult,
    WorkloadExecutor,
    run_workload,
)
from repro.runtime.metrics import ExecutionMetrics, Stopwatch
from repro.runtime.partitioner import GroupWindowPartitioner, PartitionKey

__all__ = [
    "ExecutionMetrics",
    "ExecutionReport",
    "GroupWindowPartitioner",
    "PartitionKey",
    "PartitionResult",
    "Stopwatch",
    "WorkloadExecutor",
    "run_workload",
]
