"""Runtime: stream partitioning, execution and metrics.

Two executors evaluate a workload over a stream:

* :class:`~repro.runtime.executor.WorkloadExecutor` — the batch/replay
  reference path: materializes the stream, partitions it per group and
  window instance, replays each partition through an engine;
* :class:`~repro.runtime.streaming.StreamingExecutor` — the single-pass
  online path: consumes events in timestamp order exactly once, emits each
  :class:`~repro.runtime.streaming.WindowResult` the moment its window
  closes and evicts the closed state, so peak memory is bounded by the
  *live* state.  By default overlapping window instances share one
  :class:`~repro.runtime.shared_windows.MultiWindowLinearEngine` per
  ``(group, unit)`` pair (events processed once, per-window-instance
  coefficients); ``shared_windows=False`` falls back to one engine per
  instance — the semantics reference.

Both analyse the workload the same way (Definitions 4–5), drive the same
engines and produce the same totals — property-tested bit-identically.

On top of the streaming runtime,
:class:`~repro.runtime.sharding.ShardedStreamingExecutor` shards the stream
across worker processes (hash-routed by group key, or by execution unit for
GROUP-BY-less workloads) and merges the per-shard reports
deterministically — same totals again, for any worker count.  With a
``checkpoint_dir`` the sharded runtime becomes fault-tolerant: workers
snapshot their executors at window boundaries into versioned, checksummed
checkpoints (:mod:`repro.runtime.checkpoint`) and the driver supervises —
a worker that dies mid-stream is respawned with capped backoff, restored
from its last good checkpoint and fed the post-checkpoint tail from a
bounded replay buffer, with the merged report bit-identical to an
uninterrupted run.

Streams need not arrive perfectly ordered: with ``allowed_lateness`` set,
a watermark-driven :class:`~repro.runtime.reorder.ReorderBuffer` in front
of each executor (one per shard in the sharded runtime) buffers and
re-sorts events within the lateness horizon — results are bit-identical
to the fully ordered run — while events later than the horizon hit a
configurable policy: ``raise`` (default), ``drop``, ``side_output`` or
``retract`` (fold into already-emitted windows via snapshot rollback).
"""

from repro.runtime.checkpoint import AsyncCheckpointWriter, Checkpoint, CheckpointStore
from repro.runtime.executor import (
    ExecutionReport,
    PartitionResult,
    WorkloadExecutor,
    run_workload,
)
from repro.runtime.metrics import ExecutionMetrics, RecoveryStats, Stopwatch
from repro.runtime.partitioner import GroupWindowPartitioner, PartitionKey, group_sort_key
from repro.runtime.reorder import LATE_POLICIES, ReorderBuffer
from repro.runtime.shared_windows import MultiWindowLinearEngine, UnitCompilation
from repro.runtime.sharding import (
    ShardReport,
    ShardRouter,
    ShardedStreamingExecutor,
    run_sharded,
    stable_shard_hash,
)
from repro.runtime.streaming import StreamingExecutor, WindowResult, run_streaming
from repro.runtime.transport import SlabReader, SlabRing

__all__ = [
    "AsyncCheckpointWriter",
    "Checkpoint",
    "CheckpointStore",
    "ExecutionMetrics",
    "ExecutionReport",
    "GroupWindowPartitioner",
    "LATE_POLICIES",
    "MultiWindowLinearEngine",
    "PartitionKey",
    "PartitionResult",
    "RecoveryStats",
    "ReorderBuffer",
    "ShardReport",
    "ShardRouter",
    "ShardedStreamingExecutor",
    "SlabReader",
    "SlabRing",
    "UnitCompilation",
    "Stopwatch",
    "StreamingExecutor",
    "WindowResult",
    "WorkloadExecutor",
    "group_sort_key",
    "run_sharded",
    "run_streaming",
    "run_workload",
    "stable_shard_hash",
]
