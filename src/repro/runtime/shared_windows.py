"""Cross-window shared aggregation: one engine for all overlapping instances.

The per-instance streaming path (PR 2) multiplies every event into up to
``ceil(size/slide)`` independent engines — graph construction, predicate
evaluation and Equation-2 totals are redone once per overlapping window
instance.  This module is the shared execution path the HAMLET paper's
cross-window sharing calls for: per ``(group key, execution unit)`` pair
**one** :class:`MultiWindowLinearEngine` holds a single shared event store
and tags the running aggregates with *per-window-instance coefficients*
(:class:`~repro.core.snapshot.WindowCoefficientTable`), so that

* ``process(event)`` does the structural graph work — type dispatch, local
  predicate checks, negation recording, node storage — exactly **once** per
  event, regardless of the overlap factor;
* the per-window numeric work collapses to an O(predecessor types) fold per
  *armed* window instance on the coefficient fast path (the PR 1 Equation 2
  fast path, lifted across windows), or a window-filtered predecessor scan
  on the slow path (edge predicates / armed negation);
* a window instance's close is an O(end types) coefficient readout plus an
  eviction of its column — never a replay;
* events are stored at most once (with their covering-index range) and are
  evicted the moment they fall out of every live instance, so peak memory
  no longer multiplies with the overlap factor.

Cross-query sharing rides along: queries whose template and predicates are
identical form one *query class* whose per-event work is done once for the
whole class (the degenerate-but-common case of HAMLET's snapshot sharing,
where all sharing queries agree on every coefficient).  The GRETA flavour
disables class sharing — every query is its own class — but still shares
the event store and window coefficients, preserving the engines' relative
positioning in benchmarks.

Class sharing is additionally *adaptive*: under a per-burst
:class:`~repro.optimizer.decisions.SharingOptimizer` (see
``runtime/streaming.py``), each ``(class, event type)`` pair can be split
into per-member coefficient columns and merged back mid-stream —
:meth:`MultiWindowLinearEngine.apply_burst_decision`.  Columns of one pair
hold bit-identical values at all times (members are computationally
identical), so a split is an O(live windows) copy of the canonical column,
a merge just drops the replicas, and results are unaffected whatever the
decisions — only the work and memory profiles change.  See the "Adaptive
sharing" section of ``docs/DESIGN.md``.

Lazy opening propagates naturally: a window instance is *armed* for a class
only once a trend-start event of that class arrives inside it.  Unarmed
windows hold no coefficients and are skipped by every per-window loop, and
because no trend can begin before a start event, their implied aggregates
are exactly zero — the same invariant that makes the per-instance lazy-open
optimization sound.

Correctness contract: over in-order streams the engine produces totals
bit-identical to both the batch replay and the per-instance streaming path
on integer-valued workloads (the randomized suite in
``tests/runtime/test_streaming_equivalence.py`` asserts all three agree);
the arithmetic folds the same values as the per-instance fast/slow paths,
only grouped per window instead of per engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import compile_fast_path_guards
from repro.core.hamlet_graph import SharedWindowStore
from repro.core.kernels import KernelBackend, MutableAggregate, PythonKernelBackend
from repro.core.snapshot import WindowCoefficientTable
from repro.errors import ExecutionError
from repro.events.event import Event, EventType
from repro.greta.aggregators import Measure, measures_for_queries, result_from_vector
from repro.interfaces import MultiWindowEngine, TrendAggregationEngine
from repro.optimizer.statistics import BurstStatistics, QueryBurstProfile
from repro.runtime.reorder import (
    ensure_shared_event_run_order,
    ensure_shared_order,
    ensure_shared_run_order,
)
from repro.query.predicates import CompositePredicate
from repro.query.query import Query
from repro.template.template import NegationConstraint, QueryTemplate, compile_pattern


class QueryClassSpec:
    """One class of computationally identical queries of an execution unit.

    All members share the template and the predicates, so every per-event
    quantity — acceptance, predecessor set, intermediate aggregate — is
    computed once for the class; members differ only in how the final
    vector is extracted (COUNT(*) vs SUM vs AVG ...).
    """

    __slots__ = (
        "index",
        "queries",
        "template",
        "predicates",
        "check_locals",
        "store_values",
        "fast_guards",
        "sequence_negations",
        "trailing_negations",
        "pred_types",
        "end_types",
    )

    def __init__(self, index: int, queries: Sequence[Query], template: QueryTemplate) -> None:
        self.index = index
        self.queries = tuple(queries)
        self.template = template
        representative = self.queries[0]
        self.predicates: CompositePredicate = representative.predicates
        self.check_locals = bool(self.predicates.local_predicates)
        #: Per-node per-window values must be kept whenever a later event (or
        #: the readout) may need a window-filtered scan over individual
        #: predecessors: edge predicates or any negation constraint.
        self.store_values = bool(self.predicates.edge_predicates) or bool(template.negations)
        guards = compile_fast_path_guards(
            [representative], {representative.name: template}
        )
        #: ``event type -> negated guard types`` for the coefficient fast
        #: path; a missing type means edge predicates force the scan path.
        self.fast_guards: dict[EventType, tuple[EventType, ...]] = {
            event_type: guard for (_, event_type), guard in guards.items()
        }
        self.sequence_negations: tuple[NegationConstraint, ...] = tuple(
            c for c in template.negations if c.after_types
        )
        self.trailing_negations: tuple[NegationConstraint, ...] = tuple(
            c for c in template.negations if not c.after_types
        )
        self.pred_types: dict[EventType, tuple[EventType, ...]] = {
            event_type: tuple(sorted(template.predecessor_types(event_type)))
            for event_type in template.event_types
        }
        self.end_types: tuple[EventType, ...] = tuple(sorted(template.end_types))


def _template_signature(template: QueryTemplate) -> tuple:
    """Structural identity of a compiled template (for class grouping)."""
    return (
        tuple(sorted(template.event_types)),
        tuple(sorted(template.edges)),
        tuple(sorted(template.start_types)),
        tuple(sorted(template.end_types)),
        tuple(sorted(template.kleene_types)),
        tuple(sorted(template.negated_types)),
        tuple(
            sorted(
                (
                    tuple(sorted(c.before_types)),
                    c.negated_type,
                    tuple(sorted(c.after_types)),
                )
                for c in template.negations
            )
        ),
    )


class UnitCompilation:
    """Compile-time plan of one execution unit for multi-window execution.

    Pure function of the unit's query set; built once per unit and shared by
    the per-group engine instances (which hold only state).
    """

    def __init__(self, queries: Sequence[Query], *, share_classes: bool) -> None:
        self.queries = tuple(queries)
        self.share_classes = share_classes
        self.measures: tuple[Measure, ...] = measures_for_queries(self.queries)
        self.dimension = len(self.measures)
        #: Scalar mode: a COUNT(*)-only unit tracks bare floats per window.
        self.scalar = self.dimension == 0
        templates = {query.name: compile_pattern(query.pattern) for query in self.queries}
        grouped: dict[object, list[Query]] = {}
        order: list[object] = []
        for query in self.queries:
            key: object
            if share_classes:
                key = (_template_signature(templates[query.name]), query.predicates.signature())
            else:
                key = query.name
            if key not in grouped:
                order.append(key)
                grouped[key] = []
            grouped[key].append(query)
        self.classes: tuple[QueryClassSpec, ...] = tuple(
            QueryClassSpec(index, grouped[key], templates[grouped[key][0].name])
            for index, key in enumerate(order)
        )
        positive: dict[EventType, list[QueryClassSpec]] = {}
        negative: dict[EventType, list[QueryClassSpec]] = {}
        stored_types: set[EventType] = set()
        for spec in self.classes:
            for event_type in spec.template.event_types:
                positive.setdefault(event_type, []).append(spec)
            for event_type in spec.template.negated_types:
                negative.setdefault(event_type, []).append(spec)
            if spec.store_values:
                stored_types |= spec.template.event_types
        self.positive_classes_by_type = {t: tuple(specs) for t, specs in positive.items()}
        self.negative_classes_by_type = {t: tuple(specs) for t, specs in negative.items()}
        #: Classes a per-burst sharing decision applies to, per burst type:
        #: only multi-member classes have anything to share or split.
        self.adaptive_classes_by_type: dict[EventType, tuple[QueryClassSpec, ...]] = {
            event_type: eligible
            for event_type, specs in positive.items()
            if (eligible := tuple(s for s in specs if len(s.queries) >= 2))
        }
        #: Event types whose events must be kept in the shared store (some
        #: class may scan them later); everything else is never stored.
        self.stored_node_types: frozenset[EventType] = frozenset(stored_types)
        self.needs_store = bool(stored_types) or bool(negative)

    def contributions(self, event: Event) -> tuple[float, ...]:
        """The event's contribution to each unit measure (Equation 1)."""
        return tuple(measure.contribution(event) for measure in self.measures)


class _TypePlan:
    """Hot-loop plan of one ``(query class, positive event type)`` pair.

    Holds direct references to the class's per-window coefficient maps so
    the per-event loop performs only dict operations and float adds.
    """

    __slots__ = (
        "spec",
        "is_start",
        "guards",
        "check_edges",
        "total_map",
        "pred_maps",
        "pred_types",
        "targets",
    )

    def __init__(
        self,
        spec: QueryClassSpec,
        event_type: EventType,
        coefficients: WindowCoefficientTable,
    ) -> None:
        self.spec = spec
        self.is_start = spec.template.is_start(event_type)
        self.guards = spec.fast_guards.get(event_type)
        self.check_edges = spec.predicates.has_edge_predicates_for(event_type)
        self.total_map = coefficients.window_map((spec.index, event_type))
        self.pred_types = spec.pred_types[event_type]
        self.pred_maps = tuple(
            coefficients.window_map((spec.index, predecessor))
            for predecessor in self.pred_types
        )
        #: Coefficient maps the per-event fold writes into.  All-shared (the
        #: static plan and the adaptive default) folds once into the class's
        #: canonical map; a split class folds once per sharing column — the
        #: canonical map always first.  Rewired by ``apply_burst_decision``.
        self.targets: tuple[dict, ...] = (self.total_map,)

    def fold_sources(self, total_map: dict) -> tuple[dict, ...]:
        """Predecessor maps one column's fold must read.

        A Kleene self-loop makes the folded map its own predecessor, and the
        canonical column folds first — so replica columns substitute their
        *own* map for the self-referential predecessor (reading the
        canonical one there would see this event's post-update value and
        break bit-identity with the fully shared plan).
        """
        if total_map is self.total_map:
            return self.pred_maps
        return tuple(
            total_map if window_map is self.total_map else window_map
            for window_map in self.pred_maps
        )


class _ColumnState:
    """Sharing partition of one ``(query class, event type)`` pair.

    Absent from the engine's column table when the pair is fully shared (the
    static default): every member query folds into the class's canonical
    coefficient map.  Present only while a per-burst decision keeps at least
    one member on its own column:

    * ``leaders[pos]`` is the column of the ``pos``-th member query, named by
      the smallest member position of that column;
    * ``maps[leader]`` is the column's ``window index -> coefficient`` map.
      The column containing query position 0 always owns the class's
      *canonical* map object — the dict other type plans hold direct
      predecessor references to — so canonical values keep being maintained
      whatever the partition.

    All columns of a pair hold bit-identical values at all times (member
    queries are computationally identical), which is what makes split and
    merge pure state transitions: a split copies the canonical column, a
    merge keeps it and drops the replicas — no replay, no reconciliation.
    """

    __slots__ = ("leaders", "maps")

    def __init__(self, leaders: tuple[int, ...], maps: dict[int, dict]) -> None:
        self.leaders = leaders
        self.maps = maps


class _OrderPoint:
    """Order cursor left behind by a block run.

    The block fast path never materializes :class:`Event` objects, but the
    engine's arrival-order contract needs *something* to compare the next
    arrival against.  This token carries exactly the two fields the order
    relation reads (``Event.__lt__`` is duck-typed on ``time``/``sequence``),
    so per-event and block ingestion can interleave freely on one engine.
    """

    __slots__ = ("time", "sequence")

    def __init__(self, time: float, sequence: int) -> None:
        self.time = time
        self.sequence = sequence

    def __lt__(self, other: "Event | _OrderPoint") -> bool:
        if self.time != other.time:
            return bool(self.time < other.time)
        return self.sequence < other.sequence

    def __reduce__(self) -> tuple[object, ...]:
        # Explicit so checkpoints pickle the cursor identically on every
        # supported interpreter (slots, no dict).
        return (_OrderPoint, (self.time, self.sequence))

    def __repr__(self) -> str:
        return f"<row time={self.time!r} seq={self.sequence}>"


class MultiWindowLinearEngine(MultiWindowEngine):
    """Shared linear trend aggregation across all live window instances.

    One instance serves one ``(group key, execution unit)`` pair.  See the
    module docstring for the sharing scheme; the state is

    * a :class:`~repro.core.snapshot.WindowCoefficientTable` holding, per
      ``(query class, event type)``, the per-window running totals of the
      intermediate aggregates (the window-instance coefficients);
    * per-class *armed* window sets (lazy opening: a window is armed by the
      first trend-start event of the class inside it);
    * a :class:`~repro.core.hamlet_graph.SharedWindowStore` of events kept
      once across windows, only for types some class may have to scan.
    """

    def __init__(
        self, unit: UnitCompilation, backend: Optional[KernelBackend] = None
    ) -> None:
        self.unit = unit
        #: Numeric core for burst folds; the pure-Python reference backend
        #: (bit-identical per-event arithmetic) unless a caller swaps it.
        self._backend: KernelBackend = (
            backend if backend is not None else PythonKernelBackend()
        )
        self._coefficients = WindowCoefficientTable(unit.dimension)
        self._armed: list[dict[int, bool]] = [dict() for _ in unit.classes]
        self._store: Optional[SharedWindowStore] = (
            SharedWindowStore() if unit.needs_store else None
        )
        self._plans_by_type: dict[EventType, tuple[_TypePlan, ...]] = {
            event_type: tuple(_TypePlan(spec, event_type, self._coefficients) for spec in specs)
            for event_type, specs in unit.positive_classes_by_type.items()
        }
        #: ``(class index, event type) -> plan`` for adaptive-mode rewiring.
        self._plan_of: dict[tuple[int, EventType], _TypePlan] = {
            (plan.spec.index, event_type): plan
            for event_type, plans in self._plans_by_type.items()
            for plan in plans
        }
        #: Split ``(class, type)`` pairs; fully shared pairs have no entry.
        self._columns: dict[tuple[int, EventType], _ColumnState] = {}
        #: Per class: ``(last positive burst type, shared run length)``.  The
        #: run length counts events folded into the class's current
        #: uninterrupted fully-shared run — the analog of the batch engine's
        #: active shared graphlet size (``g`` in the cost model).
        self._runs: dict[int, tuple[Optional[EventType], int]] = {}
        #: Live coefficient entries held by replica (non-canonical) columns,
        #: maintained incrementally like ``_coeff_entries``.
        self._replica_entries = 0
        #: Per-class end-type coefficient maps, resolved once for the readout.
        self._end_maps: list[tuple[dict, ...]] = [
            tuple(
                self._coefficients.window_map((spec.index, event_type))
                for event_type in spec.end_types
            )
            for spec in unit.classes
        ]
        #: Maps the readout does not already drain: non-end types, plus every
        #: map of trailing-NOT classes (their readout scans nodes instead).
        evict_maps: list[dict] = []
        for spec in unit.classes:
            for event_type in spec.template.event_types:
                if spec.trailing_negations or event_type not in spec.template.end_types:
                    evict_maps.append(self._coefficients.window_map((spec.index, event_type)))
        self._evict_maps: tuple[dict, ...] = tuple(evict_maps)
        self._armed_entries = 0
        self._latest_event: Event | _OrderPoint | None = None
        #: Live ``(class, type, window)`` coefficient entries, maintained
        #: incrementally so memory accounting never scans the table.
        self._coeff_entries = 0
        self._ops = 0

    # ------------------------------------------------------------------ #
    # MultiWindowEngine interface
    # ------------------------------------------------------------------ #
    def process(self, event: Event, lo: int, hi: int) -> None:
        """Do the event's graph work once; fold coefficients per armed window."""
        ensure_shared_order(self._latest_event, event)
        self._latest_event = event
        unit = self.unit
        store = self._store
        negative_specs = unit.negative_classes_by_type.get(event.event_type)
        if negative_specs is not None and store is not None:
            matched = frozenset(
                spec.index for spec in negative_specs if spec.predicates.accepts_event(event)
            )
            if matched:
                store.add_negative(event, lo, hi, matched)
        plans = self._plans_by_type.get(event.event_type)
        if plans is None:
            return
        scalar = unit.scalar
        contributions = None if scalar else unit.contributions(event)
        node_values: Optional[dict] = None
        for plan in plans:
            spec = plan.spec
            if spec.check_locals and not spec.predicates.accepts_event(event):
                continue
            armed = self._armed[spec.index]
            if plan.is_start:
                for index in range(lo, hi + 1):
                    if index not in armed:
                        armed[index] = True
                        self._armed_entries += 1
            if not armed:
                continue
            fast = plan.guards is not None
            if fast and plan.guards and store is not None:
                for negated_type in plan.guards:
                    if store.has_negatives(negated_type):
                        fast = False
                        break
            if fast:
                if scalar:
                    node_values = self._fast_scalar(plan, armed, node_values)
                else:
                    node_values = self._fast_vector(plan, armed, contributions, node_values)
            else:
                node_values = self._slow_path(plan, event, armed, contributions, node_values)
        if store is not None and event.event_type in unit.stored_node_types:
            store.add_node(event, lo, hi, node_values)

    def process_burst(self, burst: Sequence[tuple[Event, int, int]]) -> None:
        """Fold a maximal same-type run with per-burst plan resolution.

        Semantically equivalent to calling :meth:`process` per buffered
        event; the run-level entry point resolves each ``(class, type)``
        plan — maps, sources, guards, armed sets — **once per burst**
        instead of once per event, and hands eligible runs to the kernel
        backend, which may fold them with per-event reference arithmetic
        (the python backend: bit-identical) or a vectorized closed form
        (the numpy backend: the documented float-tolerance contract).

        A run falls back to per-event processing whenever per-event
        structure matters: store interactions (the burst type is negated or
        stored by some class), non-uniform covering ranges of a start type
        (arming interleaves with folding), or the scan slow path.  Abstract
        operation counts are backend-invariant: a backend fold charges
        exactly the per-event fast-path total.
        """
        if not burst:
            return
        if len(burst) == 1:
            event, lo, hi = burst[0]
            self.process(event, lo, hi)
            return
        event_type = burst[0][0].event_type
        unit = self.unit
        store = self._store
        plans = self._plans_by_type.get(event_type)
        if plans is None or (
            store is not None
            and (
                event_type in unit.negative_classes_by_type
                or event_type in unit.stored_node_types
            )
        ):
            # Negation recording and per-node value storage are inherently
            # per event; the reference path handles them unchanged.
            process = self.process
            for event, lo, hi in burst:
                process(event, lo, hi)
            return
        self._latest_event = ensure_shared_event_run_order(
            (event for event, _, _ in burst), self._latest_event
        )
        scalar = unit.scalar
        contribution_rows = (
            None if scalar else [unit.contributions(event) for event, _, _ in burst]
        )
        backend = self._backend
        for plan in plans:
            spec = plan.spec
            if spec.check_locals:
                accepts = spec.predicates.accepts_event
                selected = [
                    position
                    for position, (event, _, _) in enumerate(burst)
                    if accepts(event)
                ]
                if not selected:
                    continue
                accepted = [burst[position] for position in selected]
                rows = (
                    None
                    if scalar
                    else [contribution_rows[position] for position in selected]
                )
            else:
                accepted = burst  # type: ignore[assignment]
                rows = contribution_rows
            armed = self._armed[spec.index]
            if plan.is_start:
                lo0, hi0 = accepted[0][1], accepted[0][2]
                if any(lo != lo0 or hi != hi0 for _, lo, hi in accepted):
                    # Covering ranges differ inside the run: arming
                    # interleaves with folding, which only the per-event
                    # order reproduces.
                    self._burst_reference(plan, accepted, rows)
                    continue
                for index in range(lo0, hi0 + 1):
                    if index not in armed:
                        armed[index] = True
                        self._armed_entries += 1
            if not armed:
                continue
            fast = plan.guards is not None
            if fast and plan.guards and store is not None:
                # The store cannot change during the run (its type is
                # neither negated nor stored), so one guard check covers
                # every event of the burst.
                for negated_type in plan.guards:
                    if store.has_negatives(negated_type):
                        fast = False
                        break
            if not fast:
                self._burst_reference(plan, accepted, rows)
                continue
            indices = list(armed)
            base = 1.0 if plan.is_start else 0.0
            count = len(accepted)
            created = 0
            replica_created = 0
            canonical = plan.total_map
            for total_map in plan.targets:
                sources = plan.fold_sources(total_map)
                if scalar:
                    made = backend.fold_scalar_run(
                        total_map, indices, sources, base, count
                    )
                else:
                    made = backend.fold_vector_run(
                        total_map, indices, sources, base, rows, unit.dimension
                    )
                if total_map is canonical:
                    created += made
                else:
                    replica_created += made
            self._coeff_entries += created
            self._replica_entries += replica_created
            self._ops += (
                count * len(plan.targets) * len(indices) * (1 + len(plan.pred_maps))
            )

    def process_block_run(
        self,
        event_type: EventType,
        times: Sequence[float],
        sequences: Sequence[int],
        lows: Sequence[int],
        highs: Sequence[int],
        contribution_rows: Optional[Sequence[tuple[float, ...]]] = None,
    ) -> bool:
        """Fold one same-type run straight from block columns.

        The columnar sibling of :meth:`process_burst`: the caller hands the
        run's parallel columns (times, sequences, covering ranges, and —
        for vector units — precomputed contribution rows) and no per-event
        objects exist anywhere on the path.  ``lows``/``highs`` must be the
        non-decreasing covering ranges of the (sorted) ``times`` — what
        :meth:`Window.instance_range_columns` produces.  Results *and* abstract
        operation counts equal the equivalent sequence of :meth:`process`
        calls under the python backend; this is pinned by the block
        differential suites.

        Returns ``False`` **without touching any engine state** when the
        run needs per-event :class:`Event` structure — store interactions
        (the type is negated or stored by some class), local predicates,
        the scan slow path, or a stale guard — so the caller can replay
        the rows through the per-event reference entry points.
        """
        unit = self.unit
        store = self._store
        if store is not None and (
            event_type in unit.negative_classes_by_type
            or event_type in unit.stored_node_types
        ):
            return False
        plans = self._plans_by_type.get(event_type)
        if plans is not None:
            for plan in plans:
                if plan.spec.check_locals:
                    return False
                guards = plan.guards
                if guards is None:
                    return False
                if guards and store is not None:
                    for negated_type in guards:
                        if store.has_negatives(negated_type):
                            return False
        # Order check across the whole run — the same contract process()
        # enforces, on scalar columns.
        cursor = ensure_shared_run_order(times, sequences, self._latest_event)
        if cursor is not None:
            self._latest_event = _OrderPoint(cursor[0], cursor[1])
        count = len(times)
        if plans is None:
            return True
        scalar = unit.scalar
        backend = self._backend
        for plan in plans:
            armed = self._armed[plan.spec.index]
            if plan.is_start:
                # Covering ranges are non-decreasing over sorted times
                # (``Window.instance_range_columns``), so the run is uniform
                # iff its endpoints agree.
                lo0, hi0 = lows[0], highs[0]
                if lows[-1] != lo0 or highs[-1] != hi0:
                    # Covering ranges differ inside the run: arming
                    # interleaves with folding, which only the per-event
                    # order reproduces.  Guards were already resolved fast
                    # for the whole run, so this never needs Event objects.
                    self._block_run_reference(plan, lows, highs, contribution_rows)
                    continue
                for index in range(lo0, hi0 + 1):
                    if index not in armed:
                        armed[index] = True
                        self._armed_entries += 1
            if not armed:
                continue
            indices = list(armed)
            base = 1.0 if plan.is_start else 0.0
            created = 0
            replica_created = 0
            canonical = plan.total_map
            for total_map in plan.targets:
                sources = plan.fold_sources(total_map)
                if scalar:
                    made = backend.fold_scalar_run(
                        total_map, indices, sources, base, count
                    )
                else:
                    made = backend.fold_vector_run(
                        total_map,
                        indices,
                        sources,
                        base,
                        contribution_rows,
                        unit.dimension,
                    )
                if total_map is canonical:
                    created += made
                else:
                    replica_created += made
            self._coeff_entries += created
            self._replica_entries += replica_created
            self._ops += (
                count * len(plan.targets) * len(indices) * (1 + len(plan.pred_maps))
            )
        return True

    def _block_run_reference(
        self,
        plan: _TypePlan,
        lows: Sequence[int],
        highs: Sequence[int],
        contribution_rows: Optional[Sequence[tuple[float, ...]]],
    ) -> None:
        """Per-event-order fold of one plan over a non-uniform block run.

        The block analog of :meth:`_burst_reference` for start plans whose
        covering ranges differ inside the run: arm each row's range, then
        take the fast path per row.  The caller has already established
        that every plan of the run's type is fast-eligible (guards present
        and not stale) and that the type is neither stored nor negated, so
        no :class:`Event` is ever needed.
        """
        armed = self._armed[plan.spec.index]
        scalar = self.unit.scalar
        for position in range(len(lows)):
            for index in range(lows[position], highs[position] + 1):
                if index not in armed:
                    armed[index] = True
                    self._armed_entries += 1
            if not armed:
                continue
            if scalar:
                self._fast_scalar(plan, armed, None)
            else:
                assert contribution_rows is not None
                self._fast_vector(plan, armed, contribution_rows[position], None)

    def _burst_reference(
        self,
        plan: _TypePlan,
        accepted: Sequence[tuple[Event, int, int]],
        contribution_rows: Optional[Sequence[tuple[float, ...]]],
    ) -> None:
        """Per-event reference fold of one plan over an accepted run.

        Reproduces :meth:`process`'s per-plan body exactly (arming, guard
        staleness, fast/slow dispatch) for the runs the backend fold cannot
        take; ``node_values`` is never threaded because burst-eligible types
        are never stored (see :meth:`process_burst`).
        """
        store = self._store
        armed = self._armed[plan.spec.index]
        scalar = self.unit.scalar
        for position, (event, lo, hi) in enumerate(accepted):
            contributions = None if scalar else contribution_rows[position]
            if plan.is_start:
                for index in range(lo, hi + 1):
                    if index not in armed:
                        armed[index] = True
                        self._armed_entries += 1
            if not armed:
                continue
            fast = plan.guards is not None
            if fast and plan.guards and store is not None:
                for negated_type in plan.guards:
                    if store.has_negatives(negated_type):
                        fast = False
                        break
            if fast:
                if scalar:
                    self._fast_scalar(plan, armed, None)
                else:
                    self._fast_vector(plan, armed, contributions, None)
            else:
                self._slow_path(plan, event, armed, contributions, None)

    def close_window(self, index: int) -> dict[str, float]:
        """Equation 3 readout of one instance from its coefficient column."""
        unit = self.unit
        scalar = unit.scalar
        results: dict[str, float] = {}
        evicted = 0
        replica_evicted = 0
        columns = self._columns
        for spec in unit.classes:
            if self._armed[spec.index].pop(index, None) is not None:
                self._armed_entries -= 1
            end_states = (
                [columns.get((spec.index, t)) for t in spec.end_types] if columns else None
            )
            if spec.trailing_negations and self._store is not None:
                total = self._trailing_total(spec, index)
            elif end_states is not None and any(state is not None for state in end_states):
                # At least one end type is split: drain every column of
                # every end type once, then assemble per-query totals from
                # each query's own columns.  Column values are bit-identical
                # across a pair, so the per-query sums reproduce the fully
                # shared readout exactly.
                popped: list[tuple[Optional[tuple[int, ...]], object]] = []
                for end_map, state in zip(self._end_maps[spec.index], end_states):
                    if state is None:
                        value = end_map.pop(index, None)
                        if value is not None:
                            evicted += 1
                        popped.append((None, value))
                    else:
                        values: dict[int, object] = {}
                        for leader, window_map in state.maps.items():
                            value = window_map.pop(index, None)
                            if value is not None:
                                values[leader] = value
                                if window_map is end_map:
                                    evicted += 1
                                else:
                                    replica_evicted += 1
                        popped.append((state.leaders, values))
                self._ops += len(spec.queries)
                for position, query in enumerate(spec.queries):
                    if scalar:
                        query_total = 0.0
                        for leaders, payload in popped:
                            value = (
                                payload if leaders is None else payload.get(leaders[position])
                            )
                            if value is not None:
                                query_total += value
                        results[query.name] = query_total
                    else:
                        accumulator = MutableAggregate(unit.dimension)
                        for leaders, payload in popped:
                            value = (
                                payload if leaders is None else payload.get(leaders[position])
                            )
                            if value is not None:
                                accumulator.add(value)
                        results[query.name] = result_from_vector(
                            query, accumulator.freeze(), unit.measures
                        )
                continue
            elif scalar:
                # The readout drains the end-type coefficients it reads.
                total = 0.0
                for end_map in self._end_maps[spec.index]:
                    value = end_map.pop(index, None)
                    if value is not None:
                        total += value
                        evicted += 1
            else:
                accumulator = MutableAggregate(unit.dimension)
                for end_map in self._end_maps[spec.index]:
                    value = end_map.pop(index, None)
                    if value is not None:
                        accumulator.add(value)
                        evicted += 1
                total = accumulator
            self._ops += 1
            if scalar:
                for query in spec.queries:
                    results[query.name] = total
            else:
                frozen = total.freeze()
                for query in spec.queries:
                    results[query.name] = result_from_vector(query, frozen, unit.measures)
        for window_map in self._evict_maps:
            if window_map.pop(index, None) is not None:
                evicted += 1
        if columns:
            # Replica columns of non-end types (and of trailing-NOT classes)
            # are not drained by the readout; evict their entries here.  The
            # pops are idempotent, so columns already drained above cost one
            # failed lookup and are counted exactly once.
            for state in columns.values():
                for leader, window_map in state.maps.items():
                    if leader and window_map.pop(index, None) is not None:
                        replica_evicted += 1
        self._coeff_entries -= evicted
        self._replica_entries -= replica_evicted
        return results

    def evict_to(self, oldest: Optional[int]) -> None:
        """Drop stored events outside every instance at or after ``oldest``."""
        if self._store is not None:
            self._store.evict_to(oldest)

    def memory_units(self) -> int:
        """Coefficient entries plus the shared store footprint (O(1))."""
        per_entry = 1 if self.unit.scalar else 1 + self.unit.dimension
        units = (self._coeff_entries + self._replica_entries) * per_entry + self._armed_entries
        if self._store is not None:
            units += self._store.memory_units()
        return units

    # ------------------------------------------------------------------ #
    # Adaptive sharing: per-burst split / merge of coefficient columns
    # ------------------------------------------------------------------ #
    def note_positive_burst(self, event_type: EventType) -> None:
        """End every class's shared run whose type the burst interrupts.

        The batch engine's burst of type ``E`` deactivates the active
        graphlets of every *other* type (Algorithm 1, lines 4–6); the
        multi-window analog is that a class's fully-shared run of another
        type stops growing, so the next burst of that type must pay for a
        fresh merge (``graphlet_snapshots_needed = 1`` in its statistics).
        """
        for spec_index, (last_type, length) in self._runs.items():
            if length and last_type != event_type:
                self._runs[spec_index] = (last_type, 0)

    def _continuing_run(self, spec: QueryClassSpec, event_type: EventType) -> tuple[bool, int]:
        """Whether a fully-shared run of ``event_type`` is live, and its length."""
        last_type, length = self._runs.get(spec.index, (None, 0))
        continuing = (
            length > 0
            and last_type == event_type
            and (spec.index, event_type) not in self._columns
        )
        return continuing, length

    def burst_statistics(
        self,
        spec: QueryClassSpec,
        event_type: EventType,
        burst_size: int,
        events_in_window: int,
    ) -> BurstStatistics:
        """Cost-model inputs for one burst of ``event_type`` at one class.

        Member queries of a class are computationally identical, so sharing
        them never requires event-level snapshots (``introduces_snapshots``
        is False for every profile — Theorem 4.1 territory); the decision
        trades the per-query fold cost against the merge cost of starting a
        fresh shared run.
        """
        continuing, run_length = self._continuing_run(spec, event_type)
        profiles = tuple(
            QueryBurstProfile(
                query_name=query.name,
                introduces_snapshots=False,
                expected_snapshots=0.0,
                predecessor_types=max(1, len(spec.pred_types[event_type])),
            )
            for query in spec.queries
        )
        return BurstStatistics(
            event_type=event_type,
            burst_size=burst_size,
            events_in_window=max(1, events_in_window),
            graphlet_size=run_length + burst_size if continuing else burst_size,
            snapshots_propagated=1,
            graphlet_snapshots_needed=0 if continuing else 1,
            profiles=profiles,
            types_per_query=max(2, len(spec.template.event_types)),
        )

    def apply_burst_decision(
        self,
        spec: QueryClassSpec,
        event_type: EventType,
        shared_names: frozenset,
        burst_size: int,
    ) -> None:
        """Reconfigure the ``(class, type)`` sharing partition for one burst.

        ``shared_names`` (fewer than two names means no sharing) partitions
        the member queries into one shared column plus singletons.  The
        transition is incremental: a newly split column starts as a copy of
        the canonical column (O(live windows), never a replay) and a merge
        simply drops replicas — sound because every column of a pair holds
        bit-identical values at all times.
        """
        queries = spec.queries
        count = len(queries)
        shared_positions = [
            position for position, query in enumerate(queries) if query.name in shared_names
        ]
        if len(shared_positions) >= 2:
            shared_set = set(shared_positions)
            leader = shared_positions[0]
            new_leaders = tuple(
                leader if position in shared_set else position for position in range(count)
            )
        else:
            new_leaders = tuple(range(count))
        fully_shared = new_leaders == (0,) * count
        continuing, run_length = self._continuing_run(spec, event_type)
        key = (spec.index, event_type)
        state = self._columns.get(key)
        old_leaders = state.leaders if state is not None else (0,) * count
        if new_leaders != old_leaders:
            self._transition_columns(key, state, old_leaders, new_leaders)
        if fully_shared:
            self._runs[spec.index] = (
                event_type,
                (run_length + burst_size) if continuing else burst_size,
            )
        else:
            self._runs[spec.index] = (event_type, 0)

    def _transition_columns(
        self,
        key: tuple[int, EventType],
        state: Optional[_ColumnState],
        old_leaders: tuple[int, ...],
        new_leaders: tuple[int, ...],
    ) -> None:
        canonical = self._coefficients.window_map(key)
        old_maps = state.maps if state is not None else {0: canonical}
        old_groups: dict[int, set[int]] = {}
        for position, leader in enumerate(old_leaders):
            old_groups.setdefault(leader, set()).add(position)
        new_groups: dict[int, set[int]] = {}
        for position, leader in enumerate(new_leaders):
            new_groups.setdefault(leader, set()).add(position)
        scalar = self.unit.scalar
        new_maps: dict[int, dict] = {}
        for leader, members in new_groups.items():
            if leader == 0:
                # The column containing query position 0 always keeps the
                # canonical map object (predecessor plans reference it).
                new_maps[0] = canonical
            elif old_groups.get(leader) == members:
                new_maps[leader] = old_maps[leader]
            else:
                replica = (
                    dict(canonical)
                    if scalar
                    else {index: value.copy() for index, value in canonical.items()}
                )
                new_maps[leader] = replica
                self._replica_entries += len(replica)
                self._ops += len(replica)
        for leader, window_map in old_maps.items():
            if window_map is canonical or new_maps.get(leader) is window_map:
                continue
            self._replica_entries -= len(window_map)
        self._ops += 1  # the split/merge transition itself
        plan = self._plan_of[key]
        if len(new_maps) == 1:
            self._columns.pop(key, None)
            plan.targets = (canonical,)
        else:
            self._columns[key] = _ColumnState(new_leaders, new_maps)
            plan.targets = (canonical,) + tuple(
                new_maps[leader] for leader in sorted(new_maps) if leader != 0
            )

    def operations(self) -> int:
        """Abstract work units (coefficient folds, scans, readouts) so far."""
        return self._ops

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def armed_window_count(self) -> int:
        """Number of live ``(class, window)`` armed pairs (lazy-open state)."""
        return sum(len(armed) for armed in self._armed)

    @property
    def coefficients(self) -> WindowCoefficientTable:
        """The per-window coefficient table (ground truth for accounting)."""
        return self._coefficients

    def live_coefficient_entries(self) -> int:
        """The engine's incremental entry counter — must always equal
        ``coefficients.entry_count()`` (pinned by the runtime tests)."""
        return self._coeff_entries

    def replica_coefficient_entries(self) -> int:
        """Live entries held by replica (split per-query) columns — must
        always equal the ground-truth scan of the column table (pinned by
        the runtime tests)."""
        return self._replica_entries

    def replica_entry_count(self) -> int:
        """Ground-truth O(columns) scan of the replica column maps."""
        return sum(
            len(window_map)
            for state in self._columns.values()
            for leader, window_map in state.maps.items()
            if leader
        )

    def sharing_partition(self, spec_index: int, event_type: EventType) -> tuple[int, ...]:
        """Current column of each member query of a ``(class, type)`` pair.

        ``(0, 0, ..., 0)`` is the fully shared default; distinct values mean
        split columns (each named by its smallest member position).
        """
        state = self._columns.get((spec_index, event_type))
        if state is not None:
            return state.leaders
        for spec in self.unit.classes:
            if spec.index == spec_index:
                return (0,) * len(spec.queries)
        raise ExecutionError(f"unknown query class index {spec_index}")

    @property
    def store(self) -> Optional[SharedWindowStore]:
        """The shared event store (None when no class ever scans nodes)."""
        return self._store

    # ------------------------------------------------------------------ #
    # Per-window folds
    # ------------------------------------------------------------------ #
    def _fast_scalar(self, plan: _TypePlan, armed: dict, node_values: Optional[dict]) -> Optional[dict]:
        base = 1.0 if plan.is_start else 0.0
        targets = plan.targets
        pred_maps = plan.pred_maps
        spec_index = plan.spec.index
        store_values = plan.spec.store_values
        entries = 0
        if len(targets) == 1 and len(pred_maps) == 2 and not store_values:
            # The dominant shape (prefix type + Kleene self-loop, fully
            # shared): unrolled.
            total_map = plan.total_map
            first_map, second_map = pred_maps
            first_get, second_get, total_get = first_map.get, second_map.get, total_map.get
            for index in armed:
                value = base
                previous = first_get(index)
                if previous is not None:
                    value += previous
                previous = second_get(index)
                if previous is not None:
                    value += previous
                current = total_get(index)
                if current is None:
                    total_map[index] = value
                    entries += 1
                else:
                    total_map[index] = current + value
        else:
            # One fold per sharing column (targets[0] is the canonical map);
            # a split class genuinely repeats the per-query work, which is
            # what the cost model's non-shared term charges for.
            replica_entries = 0
            canonical = plan.total_map
            for total_map in targets:
                is_canonical = total_map is canonical
                sources = plan.fold_sources(total_map)
                for index in armed:
                    value = base
                    for window_map in sources:
                        previous = window_map.get(index)
                        if previous is not None:
                            value += previous
                    current = total_map.get(index)
                    if current is None:
                        total_map[index] = value
                        if is_canonical:
                            entries += 1
                        else:
                            replica_entries += 1
                    else:
                        total_map[index] = current + value
                    if store_values and is_canonical:
                        if node_values is None:
                            node_values = {}
                        node_values[(spec_index, index)] = value
            self._replica_entries += replica_entries
        self._coeff_entries += entries
        self._ops += len(targets) * len(armed) * (1 + len(pred_maps))
        return node_values

    def _fast_vector(
        self,
        plan: _TypePlan,
        armed: dict,
        contributions: tuple[float, ...],
        node_values: Optional[dict],
    ) -> Optional[dict]:
        dimension = self.unit.dimension
        canonical = plan.total_map
        pred_maps = plan.pred_maps
        spec_index = plan.spec.index
        store_values = plan.spec.store_values
        for total_map in plan.targets:
            is_canonical = total_map is canonical
            sources = plan.fold_sources(total_map)
            for index in armed:
                accumulator = MutableAggregate(dimension)
                if plan.is_start:
                    accumulator.count = 1.0
                for window_map in sources:
                    previous = window_map.get(index)
                    if previous is not None:
                        accumulator.add(previous)
                accumulator.apply_contributions(contributions)
                if store_values and is_canonical:
                    if node_values is None:
                        node_values = {}
                    node_values[(spec_index, index)] = accumulator.freeze()
                total = total_map.get(index)
                if total is None:
                    total_map[index] = accumulator
                    if is_canonical:
                        self._coeff_entries += 1
                    else:
                        self._replica_entries += 1
                else:
                    total.add(accumulator)
        self._ops += len(plan.targets) * len(armed) * (1 + len(pred_maps))
        return node_values

    def _slow_path(
        self,
        plan: _TypePlan,
        event: Event,
        armed: dict,
        contributions: Optional[tuple[float, ...]],
        node_values: Optional[dict],
    ) -> Optional[dict]:
        """Equation 2 with edge predicates / armed negation: window-filtered scan."""
        store = self._store
        assert store is not None  # store_values classes always have a store
        spec = plan.spec
        spec_index = spec.index
        scalar = self.unit.scalar
        constraints = [
            constraint
            for constraint in spec.sequence_negations
            if event.event_type in constraint.after_types
            and store.has_negatives(constraint.negated_type)
        ]
        check_edges = plan.check_edges
        predicates = spec.predicates
        pred_node_lists = [store.nodes_of_type(t) for t in plan.pred_types]
        canonical = plan.total_map
        base = 1.0 if plan.is_start else 0.0
        for total_map in plan.targets:
            is_canonical = total_map is canonical
            for index in armed:
                if scalar:
                    value = base
                else:
                    accumulator = MutableAggregate(self.unit.dimension)
                    accumulator.count = base
                for nodes in pred_node_lists:
                    for stored in nodes:
                        self._ops += 1
                        if stored.lo > index or stored.hi < index:
                            continue
                        values = stored.values
                        if values is None:
                            continue
                        stored_value = values.get((spec_index, index))
                        if stored_value is None:
                            continue
                        if not stored.event < event:
                            continue
                        if check_edges and not predicates.accepts_edge(stored.event, event):
                            continue
                        if constraints and store.negation_blocks(
                            spec_index, constraints, stored.event, event
                        ):
                            continue
                        if scalar:
                            value += stored_value
                        else:
                            accumulator.add_vector(stored_value)
                if scalar:
                    current = total_map.get(index)
                    if current is None:
                        total_map[index] = value
                        if is_canonical:
                            self._coeff_entries += 1
                        else:
                            self._replica_entries += 1
                    else:
                        total_map[index] = current + value
                    if is_canonical:
                        if node_values is None:
                            node_values = {}
                        node_values[(spec_index, index)] = value
                else:
                    accumulator.apply_contributions(contributions)
                    if is_canonical:
                        if node_values is None:
                            node_values = {}
                        node_values[(spec_index, index)] = accumulator.freeze()
                    total = total_map.get(index)
                    if total is None:
                        total_map[index] = accumulator
                        if is_canonical:
                            self._coeff_entries += 1
                        else:
                            self._replica_entries += 1
                    else:
                        total.add(accumulator)
        return node_values

    def _trailing_total(self, spec: QueryClassSpec, index: int):
        """Equation 3 with a trailing NOT: scan end-type nodes, filter cancelled."""
        store = self._store
        assert store is not None
        scalar = self.unit.scalar
        if scalar:
            total = 0.0
        else:
            total = MutableAggregate(self.unit.dimension)
        for event_type in spec.end_types:
            for stored in store.nodes_of_type(event_type):
                self._ops += 1
                if stored.lo > index or stored.hi < index:
                    continue
                values = stored.values
                if values is None:
                    continue
                value = values.get((spec.index, index))
                if value is None:
                    continue
                if store.cancelled_by_trailing(
                    spec.index, spec.trailing_negations, stored.event, index
                ):
                    continue
                if scalar:
                    total += value
                else:
                    total.add_vector(value)
        return total


def shared_window_flavor_of(
    engine_factory, prebuilt: Optional[TrendAggregationEngine] = None
) -> tuple[Optional[str], Optional[TrendAggregationEngine]]:
    """Resolve how (whether) a unit built from ``engine_factory`` can share windows.

    Returns ``(flavor, probe)`` where ``flavor`` is ``"classes"``,
    ``"per-query"`` or ``None`` (fall back to one engine per instance) and
    ``probe`` is an engine instance built along the way, if any, so callers
    can seed their per-instance pool instead of discarding it.
    """
    if isinstance(engine_factory, type):
        if issubclass(engine_factory, TrendAggregationEngine):
            return getattr(engine_factory, "shared_window_flavor", None), prebuilt
        return None, prebuilt
    probe = prebuilt
    if probe is None:
        try:
            probe = engine_factory()
        except Exception:  # pragma: no cover - defensive
            return None, None
    flavor = getattr(probe, "shared_window_flavor", None)
    if flavor == "classes" and not getattr(probe, "fast_predecessor_totals", True):
        # The slow-path-only debugging mode has no coefficient fast path to
        # lift across windows; keep it on the per-instance reference path.
        flavor = None
    return flavor, probe
