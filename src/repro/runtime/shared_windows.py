"""Cross-window shared aggregation: one engine for all overlapping instances.

The per-instance streaming path (PR 2) multiplies every event into up to
``ceil(size/slide)`` independent engines — graph construction, predicate
evaluation and Equation-2 totals are redone once per overlapping window
instance.  This module is the shared execution path the HAMLET paper's
cross-window sharing calls for: per ``(group key, execution unit)`` pair
**one** :class:`MultiWindowLinearEngine` holds a single shared event store
and tags the running aggregates with *per-window-instance coefficients*
(:class:`~repro.core.snapshot.WindowCoefficientTable`), so that

* ``process(event)`` does the structural graph work — type dispatch, local
  predicate checks, negation recording, node storage — exactly **once** per
  event, regardless of the overlap factor;
* the per-window numeric work collapses to an O(predecessor types) fold per
  *armed* window instance on the coefficient fast path (the PR 1 Equation 2
  fast path, lifted across windows), or a window-filtered predecessor scan
  on the slow path (edge predicates / armed negation);
* a window instance's close is an O(end types) coefficient readout plus an
  eviction of its column — never a replay;
* events are stored at most once (with their covering-index range) and are
  evicted the moment they fall out of every live instance, so peak memory
  no longer multiplies with the overlap factor.

Cross-query sharing rides along: queries whose template and predicates are
identical form one *query class* whose per-event work is done once for the
whole class (the degenerate-but-common case of HAMLET's snapshot sharing,
where all sharing queries agree on every coefficient).  The GRETA flavour
disables class sharing — every query is its own class — but still shares
the event store and window coefficients, preserving the engines' relative
positioning in benchmarks.

Lazy opening propagates naturally: a window instance is *armed* for a class
only once a trend-start event of that class arrives inside it.  Unarmed
windows hold no coefficients and are skipped by every per-window loop, and
because no trend can begin before a start event, their implied aggregates
are exactly zero — the same invariant that makes the per-instance lazy-open
optimization sound.

Correctness contract: over in-order streams the engine produces totals
bit-identical to both the batch replay and the per-instance streaming path
on integer-valued workloads (the randomized suite in
``tests/runtime/test_streaming_equivalence.py`` asserts all three agree);
the arithmetic folds the same values as the per-instance fast/slow paths,
only grouped per window instead of per engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import compile_fast_path_guards
from repro.core.hamlet_graph import SharedWindowStore
from repro.core.kernels import MutableAggregate
from repro.core.snapshot import WindowCoefficientTable
from repro.errors import ExecutionError
from repro.events.event import Event, EventType
from repro.greta.aggregators import Measure, measures_for_queries, result_from_vector
from repro.interfaces import MultiWindowEngine, TrendAggregationEngine
from repro.query.predicates import CompositePredicate
from repro.query.query import Query
from repro.template.template import NegationConstraint, QueryTemplate, compile_pattern


class QueryClassSpec:
    """One class of computationally identical queries of an execution unit.

    All members share the template and the predicates, so every per-event
    quantity — acceptance, predecessor set, intermediate aggregate — is
    computed once for the class; members differ only in how the final
    vector is extracted (COUNT(*) vs SUM vs AVG ...).
    """

    __slots__ = (
        "index",
        "queries",
        "template",
        "predicates",
        "check_locals",
        "store_values",
        "fast_guards",
        "sequence_negations",
        "trailing_negations",
        "pred_types",
        "end_types",
    )

    def __init__(self, index: int, queries: Sequence[Query], template: QueryTemplate) -> None:
        self.index = index
        self.queries = tuple(queries)
        self.template = template
        representative = self.queries[0]
        self.predicates: CompositePredicate = representative.predicates
        self.check_locals = bool(self.predicates.local_predicates)
        #: Per-node per-window values must be kept whenever a later event (or
        #: the readout) may need a window-filtered scan over individual
        #: predecessors: edge predicates or any negation constraint.
        self.store_values = bool(self.predicates.edge_predicates) or bool(template.negations)
        guards = compile_fast_path_guards(
            [representative], {representative.name: template}
        )
        #: ``event type -> negated guard types`` for the coefficient fast
        #: path; a missing type means edge predicates force the scan path.
        self.fast_guards: dict[EventType, tuple[EventType, ...]] = {
            event_type: guard for (_, event_type), guard in guards.items()
        }
        self.sequence_negations: tuple[NegationConstraint, ...] = tuple(
            c for c in template.negations if c.after_types
        )
        self.trailing_negations: tuple[NegationConstraint, ...] = tuple(
            c for c in template.negations if not c.after_types
        )
        self.pred_types: dict[EventType, tuple[EventType, ...]] = {
            event_type: tuple(sorted(template.predecessor_types(event_type)))
            for event_type in template.event_types
        }
        self.end_types: tuple[EventType, ...] = tuple(sorted(template.end_types))


def _template_signature(template: QueryTemplate) -> tuple:
    """Structural identity of a compiled template (for class grouping)."""
    return (
        tuple(sorted(template.event_types)),
        tuple(sorted(template.edges)),
        tuple(sorted(template.start_types)),
        tuple(sorted(template.end_types)),
        tuple(sorted(template.kleene_types)),
        tuple(sorted(template.negated_types)),
        tuple(
            sorted(
                (
                    tuple(sorted(c.before_types)),
                    c.negated_type,
                    tuple(sorted(c.after_types)),
                )
                for c in template.negations
            )
        ),
    )


class UnitCompilation:
    """Compile-time plan of one execution unit for multi-window execution.

    Pure function of the unit's query set; built once per unit and shared by
    the per-group engine instances (which hold only state).
    """

    def __init__(self, queries: Sequence[Query], *, share_classes: bool) -> None:
        self.queries = tuple(queries)
        self.share_classes = share_classes
        self.measures: tuple[Measure, ...] = measures_for_queries(self.queries)
        self.dimension = len(self.measures)
        #: Scalar mode: a COUNT(*)-only unit tracks bare floats per window.
        self.scalar = self.dimension == 0
        templates = {query.name: compile_pattern(query.pattern) for query in self.queries}
        grouped: dict[object, list[Query]] = {}
        order: list[object] = []
        for query in self.queries:
            key: object
            if share_classes:
                key = (_template_signature(templates[query.name]), query.predicates.signature())
            else:
                key = query.name
            if key not in grouped:
                order.append(key)
                grouped[key] = []
            grouped[key].append(query)
        self.classes: tuple[QueryClassSpec, ...] = tuple(
            QueryClassSpec(index, grouped[key], templates[grouped[key][0].name])
            for index, key in enumerate(order)
        )
        positive: dict[EventType, list[QueryClassSpec]] = {}
        negative: dict[EventType, list[QueryClassSpec]] = {}
        stored_types: set[EventType] = set()
        for spec in self.classes:
            for event_type in spec.template.event_types:
                positive.setdefault(event_type, []).append(spec)
            for event_type in spec.template.negated_types:
                negative.setdefault(event_type, []).append(spec)
            if spec.store_values:
                stored_types |= spec.template.event_types
        self.positive_classes_by_type = {t: tuple(specs) for t, specs in positive.items()}
        self.negative_classes_by_type = {t: tuple(specs) for t, specs in negative.items()}
        #: Event types whose events must be kept in the shared store (some
        #: class may scan them later); everything else is never stored.
        self.stored_node_types: frozenset[EventType] = frozenset(stored_types)
        self.needs_store = bool(stored_types) or bool(negative)

    def contributions(self, event: Event) -> tuple[float, ...]:
        """The event's contribution to each unit measure (Equation 1)."""
        return tuple(measure.contribution(event) for measure in self.measures)


class _TypePlan:
    """Hot-loop plan of one ``(query class, positive event type)`` pair.

    Holds direct references to the class's per-window coefficient maps so
    the per-event loop performs only dict operations and float adds.
    """

    __slots__ = ("spec", "is_start", "guards", "check_edges", "total_map", "pred_maps", "pred_types")

    def __init__(
        self,
        spec: QueryClassSpec,
        event_type: EventType,
        coefficients: WindowCoefficientTable,
    ) -> None:
        self.spec = spec
        self.is_start = spec.template.is_start(event_type)
        self.guards = spec.fast_guards.get(event_type)
        self.check_edges = spec.predicates.has_edge_predicates_for(event_type)
        self.total_map = coefficients.window_map((spec.index, event_type))
        self.pred_types = spec.pred_types[event_type]
        self.pred_maps = tuple(
            coefficients.window_map((spec.index, predecessor))
            for predecessor in self.pred_types
        )


class MultiWindowLinearEngine(MultiWindowEngine):
    """Shared linear trend aggregation across all live window instances.

    One instance serves one ``(group key, execution unit)`` pair.  See the
    module docstring for the sharing scheme; the state is

    * a :class:`~repro.core.snapshot.WindowCoefficientTable` holding, per
      ``(query class, event type)``, the per-window running totals of the
      intermediate aggregates (the window-instance coefficients);
    * per-class *armed* window sets (lazy opening: a window is armed by the
      first trend-start event of the class inside it);
    * a :class:`~repro.core.hamlet_graph.SharedWindowStore` of events kept
      once across windows, only for types some class may have to scan.
    """

    def __init__(self, unit: UnitCompilation) -> None:
        self.unit = unit
        self._coefficients = WindowCoefficientTable(unit.dimension)
        self._armed: list[dict[int, bool]] = [dict() for _ in unit.classes]
        self._store: Optional[SharedWindowStore] = (
            SharedWindowStore() if unit.needs_store else None
        )
        self._plans_by_type: dict[EventType, tuple[_TypePlan, ...]] = {
            event_type: tuple(_TypePlan(spec, event_type, self._coefficients) for spec in specs)
            for event_type, specs in unit.positive_classes_by_type.items()
        }
        #: Per-class end-type coefficient maps, resolved once for the readout.
        self._end_maps: list[tuple[dict, ...]] = [
            tuple(
                self._coefficients.window_map((spec.index, event_type))
                for event_type in spec.end_types
            )
            for spec in unit.classes
        ]
        #: Maps the readout does not already drain: non-end types, plus every
        #: map of trailing-NOT classes (their readout scans nodes instead).
        evict_maps: list[dict] = []
        for spec in unit.classes:
            for event_type in spec.template.event_types:
                if spec.trailing_negations or event_type not in spec.template.end_types:
                    evict_maps.append(self._coefficients.window_map((spec.index, event_type)))
        self._evict_maps: tuple[dict, ...] = tuple(evict_maps)
        self._armed_entries = 0
        self._latest_event: Optional[Event] = None
        #: Live ``(class, type, window)`` coefficient entries, maintained
        #: incrementally so memory accounting never scans the table.
        self._coeff_entries = 0
        self._ops = 0

    # ------------------------------------------------------------------ #
    # MultiWindowEngine interface
    # ------------------------------------------------------------------ #
    def process(self, event: Event, lo: int, hi: int) -> None:
        """Do the event's graph work once; fold coefficients per armed window."""
        if self._latest_event is not None and not self._latest_event < event:
            raise ExecutionError(
                "shared-window execution requires strictly ordered arrival "
                f"(by time, then sequence); {event!r} does not follow "
                f"{self._latest_event!r} — use shared_windows=False for such streams"
            )
        self._latest_event = event
        unit = self.unit
        store = self._store
        negative_specs = unit.negative_classes_by_type.get(event.event_type)
        if negative_specs is not None and store is not None:
            matched = frozenset(
                spec.index for spec in negative_specs if spec.predicates.accepts_event(event)
            )
            if matched:
                store.add_negative(event, lo, hi, matched)
        plans = self._plans_by_type.get(event.event_type)
        if plans is None:
            return
        scalar = unit.scalar
        contributions = None if scalar else unit.contributions(event)
        node_values: Optional[dict] = None
        for plan in plans:
            spec = plan.spec
            if spec.check_locals and not spec.predicates.accepts_event(event):
                continue
            armed = self._armed[spec.index]
            if plan.is_start:
                for index in range(lo, hi + 1):
                    if index not in armed:
                        armed[index] = True
                        self._armed_entries += 1
            if not armed:
                continue
            fast = plan.guards is not None
            if fast and plan.guards and store is not None:
                for negated_type in plan.guards:
                    if store.has_negatives(negated_type):
                        fast = False
                        break
            if fast:
                if scalar:
                    node_values = self._fast_scalar(plan, armed, node_values)
                else:
                    node_values = self._fast_vector(plan, armed, contributions, node_values)
            else:
                node_values = self._slow_path(plan, event, armed, contributions, node_values)
        if store is not None and event.event_type in unit.stored_node_types:
            store.add_node(event, lo, hi, node_values)

    def close_window(self, index: int) -> dict[str, float]:
        """Equation 3 readout of one instance from its coefficient column."""
        unit = self.unit
        scalar = unit.scalar
        results: dict[str, float] = {}
        evicted = 0
        for spec in unit.classes:
            if self._armed[spec.index].pop(index, None) is not None:
                self._armed_entries -= 1
            if spec.trailing_negations and self._store is not None:
                total = self._trailing_total(spec, index)
            elif scalar:
                # The readout drains the end-type coefficients it reads.
                total = 0.0
                for end_map in self._end_maps[spec.index]:
                    value = end_map.pop(index, None)
                    if value is not None:
                        total += value
                        evicted += 1
            else:
                accumulator = MutableAggregate(unit.dimension)
                for end_map in self._end_maps[spec.index]:
                    value = end_map.pop(index, None)
                    if value is not None:
                        accumulator.add(value)
                        evicted += 1
                total = accumulator
            self._ops += 1
            if scalar:
                for query in spec.queries:
                    results[query.name] = total
            else:
                frozen = total.freeze()
                for query in spec.queries:
                    results[query.name] = result_from_vector(query, frozen, unit.measures)
        for window_map in self._evict_maps:
            if window_map.pop(index, None) is not None:
                evicted += 1
        self._coeff_entries -= evicted
        return results

    def evict_to(self, oldest: Optional[int]) -> None:
        """Drop stored events outside every instance at or after ``oldest``."""
        if self._store is not None:
            self._store.evict_to(oldest)

    def memory_units(self) -> int:
        """Coefficient entries plus the shared store footprint (O(1))."""
        per_entry = 1 if self.unit.scalar else 1 + self.unit.dimension
        units = self._coeff_entries * per_entry + self._armed_entries
        if self._store is not None:
            units += self._store.memory_units()
        return units

    def operations(self) -> int:
        """Abstract work units (coefficient folds, scans, readouts) so far."""
        return self._ops

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def armed_window_count(self) -> int:
        """Number of live ``(class, window)`` armed pairs (lazy-open state)."""
        return sum(len(armed) for armed in self._armed)

    @property
    def coefficients(self) -> WindowCoefficientTable:
        """The per-window coefficient table (ground truth for accounting)."""
        return self._coefficients

    def live_coefficient_entries(self) -> int:
        """The engine's incremental entry counter — must always equal
        ``coefficients.entry_count()`` (pinned by the runtime tests)."""
        return self._coeff_entries

    @property
    def store(self) -> Optional[SharedWindowStore]:
        """The shared event store (None when no class ever scans nodes)."""
        return self._store

    # ------------------------------------------------------------------ #
    # Per-window folds
    # ------------------------------------------------------------------ #
    def _fast_scalar(self, plan: _TypePlan, armed: dict, node_values: Optional[dict]) -> Optional[dict]:
        base = 1.0 if plan.is_start else 0.0
        total_map = plan.total_map
        pred_maps = plan.pred_maps
        spec_index = plan.spec.index
        store_values = plan.spec.store_values
        entries = 0
        if len(pred_maps) == 2 and not store_values:
            # The dominant shape (prefix type + Kleene self-loop): unrolled.
            first_map, second_map = pred_maps
            first_get, second_get, total_get = first_map.get, second_map.get, total_map.get
            for index in armed:
                value = base
                previous = first_get(index)
                if previous is not None:
                    value += previous
                previous = second_get(index)
                if previous is not None:
                    value += previous
                current = total_get(index)
                if current is None:
                    total_map[index] = value
                    entries += 1
                else:
                    total_map[index] = current + value
        else:
            for index in armed:
                value = base
                for window_map in pred_maps:
                    previous = window_map.get(index)
                    if previous is not None:
                        value += previous
                current = total_map.get(index)
                if current is None:
                    total_map[index] = value
                    entries += 1
                else:
                    total_map[index] = current + value
                if store_values:
                    if node_values is None:
                        node_values = {}
                    node_values[(spec_index, index)] = value
        self._coeff_entries += entries
        self._ops += len(armed) * (1 + len(pred_maps))
        return node_values

    def _fast_vector(
        self,
        plan: _TypePlan,
        armed: dict,
        contributions: tuple[float, ...],
        node_values: Optional[dict],
    ) -> Optional[dict]:
        dimension = self.unit.dimension
        total_map = plan.total_map
        pred_maps = plan.pred_maps
        spec_index = plan.spec.index
        store_values = plan.spec.store_values
        for index in armed:
            accumulator = MutableAggregate(dimension)
            if plan.is_start:
                accumulator.count = 1.0
            for window_map in pred_maps:
                previous = window_map.get(index)
                if previous is not None:
                    accumulator.add(previous)
            accumulator.apply_contributions(contributions)
            if store_values:
                if node_values is None:
                    node_values = {}
                node_values[(spec_index, index)] = accumulator.freeze()
            total = total_map.get(index)
            if total is None:
                total_map[index] = accumulator
                self._coeff_entries += 1
            else:
                total.add(accumulator)
        self._ops += len(armed) * (1 + len(pred_maps))
        return node_values

    def _slow_path(
        self,
        plan: _TypePlan,
        event: Event,
        armed: dict,
        contributions: Optional[tuple[float, ...]],
        node_values: Optional[dict],
    ) -> Optional[dict]:
        """Equation 2 with edge predicates / armed negation: window-filtered scan."""
        store = self._store
        assert store is not None  # store_values classes always have a store
        spec = plan.spec
        spec_index = spec.index
        scalar = self.unit.scalar
        constraints = [
            constraint
            for constraint in spec.sequence_negations
            if event.event_type in constraint.after_types
            and store.has_negatives(constraint.negated_type)
        ]
        check_edges = plan.check_edges
        predicates = spec.predicates
        pred_node_lists = [store.nodes_of_type(t) for t in plan.pred_types]
        total_map = plan.total_map
        base = 1.0 if plan.is_start else 0.0
        for index in armed:
            if scalar:
                value = base
            else:
                accumulator = MutableAggregate(self.unit.dimension)
                accumulator.count = base
            for nodes in pred_node_lists:
                for stored in nodes:
                    self._ops += 1
                    if stored.lo > index or stored.hi < index:
                        continue
                    values = stored.values
                    if values is None:
                        continue
                    stored_value = values.get((spec_index, index))
                    if stored_value is None:
                        continue
                    if not stored.event < event:
                        continue
                    if check_edges and not predicates.accepts_edge(stored.event, event):
                        continue
                    if constraints and store.negation_blocks(
                        spec_index, constraints, stored.event, event
                    ):
                        continue
                    if scalar:
                        value += stored_value
                    else:
                        accumulator.add_vector(stored_value)
            if node_values is None:
                node_values = {}
            if scalar:
                current = total_map.get(index)
                if current is None:
                    total_map[index] = value
                    self._coeff_entries += 1
                else:
                    total_map[index] = current + value
                node_values[(spec_index, index)] = value
            else:
                accumulator.apply_contributions(contributions)
                node_values[(spec_index, index)] = accumulator.freeze()
                total = total_map.get(index)
                if total is None:
                    total_map[index] = accumulator
                    self._coeff_entries += 1
                else:
                    total.add(accumulator)
        return node_values

    def _trailing_total(self, spec: QueryClassSpec, index: int):
        """Equation 3 with a trailing NOT: scan end-type nodes, filter cancelled."""
        store = self._store
        assert store is not None
        scalar = self.unit.scalar
        if scalar:
            total = 0.0
        else:
            total = MutableAggregate(self.unit.dimension)
        for event_type in spec.end_types:
            for stored in store.nodes_of_type(event_type):
                self._ops += 1
                if stored.lo > index or stored.hi < index:
                    continue
                values = stored.values
                if values is None:
                    continue
                value = values.get((spec.index, index))
                if value is None:
                    continue
                if store.cancelled_by_trailing(
                    spec.index, spec.trailing_negations, stored.event, index
                ):
                    continue
                if scalar:
                    total += value
                else:
                    total.add_vector(value)
        return total


def shared_window_flavor_of(
    engine_factory, prebuilt: Optional[TrendAggregationEngine] = None
) -> tuple[Optional[str], Optional[TrendAggregationEngine]]:
    """Resolve how (whether) a unit built from ``engine_factory`` can share windows.

    Returns ``(flavor, probe)`` where ``flavor`` is ``"classes"``,
    ``"per-query"`` or ``None`` (fall back to one engine per instance) and
    ``probe`` is an engine instance built along the way, if any, so callers
    can seed their per-instance pool instead of discarding it.
    """
    if isinstance(engine_factory, type):
        if issubclass(engine_factory, TrendAggregationEngine):
            return getattr(engine_factory, "shared_window_flavor", None), prebuilt
        return None, prebuilt
    probe = prebuilt
    if probe is None:
        try:
            probe = engine_factory()
        except Exception:  # pragma: no cover - defensive
            return None, None
    flavor = getattr(probe, "shared_window_flavor", None)
    if flavor == "classes" and not getattr(probe, "fast_predecessor_totals", True):
        # The slow-path-only debugging mode has no coefficient fast path to
        # lift across windows; keep it on the per-instance reference path.
        flavor = None
    return flavor, probe
