"""Execution metrics.

The paper reports three metrics (Section 6.1):

* **latency** — average time between a query's aggregation result output and
  the arrival of the last event contributing to it.  In the replayed batch
  setting this is approximated by the time to process a window partition and
  extract its result; the streaming executor measures it directly as the
  wall-clock span from the arrival of a window's last contributing event to
  the emission of that window's result (``emission_latencies``);
* **throughput** — average number of events processed by all queries per
  second;
* **peak memory** — the maximum amount of state held at any point in time
  (expressed here in abstract units: stored events, intermediate aggregates,
  snapshot-table entries and DP cells).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Stopwatch:
    """A tiny wall-clock stopwatch around :func:`time.perf_counter`."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass
class ExecutionMetrics:
    """Aggregate metrics collected over an execution run."""

    #: Total wall-clock seconds spent inside engines (feeding + results).
    #: Summed over engines, so parallel shards contribute additively — this
    #: measures *work*, not elapsed time.
    total_seconds: float = 0.0
    #: Elapsed wall-clock seconds of the whole run (stream start to final
    #: flush).  Unlike ``total_seconds`` this does not grow with the number
    #: of parallel workers; it is what end-to-end throughput divides by.
    wall_seconds: float = 0.0
    #: Number of window partitions evaluated.
    partitions: int = 0
    #: Number of events fed into engines, counted once per partition they
    #: belong to (an event in two overlapping windows counts twice).
    events_processed: int = 0
    #: Number of distinct stream events consumed.
    stream_events: int = 0
    #: Per-partition latencies in seconds.
    latencies: list[float] = field(default_factory=list)
    #: True event-arrival-to-emission latencies (streaming executor): seconds
    #: between the arrival of a window's last contributing event and the
    #: emission of that window's result.
    emission_latencies: list[float] = field(default_factory=list)
    #: Maximum state held at any sampled point, in abstract units.  The batch
    #: executor samples one engine per partition; the streaming executor
    #: samples the live state summed over engines with each piece of state
    #: counted *once* — overlapping per-instance engines of the same
    #: ``(unit, group)`` pair duplicate a shared event suffix, so only the
    #: largest instance per pair enters the sample, while shared-window
    #: engines hold each event and coefficient once by construction.
    peak_memory_units: int = 0
    #: Maximum number of simultaneously open window instances (streaming
    #: executor); the batch executor leaves it at 0.
    peak_active_windows: int = 0
    #: Total abstract work units reported by engines.
    operations: int = 0
    #: Seconds the sharded driver spent *waiting* on its workers: full
    #: input queues (backpressure), slab-ack stalls, result-queue polls and
    #: recovery backoff.  Separates "the driver was slow" from "the driver
    #: was idle behind a slow (or dead) worker"; single-process runs leave
    #: it at 0.
    driver_wait_seconds: float = 0.0
    #: Events behind the allowed-lateness watermark discarded by the
    #: ``"drop"`` late policy.  Dropped (and side-output) events are not
    #: part of ``stream_events``: they never reached the core.
    late_dropped: int = 0
    #: Late events handed to the ``on_late`` callback (``"side_output"``).
    late_side_output: int = 0
    #: Late events folded into already-processed state by the ``"retract"``
    #: policy (snapshot restore + bounded replay).
    late_retracted: int = 0

    def record_partition(
        self, seconds: float, events: int, memory_units: int, operations: int
    ) -> None:
        """Record the evaluation of one partition."""
        self.total_seconds += seconds
        self.partitions += 1
        self.events_processed += events
        self.latencies.append(seconds)
        self.peak_memory_units = max(self.peak_memory_units, memory_units)
        self.operations += operations

    def record_emission(self, latency_seconds: float) -> None:
        """Record one window result's event-arrival-to-emission latency."""
        self.emission_latencies.append(latency_seconds)

    def note_active_windows(self, count: int) -> None:
        """Track the peak number of simultaneously open window instances."""
        if count > self.peak_active_windows:
            self.peak_active_windows = count

    def note_memory_units(self, units: int) -> None:
        """Fold a sampled concurrent memory footprint into the peak."""
        if units > self.peak_memory_units:
            self.peak_memory_units = units

    @property
    def average_latency(self) -> float:
        """Average per-partition latency in seconds."""
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> float:
        """Worst per-partition latency in seconds."""
        return max(self.latencies) if self.latencies else 0.0

    @property
    def average_emission_latency(self) -> float:
        """Average arrival-to-emission latency in seconds (streaming runs)."""
        if not self.emission_latencies:
            return 0.0
        return sum(self.emission_latencies) / len(self.emission_latencies)

    @property
    def max_emission_latency(self) -> float:
        """Worst arrival-to-emission latency in seconds (streaming runs)."""
        return max(self.emission_latencies) if self.emission_latencies else 0.0

    @property
    def throughput_engine(self) -> float:
        """Events processed per second of summed *engine* time.

        Engine seconds add up across parallel shard workers, so this ratio
        deliberately ignores parallelism: it measures per-event engine cost,
        not end-to-end speed.  Use :attr:`throughput_wall` for the latter.
        """
        if self.total_seconds <= 0:
            return 0.0
        return self.events_processed / self.total_seconds

    @property
    def throughput(self) -> float:
        """Alias of :attr:`throughput_engine` (kept for existing callers)."""
        return self.throughput_engine

    @property
    def throughput_wall(self) -> float:
        """Distinct stream events per second of elapsed run time.

        This is the end-to-end number: parallel shards shorten the wall
        clock, so — unlike :attr:`throughput_engine` — speedups from
        sharding are visible here.
        """
        if self.wall_seconds <= 0:
            return 0.0
        return self.stream_events / self.wall_seconds

    def merge(self, other: "ExecutionMetrics") -> None:
        """Fold another metrics object into this one.

        Additive counters sum; ``wall_seconds`` takes the maximum — merged
        metrics describe runs that happened *concurrently* (shards), whose
        elapsed time is the slowest member, not the sum.
        """
        self.total_seconds += other.total_seconds
        self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
        self.partitions += other.partitions
        self.events_processed += other.events_processed
        self.stream_events += other.stream_events
        self.latencies.extend(other.latencies)
        self.emission_latencies.extend(other.emission_latencies)
        self.peak_memory_units = max(self.peak_memory_units, other.peak_memory_units)
        self.peak_active_windows = max(self.peak_active_windows, other.peak_active_windows)
        self.operations += other.operations
        self.driver_wait_seconds += other.driver_wait_seconds
        self.late_dropped += other.late_dropped
        self.late_side_output += other.late_side_output
        self.late_retracted += other.late_retracted


@dataclass
class RecoveryStats:
    """Checkpoint/recovery counters of one sharded run.

    Attached to :class:`~repro.runtime.executor.ExecutionReport` whenever
    checkpointing is enabled (``checkpoint_dir`` set), so "zero restarts"
    is distinguishable from "recovery was off".
    """

    #: Worker processes respawned after dying without a report.
    restarts: int = 0
    #: Batches re-shipped from the driver's replay buffer after restores.
    replayed_batches: int = 0
    #: Events contained in those replayed batches.
    replayed_events: int = 0
    #: Checkpoints durably written (acked by the async writers).
    checkpoints: int = 0
    #: Total container bytes of those checkpoints.
    checkpoint_bytes: int = 0
