"""Execution metrics.

The paper reports three metrics (Section 6.1):

* **latency** — average time between a query's aggregation result output and
  the arrival of the last event contributing to it.  In a replayed-stream
  setting this is the time to process a window partition and extract its
  result;
* **throughput** — average number of events processed by all queries per
  second;
* **peak memory** — the maximum amount of state held at any point in time
  (expressed here in abstract units: stored events, intermediate aggregates,
  snapshot-table entries and DP cells).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Stopwatch:
    """A tiny wall-clock stopwatch around :func:`time.perf_counter`."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass
class ExecutionMetrics:
    """Aggregate metrics collected over an execution run."""

    #: Total wall-clock seconds spent inside engines (feeding + results).
    total_seconds: float = 0.0
    #: Number of window partitions evaluated.
    partitions: int = 0
    #: Number of events fed into engines, counted once per partition they
    #: belong to (an event in two overlapping windows counts twice).
    events_processed: int = 0
    #: Number of distinct stream events consumed.
    stream_events: int = 0
    #: Per-partition latencies in seconds.
    latencies: list[float] = field(default_factory=list)
    #: Maximum engine memory footprint observed (abstract units).
    peak_memory_units: int = 0
    #: Total abstract work units reported by engines.
    operations: int = 0

    def record_partition(
        self, seconds: float, events: int, memory_units: int, operations: int
    ) -> None:
        """Record the evaluation of one partition."""
        self.total_seconds += seconds
        self.partitions += 1
        self.events_processed += events
        self.latencies.append(seconds)
        self.peak_memory_units = max(self.peak_memory_units, memory_units)
        self.operations += operations

    @property
    def average_latency(self) -> float:
        """Average per-partition latency in seconds."""
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> float:
        """Worst per-partition latency in seconds."""
        return max(self.latencies) if self.latencies else 0.0

    @property
    def throughput(self) -> float:
        """Events processed per second of engine time."""
        if self.total_seconds <= 0:
            return 0.0
        return self.events_processed / self.total_seconds

    def merge(self, other: "ExecutionMetrics") -> None:
        """Fold another metrics object into this one."""
        self.total_seconds += other.total_seconds
        self.partitions += other.partitions
        self.events_processed += other.events_processed
        self.stream_events += other.stream_events
        self.latencies.extend(other.latencies)
        self.peak_memory_units = max(self.peak_memory_units, other.peak_memory_units)
        self.operations += other.operations
