"""The multi-query workload executor.

The executor glues the pieces of Figure 2 together:

1. the *static* workload analysis groups queries into sets of sharable
   queries and builds their merged templates (compile time);
2. the stream is partitioned by grouping attributes and window instances;
3. every partition is evaluated by an aggregation engine (HAMLET by default;
   any :class:`~repro.interfaces.TrendAggregationEngine` can be plugged in,
   which is how the benchmark harness runs GRETA, the two-step baseline and
   the SHARON-style baseline over identical inputs);
4. latency / throughput / memory metrics are collected per partition;
5. results of decomposed OR/AND queries are recombined (Section 5).

MIN/MAX queries are routed to a GRETA engine instance even when the workload
is otherwise executed by HAMLET, because extremum propagation is not linear
and therefore cannot ride on shared snapshot expressions (see
``docs/DESIGN.md``).

Each execution unit sees only the events whose type its queries reference
(positively or under NOT): the stream is filtered once per unit before
partitioning, so partitions never store or replay events an engine would
ignore anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core.engine import HamletEngine
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.greta.engine import GretaEngine
from repro.interfaces import TrendAggregationEngine
from repro.query.query import Query
from repro.query.workload import Workload
from repro.runtime.metrics import ExecutionMetrics, Stopwatch
from repro.runtime.partitioner import GroupWindowPartitioner, PartitionKey
from repro.template.analysis import WorkloadAnalysis, analyze_workload

#: Factory producing a fresh (or reusable) engine for a set of queries.
EngineFactory = Callable[[], TrendAggregationEngine]


@dataclass(frozen=True)
class PartitionResult:
    """Results of one ``(group key, window instance)`` partition."""

    group_key: tuple
    window_start: float
    results: Mapping[str, float]
    seconds: float
    events: int


@dataclass
class ExecutionReport:
    """Everything a benchmark needs from one workload execution."""

    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    partition_results: list[PartitionResult] = field(default_factory=list)
    #: Final aggregate per query, summed over groups and windows (counts/sums)
    #: — a convenient scalar for correctness checks across engines.
    totals: dict[str, float] = field(default_factory=dict)
    #: Optimizer statistics when the run used HAMLET with a sharing optimizer.
    optimizer_statistics: Optional[object] = None
    engine_name: str = ""

    def result_for(self, query: Query | str) -> float:
        """Total result of one query across all groups and windows."""
        name = query if isinstance(query, str) else query.name
        return self.totals.get(name, 0.0)

    def results_by_partition(self, query: Query | str) -> dict[PartitionKey, float]:
        """Per-partition results of one query."""
        name = query if isinstance(query, str) else query.name
        return {
            (partition.group_key, partition.window_start): partition.results.get(name, 0.0)
            for partition in self.partition_results
        }


class WorkloadExecutor:
    """Evaluates a workload of trend aggregation queries over a stream."""

    def __init__(
        self,
        workload: Workload | Sequence[Query],
        engine_factory: EngineFactory = HamletEngine,
        *,
        reuse_engine: bool = True,
    ) -> None:
        """Create an executor.

        Args:
            workload: The queries to evaluate.
            engine_factory: Zero-argument callable returning the engine used
                for linear-aggregate query groups (default: HAMLET).
            reuse_engine: Reuse one engine instance across partitions (keeps
                optimizer statistics across the run).  Set to False to create
                a fresh engine per partition.
        """
        self.workload = workload if isinstance(workload, Workload) else Workload(workload)
        self.workload.validate()
        self.engine_factory = engine_factory
        self.reuse_engine = reuse_engine
        self.analysis: WorkloadAnalysis = analyze_workload(self.workload)
        self._shared_engine: Optional[TrendAggregationEngine] = None
        self._engine_label = self._resolve_engine_name()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, stream: EventStream | Iterable[Event]) -> ExecutionReport:
        """Evaluate the workload over ``stream`` and return the report."""
        events = stream if isinstance(stream, list) else list(stream)
        report = ExecutionReport(engine_name=self._engine_label)
        report.metrics.stream_events = len(events)

        for group in self.analysis.groups:
            for queries in self._execution_units(group.queries):
                self._run_unit(queries, events, report)

        self._recombine_decompositions(report)
        self._attach_optimizer_statistics(report)
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _resolve_engine_name(self) -> str:
        # Engine classes expose ``name`` as a class attribute, so the common
        # case needs no instantiation.  For opaque factories (lambdas), build
        # one engine and keep it as the reusable shared instance instead of
        # discarding it.
        name = getattr(self.engine_factory, "name", None)
        if isinstance(name, str):
            return name
        try:
            engine = self.engine_factory()
        except Exception:  # pragma: no cover - defensive
            return "engine"
        if self.reuse_engine and self._shared_engine is None:
            self._shared_engine = engine
        return getattr(engine, "name", "engine")

    def _execution_units(self, queries: Sequence[Query]) -> Iterable[tuple[Query, ...]]:
        """Split a sharable group into units sharing one engine partition set.

        Queries must agree on the window spec to share a partition set; MIN /
        MAX queries form their own units (they run on GRETA).
        """
        units: dict[tuple, list[Query]] = {}
        for query in queries:
            linear = query.aggregate.kind.is_linear
            key = (query.window.size, query.window.slide, linear)
            units.setdefault(key, []).append(query)
        for (_, _, linear), unit_queries in sorted(units.items(), key=lambda item: repr(item[0])):
            if linear:
                yield tuple(unit_queries)
            else:
                # Extremum queries are evaluated per query on GRETA.
                for query in unit_queries:
                    yield (query,)

    def _engine_for(self, queries: Sequence[Query]) -> TrendAggregationEngine:
        linear = all(query.aggregate.kind.is_linear for query in queries)
        if not linear:
            return GretaEngine()
        if self.reuse_engine:
            if self._shared_engine is None:
                self._shared_engine = self.engine_factory()
            return self._shared_engine
        return self.engine_factory()

    def _relevant_types(self, queries: Sequence[Query]) -> set[str]:
        """Event types the unit's queries reference, positively or under NOT."""
        types: set[str] = set()
        for query in queries:
            types |= query.event_types()
        return types

    def _run_unit(
        self, queries: tuple[Query, ...], events: list[Event], report: ExecutionReport
    ) -> None:
        # Filter the stream to the unit's relevant types before partitioning:
        # engines ignore other types anyway, and partitions of overlapping
        # windows would otherwise store and replay every irrelevant event.
        relevant = self._relevant_types(queries)
        unit_events = [event for event in events if event.event_type in relevant]
        partitioner = GroupWindowPartitioner.for_queries(queries)
        partitioner.add_all(unit_events)
        engine = self._engine_for(queries)
        if events:
            # A unit whose types never occur in a non-empty stream produces
            # no partitions; keep the explicit zero entries consumers of
            # report.totals rely on (an empty stream yields no entries).
            for query in queries:
                report.totals.setdefault(query.name, 0.0)
        for (group_key, window_start), partition_events in partitioner.partitions():
            with Stopwatch() as watch:
                engine.start(queries)
                for event in partition_events:
                    engine.process(event)
                results = engine.results()
            report.metrics.record_partition(
                seconds=watch.elapsed,
                events=len(partition_events),
                memory_units=engine.memory_units(),
                operations=engine.operations(),
            )
            report.partition_results.append(
                PartitionResult(
                    group_key=group_key,
                    window_start=window_start,
                    results=dict(results),
                    seconds=watch.elapsed,
                    events=len(partition_events),
                )
            )
            for name, value in results.items():
                report.totals[name] = report.totals.get(name, 0.0) + value

    def _recombine_decompositions(self, report: ExecutionReport) -> None:
        """Combine sub-query results of decomposed OR/AND queries (Section 5)."""
        if not self.analysis.decompositions:
            return
        for original_name, decomposition in self.analysis.decompositions.items():
            per_partition: dict[PartitionKey, dict[str, float]] = {}
            for partition in report.partition_results:
                key = (partition.group_key, partition.window_start)
                for sub_query in decomposition.sub_queries:
                    if sub_query.name in partition.results:
                        per_partition.setdefault(key, {})[sub_query.name] = partition.results[
                            sub_query.name
                        ]
            total = 0.0
            for sub_results in per_partition.values():
                total += decomposition.combine(sub_results)
            report.totals[original_name] = total

    def _attach_optimizer_statistics(self, report: ExecutionReport) -> None:
        engine = self._shared_engine
        if engine is not None and hasattr(engine, "optimizer"):
            report.optimizer_statistics = engine.optimizer.statistics


def run_workload(
    workload: Workload | Sequence[Query],
    stream: EventStream | Iterable[Event],
    engine_factory: EngineFactory = HamletEngine,
) -> ExecutionReport:
    """One-shot convenience wrapper around :class:`WorkloadExecutor`."""
    return WorkloadExecutor(workload, engine_factory).run(stream)
