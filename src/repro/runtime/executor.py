"""The multi-query workload executor (batch/replay reference path).

The executor glues the pieces of Figure 2 together:

1. the *static* workload analysis groups queries into sets of sharable
   queries and builds their merged templates (compile time);
2. the stream is partitioned by grouping attributes and window instances;
3. every partition is evaluated by an aggregation engine (HAMLET by default;
   any :class:`~repro.interfaces.TrendAggregationEngine` can be plugged in,
   which is how the benchmark harness runs GRETA, the two-step baseline and
   the SHARON-style baseline over identical inputs);
4. latency / throughput / memory metrics are collected per partition;
5. results of decomposed OR/AND queries are recombined (Section 5).

MIN/MAX queries are routed to a GRETA engine instance even when the workload
is otherwise executed by HAMLET, because extremum propagation is not linear
and therefore cannot ride on shared snapshot expressions (see
``docs/DESIGN.md``).

Each execution unit sees only the events whose type its queries reference
(positively or under NOT): the stream is filtered once per unit before
partitioning, so partitions never store or replay events an engine would
ignore anyway.

This module also hosts the unit-splitting, engine-selection and
OR/AND-recombination logic shared with the single-pass
:class:`~repro.runtime.streaming.StreamingExecutor`: the two executors differ
in *when* events reach the engines (materialized replay vs incremental
feeding), not in what is evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.core.engine import HamletEngine
from repro.events.event import Event, EventType
from repro.events.stream import EventStream
from repro.greta.engine import GretaEngine
from repro.interfaces import TrendAggregationEngine
from repro.query.query import Query
from repro.query.workload import Workload
from repro.runtime.metrics import ExecutionMetrics, Stopwatch
from repro.runtime.partitioner import GroupWindowPartitioner, PartitionKey
from repro.template.analysis import WorkloadAnalysis, analyze_workload
from repro.template.decompose import DecomposedQuery

#: Factory producing a fresh (or reusable) engine for a set of queries.
EngineFactory = Callable[[], TrendAggregationEngine]


@dataclass(slots=True)
class PartitionResult:
    """Results of one ``(group key, window instance)`` partition.

    Slotted and non-frozen: one instance is created per closed window on the
    streaming hot path, and frozen-dataclass ``__setattr__`` indirection is
    measurable there.  Treat instances as immutable regardless.
    """

    group_key: tuple
    #: Integer window-instance index (instance spans ``[k*slide, k*slide+size)``).
    window_index: int
    #: Derived start time of the instance, for reporting.
    window_start: float
    results: Mapping[str, float]
    seconds: float
    events: int

    @property
    def key(self) -> PartitionKey:
        """The partition key ``(group key, window index)``."""
        return (self.group_key, self.window_index)


@dataclass
class ExecutionReport:
    """Everything a benchmark needs from one workload execution."""

    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    partition_results: list[PartitionResult] = field(default_factory=list)
    #: Final aggregate per query, summed over groups and windows (counts/sums)
    #: — a convenient scalar for correctness checks across engines.
    totals: dict[str, float] = field(default_factory=dict)
    #: Optimizer statistics when the run used HAMLET with a sharing optimizer.
    optimizer_statistics: Optional[object] = None
    engine_name: str = ""
    #: Per-shard sub-reports when the run went through the sharded driver
    #: (:class:`~repro.runtime.sharding.ShardedStreamingExecutor`): one
    #: :class:`~repro.runtime.sharding.ShardReport` per shard, in shard
    #: order.  Empty for single-process runs.
    shards: list = field(default_factory=list)
    #: Checkpoint/restart counters
    #: (:class:`~repro.runtime.metrics.RecoveryStats`) when the sharded
    #: driver ran with checkpointing enabled; None otherwise.
    recovery: Optional[object] = None

    def result_for(self, query: Query | str) -> float:
        """Total result of one query across all groups and windows."""
        name = query if isinstance(query, str) else query.name
        return self.totals.get(name, 0.0)

    def results_by_partition(self, query: Query | str) -> dict[PartitionKey, float]:
        """Per-partition results of one query, keyed by ``(group, window index)``."""
        name = query if isinstance(query, str) else query.name
        return {
            partition.key: partition.results.get(name, 0.0)
            for partition in self.partition_results
        }


# ---------------------------------------------------------------------- #
# Logic shared between the batch and streaming executors
# ---------------------------------------------------------------------- #
def execution_units(queries: Sequence[Query]) -> Iterator[tuple[Query, ...]]:
    """Split a sharable group into units sharing one engine partition set.

    Queries must agree on the window spec to share a partition set; MIN /
    MAX queries form their own units (they run on GRETA).
    """
    units: dict[tuple, list[Query]] = {}
    for query in queries:
        linear = query.aggregate.kind.is_linear
        key = (query.window.size, query.window.slide, linear)
        units.setdefault(key, []).append(query)
    # Numeric key order (size, slide, linear) — a repr-keyed sort would
    # order 10.0 before 2.0 lexicographically.
    for (_, _, linear), unit_queries in sorted(units.items(), key=lambda item: item[0]):
        if linear:
            yield tuple(unit_queries)
        else:
            # Extremum queries are evaluated per query on GRETA.
            for query in unit_queries:
                yield (query,)


def unit_relevant_types(queries: Sequence[Query]) -> set[EventType]:
    """Event types the unit's queries reference, positively or under NOT."""
    types: set[EventType] = set()
    for query in queries:
        types |= query.event_types()
    return types


def unit_is_linear(queries: Sequence[Query]) -> bool:
    """True if every query of the unit computes a linear aggregate."""
    return all(query.aggregate.kind.is_linear for query in queries)


def recombine_decompositions(
    decompositions: Mapping[str, DecomposedQuery],
    partition_results: Sequence[PartitionResult],
    totals: dict[str, float],
) -> None:
    """Combine sub-query results of decomposed OR/AND queries (Section 5).

    Type-disjoint sub-queries land in *different* execution units, so the two
    halves of one window instance arrive as separate partition results that
    share the ``(group, window index)`` key.  Every key's bucket is
    initialized with an explicit 0.0 for each sub-query before the observed
    results are merged in: a sub-query with no matches in a window (e.g. a
    stream matching only one OR branch) must enter ``combine`` as exactly
    0.0, never be silently dropped — for AND queries a dropped operand would
    silently turn a product into a partial result.
    """
    if not decompositions:
        return
    for original_name, decomposition in decompositions.items():
        sub_names = tuple(sub.name for sub in decomposition.sub_queries)
        per_partition: dict[PartitionKey, dict[str, float]] = {}
        for partition in partition_results:
            present = {
                name: partition.results[name]
                for name in sub_names
                if name in partition.results
            }
            if not present:
                continue
            bucket = per_partition.setdefault(
                partition.key, {name: 0.0 for name in sub_names}
            )
            bucket.update(present)
        totals[original_name] = sum(
            decomposition.combine(sub_results) for sub_results in per_partition.values()
        )


def resolve_engine_label(engine_factory: EngineFactory) -> tuple[str, Optional[TrendAggregationEngine]]:
    """Resolve the display name of an engine factory.

    Engine classes expose ``name`` as a class attribute, so the common case
    needs no instantiation.  For opaque factories (lambdas) one engine is
    built; it is returned alongside the name so callers can keep it instead
    of discarding it.
    """
    name = getattr(engine_factory, "name", None)
    if isinstance(name, str):
        return name, None
    try:
        engine = engine_factory()
    except Exception:  # pragma: no cover - defensive
        return "engine", None
    return getattr(engine, "name", "engine"), engine


class WorkloadExecutor:
    """Evaluates a workload of trend aggregation queries over a stream."""

    def __init__(
        self,
        workload: Workload | Sequence[Query],
        engine_factory: EngineFactory = HamletEngine,
        *,
        reuse_engine: bool = True,
    ) -> None:
        """Create an executor.

        Args:
            workload: The queries to evaluate.
            engine_factory: Zero-argument callable returning the engine used
                for linear-aggregate query groups (default: HAMLET).
            reuse_engine: Reuse one engine instance across partitions (keeps
                optimizer statistics across the run).  Set to False to create
                a fresh engine per partition.
        """
        self.workload = workload if isinstance(workload, Workload) else Workload(workload)
        self.workload.validate()
        self.engine_factory = engine_factory
        self.reuse_engine = reuse_engine
        self.analysis: WorkloadAnalysis = analyze_workload(self.workload)
        self._engine_label, built = resolve_engine_label(engine_factory)
        self._shared_engine: Optional[TrendAggregationEngine] = (
            built if reuse_engine else None
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, stream: EventStream | Iterable[Event]) -> ExecutionReport:
        """Evaluate the workload over ``stream`` and return the report."""
        indexed: Optional[EventStream] = stream if isinstance(stream, EventStream) else None
        events = stream if isinstance(stream, list) else list(stream)
        report = ExecutionReport(engine_name=self._engine_label)
        report.metrics.stream_events = len(events)

        with Stopwatch() as run_watch:
            for group in self.analysis.groups:
                for queries in execution_units(group.queries):
                    self._run_unit(queries, events, report, indexed)

            recombine_decompositions(
                self.analysis.decompositions, report.partition_results, report.totals
            )
        report.metrics.wall_seconds = run_watch.elapsed
        self._attach_optimizer_statistics(report)
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _engine_for(self, queries: Sequence[Query]) -> TrendAggregationEngine:
        if not unit_is_linear(queries):
            return GretaEngine()
        if self.reuse_engine:
            if self._shared_engine is None:
                self._shared_engine = self.engine_factory()
            return self._shared_engine
        return self.engine_factory()

    def _run_unit(
        self,
        queries: tuple[Query, ...],
        events: list[Event],
        report: ExecutionReport,
        indexed: Optional[EventStream] = None,
    ) -> None:
        # Filter the stream to the unit's relevant types before partitioning:
        # engines ignore other types anyway, and partitions of overlapping
        # windows would otherwise store and replay every irrelevant event.
        # A recorded EventStream answers the selection from its per-type
        # index instead of a full scan per execution unit.
        relevant = unit_relevant_types(queries)
        if indexed is not None:
            unit_events = indexed.of_types(relevant)
        else:
            unit_events = [event for event in events if event.event_type in relevant]
        partitioner = GroupWindowPartitioner.for_queries(queries)
        partitioner.add_all(unit_events)
        engine = self._engine_for(queries)
        if events:
            # A unit whose types never occur in a non-empty stream produces
            # no partitions; keep the explicit zero entries consumers of
            # report.totals rely on (an empty stream yields no entries).
            for query in queries:
                report.totals.setdefault(query.name, 0.0)
        for key, partition_events in partitioner.partitions():
            group_key, window_index = key
            with Stopwatch() as watch:
                engine.start(queries)
                for event in partition_events:
                    engine.process(event)
                results = engine.results()
            report.metrics.record_partition(
                seconds=watch.elapsed,
                events=len(partition_events),
                memory_units=engine.memory_units(),
                operations=engine.operations(),
            )
            report.partition_results.append(
                PartitionResult(
                    group_key=group_key,
                    window_index=window_index,
                    window_start=partitioner.window_start(key),
                    results=dict(results),
                    seconds=watch.elapsed,
                    events=len(partition_events),
                )
            )
            for name, value in results.items():
                report.totals[name] = report.totals.get(name, 0.0) + value

    def _attach_optimizer_statistics(self, report: ExecutionReport) -> None:
        engine = self._shared_engine
        if engine is not None and hasattr(engine, "optimizer"):
            report.optimizer_statistics = engine.optimizer.statistics


def run_workload(
    workload: Workload | Sequence[Query],
    stream: EventStream | Iterable[Event],
    engine_factory: EngineFactory = HamletEngine,
) -> ExecutionReport:
    """One-shot convenience wrapper around :class:`WorkloadExecutor`."""
    return WorkloadExecutor(workload, engine_factory).run(stream)
