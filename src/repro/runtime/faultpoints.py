"""Env-gated kill points for fault-injection testing of shard workers.

The recovery machinery's oracle is "kill a worker at the worst possible
instant, recover, and the merged report is byte-identical to the
uninterrupted run".  That needs deterministic deaths *inside* the worker
process at named points of its loop — which no external killer can time
reliably.  This module plants those points:

* the worker resolves a hook once at startup from the
  :data:`FAULTLINE_ENV` environment variable — ``None`` when unset, so
  the production hot path pays a single ``if hook is not None`` per
  batch and nothing else;
* a spec is ``;``-separated triggers of the form
  ``point[@shard][:nth][:mode][:e<epoch>|:eany]``: *point* names the
  kill site, *@shard* restricts to one shard id (default: any), *nth*
  is the 1-based hit count that fires (default 1), *mode* is ``exit``
  (``os._exit(70)``, the "clean-ish" death that skips all cleanup) or
  ``kill`` (``SIGKILL`` to self — nothing runs afterwards, not even
  atexit), and the epoch selector restricts the trigger to one worker
  incarnation — default ``e0``, the original worker, so that the
  supervised respawn (which re-resolves the very same spec) does not
  re-kill itself forever; ``eany`` arms every incarnation (restart-loop
  and max_restarts-exhaustion tests).

Example: ``REPRO_FAULTLINE="post-close-pre-ack@1:3:kill"`` SIGKILLs
shard 1 the third time its *original* worker reaches the
post-close-pre-ack site.

The kill sites (see ``_shard_worker_main``):

* ``pre-fold`` — batch decoded (and, on shm, the slab acked) but no
  event of it folded yet;
* ``mid-batch-decode`` — between decoding a slab/raw payload and acking
  or folding it (the unacked-slab reclamation case);
* ``post-close-pre-ack`` — after folding a batch (window closes
  included) but before the checkpoint covering it is acked;
* ``pre-report`` — everything folded, sentinel seen, death just before
  the final report ships.

Used by :mod:`tools.faultline` (the orchestration harness) and the
recovery test matrix; never set in production.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ExecutionError

__all__ = [
    "FAULTLINE_ENV",
    "KILL_POINTS",
    "FaultTrigger",
    "parse_faultline",
    "resolve_fault_hook",
]

#: Environment variable carrying the kill-point spec.
FAULTLINE_ENV = "REPRO_FAULTLINE"

#: Exit status of ``mode=exit`` deaths (distinct from real error paths).
FAULT_EXIT_CODE = 70

#: The planted kill sites, in worker-loop order.
KILL_POINTS = ("pre-fold", "mid-batch-decode", "post-close-pre-ack", "pre-report")

_MODES = ("exit", "kill")


@dataclass
class FaultTrigger:
    """One armed kill: fire ``mode`` at the ``nth`` hit of ``point``."""

    point: str
    shard: Optional[int]
    nth: int = 1
    mode: str = "exit"
    #: Worker incarnation the trigger arms in (None: every incarnation).
    epoch: Optional[int] = 0
    hits: int = field(default=0, compare=False)

    def fire(self) -> None:
        if self.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        os._exit(FAULT_EXIT_CODE)


def parse_faultline(spec: str) -> list[FaultTrigger]:
    """Parse a :data:`FAULTLINE_ENV` spec string into triggers."""
    triggers: list[FaultTrigger] = []
    for raw in spec.split(";"):
        item = raw.strip()
        if not item:
            continue
        parts = item.split(":")
        head, tail = parts[0], parts[1:]
        if "@" in head:
            point, shard_text = head.split("@", 1)
            try:
                shard: Optional[int] = int(shard_text)
            except ValueError as error:
                raise ExecutionError(
                    f"faultline spec {item!r}: bad shard id {shard_text!r}"
                ) from error
        else:
            point, shard = head, None
        if point not in KILL_POINTS:
            raise ExecutionError(
                f"faultline spec {item!r}: unknown kill point {point!r} "
                f"(choose one of {', '.join(KILL_POINTS)})"
            )
        nth = 1
        mode = "exit"
        epoch: Optional[int] = 0
        for extra in tail:
            if extra in _MODES:
                mode = extra
                continue
            if extra == "eany":
                epoch = None
                continue
            if extra.startswith("e") and extra[1:].isdigit():
                epoch = int(extra[1:])
                continue
            try:
                nth = int(extra)
            except ValueError as error:
                raise ExecutionError(
                    f"faultline spec {item!r}: {extra!r} is neither a hit "
                    f"count, a mode ({', '.join(_MODES)}) nor an epoch "
                    f"selector (e<N>, eany)"
                ) from error
            if nth < 1:
                raise ExecutionError(f"faultline spec {item!r}: nth must be >= 1")
        triggers.append(
            FaultTrigger(point=point, shard=shard, nth=nth, mode=mode, epoch=epoch)
        )
    return triggers


def resolve_fault_hook(shard_id: int, epoch: int = 0) -> Optional[Callable[[str], None]]:
    """The shard's kill-point hook, or None when fault injection is off.

    Resolved once per worker incarnation at startup; the returned callable
    is invoked with the site name at every planted point and dies when an
    armed trigger's hit count is reached.
    """
    spec = os.environ.get(FAULTLINE_ENV)
    if not spec:
        return None
    triggers = [
        trigger
        for trigger in parse_faultline(spec)
        if (trigger.shard is None or trigger.shard == shard_id)
        and (trigger.epoch is None or trigger.epoch == epoch)
    ]
    if not triggers:
        return None

    def hook(point: str) -> None:
        for trigger in triggers:
            if trigger.point == point:
                trigger.hits += 1
                if trigger.hits == trigger.nth:
                    trigger.fire()

    return hook
