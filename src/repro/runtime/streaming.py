"""Single-pass streaming workload executor.

The batch :class:`~repro.runtime.executor.WorkloadExecutor` materializes the
whole stream, duplicates every event into each overlapping window partition
and replays each partition from scratch — correct, and kept as the semantics
reference, but its latency, memory and throughput are artifacts of replay.
This module is the online counterpart:

* events are consumed **in timestamp order exactly once**;
* with **shared windows** (the default), each ``(group key, execution
  unit)`` pair is served by one
  :class:`~repro.runtime.shared_windows.MultiWindowLinearEngine` that does
  the graph work of an event once for *all* overlapping window instances
  and tags the running aggregates with per-window-instance coefficients; a
  window's close is an O(active windows) coefficient readout plus eviction
  of events that fall out of every live instance;
* with ``shared_windows=False`` (the per-instance reference path, also the
  fallback for engines without a shared-window implementation — baselines,
  MIN/MAX units), an active-window index per ``(group key, window
  instance)`` feeds each event incrementally to the engines of the window
  instances covering it — at most ``ceil(size/slide)`` per event; closed
  instances return their engines to a per-unit pool
  (``TrendAggregationEngine.close``);
* the moment the stream passes a window's end, its result is emitted through
  a callback as a :class:`WindowResult` and the window's state is
  **evicted**, so peak memory is bounded by the *live* state instead of the
  stream length.

Lazy opening (on by default) skips provably-inert stream prefixes: a window
instance is not opened — and events covering it are not fed to any engine —
until the first event whose type can *start* a trend of one of the unit's
queries arrives inside the instance.  Events preceding every trend-start
event are provably inert: a trend is a time-ordered match beginning with a
start-type event, negation constraints only invalidate edges between stored
positive events, and leading ``NOT`` carries no constraint, so no engine's
result can depend on the skipped prefix.  The shared-window path propagates
the same invariant per query class: a window is *armed* for a class only
once a class start-type event arrives inside it, and unarmed windows are
skipped by every per-window loop.  The randomized equivalence suite asserts
bit-identical totals across the shared, per-instance and batch paths.

With ``optimizer=...`` (a policy name or a
:class:`~repro.optimizer.decisions.SharingOptimizer` factory) the shared
path becomes **adaptive**: each ``(group, unit)`` stream is segmented into
bursts (maximal same-type runs, optionally capped), a per-group optimizer
decides per burst which members of each eligible query class share, and
the engine splits/merges its coefficient columns accordingly — results are
bit-identical to both static extremes by construction (the differential
property suite in ``tests/runtime/test_adaptive_equivalence.py`` pins it),
only the work and memory profiles change.  ``optimizer=None`` (default)
skips the burst machinery entirely.

With ``allowed_lateness=N`` a watermark-driven
:class:`~repro.runtime.reorder.ReorderBuffer` fronts the ingest paths:
events within the lateness horizon are buffered and replayed to the core
in ``(time, sequence)`` order (so a stream shuffled within the horizon is
bit-identical to its ordered run — results, partitions, emission order),
window close is deferred until the watermark passes the window end, and
events older than the watermark hit the configured late policy —
``"raise"`` (default, the historical crash), ``"drop"``,
``"side_output"`` or ``"retract"`` (re-derive and re-emit the affected
closed windows from periodic engine snapshots with bounded per-update
work).  ``allowed_lateness=None`` (default) keeps the strict in-order
contract with zero overhead.

The executor is incremental: ``process(event)`` / ``finish()`` drive it from
a live source, ``run(stream)`` wraps them for replay-style use.
"""

from __future__ import annotations

import bisect
import pickle
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core.engine import HamletEngine
from repro.core.kernels import KernelBackendSpec, resolve_kernel_backend
from repro.errors import CheckpointError, ExecutionError, OutOfOrderError
from repro.events.block import EventBlock
from repro.events.event import Event, EventType
from repro.events.stream import EventStream, slice_stream
from repro.greta.engine import GretaEngine
from repro.interfaces import TrendAggregationEngine
from repro.optimizer.decisions import OptimizerStatistics, SharingOptimizer
from repro.optimizer.registry import OptimizerSpec, resolve_optimizer_factory
from repro.query.query import Query
from repro.query.windows import Window
from repro.query.workload import Workload
from repro.runtime.executor import (
    EngineFactory,
    ExecutionReport,
    PartitionResult,
    execution_units,
    recombine_decompositions,
    resolve_engine_label,
    unit_is_linear,
    unit_relevant_types,
)
from repro.runtime.partitioner import PartitionKey, PartitionSpec, group_sort_key
from repro.runtime.reorder import (
    ReorderBuffer,
    ensure_block_in_order,
    ensure_in_order,
    late_event_error,
    validate_lateness,
)
from repro.runtime.shared_windows import (
    MultiWindowLinearEngine,
    UnitCompilation,
    shared_window_flavor_of,
)
from repro.template.analysis import analyze_workload
from repro.template.template import compile_pattern

#: Version of the :meth:`StreamingExecutor.snapshot_state` payload schema.
#: Bumped whenever the pickled state shape changes incompatibly; restores
#: reject snapshots from other versions instead of resuming corrupt state.
#: v2: core state moved under a ``"core"`` key and an optional ``"reorder"``
#: section (buffered events, watermark, late counters, retract snapshots)
#: rides along.
SNAPSHOT_VERSION = 2

#: Retract policy: a core snapshot is rotated every this many released
#: items; the last two are retained, bounding both the replay work of one
#: retraction (at most two intervals of events) and the snapshot memory.
_RETRACT_INTERVAL = 256


@dataclass(frozen=True)
class WindowResult:
    """One closed window instance, emitted the moment the stream passes it."""

    group_key: tuple
    #: Integer window-instance index (instance spans ``[k*slide, k*slide+size)``).
    window_index: int
    window_start: float
    window_end: float
    #: Final aggregate per query of the instance's execution unit.
    results: Mapping[str, float]
    #: Events fed to this instance (shared mode: relevant group events that
    #: arrived between the instance's opening and its close).
    events: int
    #: Wall-clock seconds from the arrival of the instance's last contributing
    #: event to the emission of this result.
    emission_latency: float
    #: ``late_policy="retract"`` only: True when this emission *replaces* a
    #: previously emitted result of the same ``(group_key, window_index)``
    #: whose value changed after a late event was folded in.
    retraction: bool = False


@dataclass
class _Instance:
    """Runtime state of one open ``(group key, window instance)`` (per-instance mode)."""

    key: PartitionKey
    end: float
    engine: TrendAggregationEngine
    events: int = 0
    seconds: float = 0.0
    #: ``time.perf_counter()`` at the arrival of the last fed event.
    last_arrival: float = 0.0


@dataclass(slots=True)
class _WindowMeta:
    """Bookkeeping of one open window instance of a shared group."""

    index: int
    end: float
    #: ``group.fed`` when the window opened (events before it are not ours).
    opened_fed: int
    #: ``group.share_seconds`` when the window opened.
    share_at_open: float


@dataclass(slots=True)
class _SharedGroup:
    """One ``(group key, execution unit)`` pair on the shared-window path."""

    engine: MultiWindowLinearEngine
    #: True when the engine keeps a node store that needs eviction sweeps.
    evicts: bool
    #: Open window instances in ascending index order (windows open and
    #: close monotonically for an in-order stream).
    metas: dict[int, _WindowMeta] = field(default_factory=dict)
    #: Relevant events fed to the shared engine so far.
    fed: int = 0
    #: ``time.perf_counter()`` at the arrival of the last fed event.
    last_arrival: float = 0.0
    #: Engine seconds split evenly across the windows open at feed time —
    #: summing per-window attributions recovers the engine wall time once,
    #: instead of multiplying it by the overlap factor.
    share_seconds: float = 0.0
    #: Engine operations already attributed to closed windows.
    ops_reported: int = 0
    #: Adaptive mode only: the group's per-burst sharing optimizer.  Bursts
    #: are segmented per ``(group, unit)`` stream, so decision continuity
    #: (merge/split counting, static plans) is per group — which also keeps
    #: decision counts invariant under sharding, where each group lives
    #: wholly inside one shard.
    optimizer: Optional[SharingOptimizer] = None
    #: Adaptive mode only: type of the burst being buffered, and its events
    #: with their covering window-instance ranges.
    burst_type: Optional[EventType] = None
    burst: list = field(default_factory=list)


@dataclass(slots=True)
class _BlockUnitColumns:
    """Per-unit columns prepared once per ingested block (block fast path)."""

    unit: "_Unit"
    #: ``spec.group_key(event)`` per block row (the block's cached column).
    group_keys: Sequence[tuple]
    #: First / last covering window-instance index per block row.
    lows: Sequence[int]
    highs: Sequence[int]
    #: Lazy-open qualification per *type code* of the block's type table.
    qualifies: Sequence[bool]
    #: ``group key -> [group, type code, [(local, time, seq, low, high), ...]]``
    #: — the unit's buffered maximal same-``(group, type)`` runs.
    pending: dict = field(default_factory=dict)
    #: ``group key -> highest armed window index`` since the last close sweep.
    #: Between sweeps no window closes, so once a row armed ``lo..hi`` every
    #: later row of the group (``lo`` is non-decreasing) only needs to check
    #: indices above the cached high — the per-event path re-probes the full
    #: covering range on every event.  Cleared whenever a sweep runs.
    armed: dict = field(default_factory=dict)


@dataclass(eq=False)
class _Unit:
    """One execution unit: queries sharing a partition set, plus its state.

    ``eq=False`` keeps the default identity equality/hash: units are
    singletons owned by their executor, and the block fast path keys
    per-block state by unit.
    """

    queries: tuple[Query, ...]
    spec: PartitionSpec
    relevant_types: frozenset[EventType]
    #: Types that can start a trend of at least one unit query (lazy-open gate).
    opening_types: frozenset[EventType]
    linear: bool
    #: Shared-window compilation; None means the per-instance fallback.
    compiled: Optional[UnitCompilation] = None
    #: Shared mode: one engine + window bookkeeping per group key.
    shared_groups: dict[tuple, _SharedGroup] = field(default_factory=dict)
    #: Per-instance mode: open instances and the engine pool.
    open: dict[PartitionKey, _Instance] = field(default_factory=dict)
    pool: list[TrendAggregationEngine] = field(default_factory=list)
    #: Earliest end among open instances (``inf`` when none are open).
    next_close: float = float("inf")

    @property
    def window(self) -> Window:
        return self.spec.window

    @property
    def shared(self) -> bool:
        return self.compiled is not None


class StreamingExecutor:
    """Single-pass, bounded-memory evaluation of a trend aggregation workload."""

    def __init__(
        self,
        workload: Workload | Sequence[Query],
        engine_factory: EngineFactory = HamletEngine,
        *,
        on_window: Optional[Callable[[WindowResult], None]] = None,
        lazy_open: bool = True,
        shared_windows: bool = True,
        optimizer: OptimizerSpec = None,
        burst_size: Optional[int] = None,
        kernel_backend: KernelBackendSpec = None,
        allowed_lateness: Optional[float] = None,
        late_policy: str = "raise",
        on_late: Optional[Callable[[Event], None]] = None,
    ) -> None:
        """Create a streaming executor.

        Args:
            workload: The queries to evaluate.
            engine_factory: Zero-argument callable returning the engine used
                for linear-aggregate query units (default: HAMLET).  MIN/MAX
                units run on GRETA, as in the batch executor.
            on_window: Callback invoked with every :class:`WindowResult` the
                moment its window closes, in emission order.
            lazy_open: Open a window instance only when a trend-start-type
                event arrives inside it (skips provably inert prefixes).
                Disable to mirror the batch executor's instance set exactly.
            shared_windows: Evaluate all overlapping window instances of a
                ``(group, unit)`` pair with one shared multi-window engine
                (events processed once, per-window coefficients, see
                :mod:`repro.runtime.shared_windows`).  Disable to fall back
                to one engine per window instance — the semantics reference.
                Engines without a shared-window implementation (baselines,
                MIN/MAX units, ``fast_predecessor_totals=False``) use the
                per-instance path regardless.
            optimizer: Per-burst sharing policy for the shared-window path:
                ``None`` (the default) keeps the static compile-time plan
                with zero burst overhead; a policy name (``"dynamic"``,
                ``"always"``, ``"never"``, ``"static"``) or a zero-argument
                :class:`~repro.optimizer.decisions.SharingOptimizer` factory
                turns on adaptive mode — each ``(group, unit)`` stream is
                segmented into bursts (maximal same-type runs), the policy
                decides per burst which class members share, and the engine
                splits/merges its coefficient columns accordingly.  Results
                are bit-identical whatever the policy; only the work and
                memory profiles change.  Per-instance fallback units are
                unaffected (their engines keep their own optimizers).
            burst_size: Optional cap on the events per burst when bursts are
                buffered (``None``: bursts are the maximal same-type runs).
                Smaller caps mean more frequent decisions in adaptive mode.
            kernel_backend: Numeric core for the shared-window burst folds:
                ``None`` (consult ``REPRO_KERNEL_BACKEND``, default the
                pure-Python reference backend), a backend name (``"python"``,
                ``"numpy"``) or a
                :class:`~repro.core.kernels.KernelBackend` instance.  The
                numpy backend folds each maximal same-type run as one
                closed-form array operation — bit-identical to the reference
                on exactly-representable integer workloads and within the
                documented float tolerance otherwise (see docs/DESIGN.md).
            allowed_lateness: ``None`` (default) keeps the strict in-order
                arrival contract.  A number turns on the watermark reorder
                buffer: events within ``allowed_lateness`` of the maximum
                event time seen are buffered and replayed to the core in
                ``(time, sequence)`` order, so streams shuffled within the
                horizon reproduce their ordered run bit-identically.
            late_policy: What happens to an event *older* than the
                watermark (``max event time - allowed_lateness``):
                ``"raise"`` (default) raises
                :class:`~repro.errors.OutOfOrderError`; ``"drop"`` discards
                it (counted in ``metrics.late_dropped``); ``"side_output"``
                hands it to ``on_late`` (counted in
                ``metrics.late_side_output``); ``"retract"`` folds it in by
                restoring a periodic engine snapshot and replaying the
                bounded tail, re-emitting any closed window whose result
                changed with ``WindowResult.retraction=True`` (counted in
                ``metrics.late_retracted``).
            on_late: The ``"side_output"`` policy's callback, invoked with
                each late :class:`~repro.events.event.Event` in arrival
                order.
        """
        self.workload = workload if isinstance(workload, Workload) else Workload(workload)
        self.workload.validate()
        self.engine_factory = engine_factory
        self.on_window = on_window
        self.lazy_open = lazy_open
        self.shared_windows = shared_windows
        if burst_size is not None and burst_size < 1:
            raise ExecutionError(f"burst size must be >= 1, got {burst_size}")
        self._optimizer_factory = resolve_optimizer_factory(optimizer)
        self._kernel_backend = resolve_kernel_backend(kernel_backend)
        #: Buffer maximal same-type runs per shared group: required by
        #: adaptive mode (per-burst decisions) and requested by vectorizing
        #: backends (run-level folds); off otherwise — the static python
        #: path keeps its zero-overhead per-event feed.
        self._burst_buffering = (
            self._optimizer_factory is not None or self._kernel_backend.wants_bursts
        )
        if burst_size is not None and not self._burst_buffering:
            # Burst segmentation only exists when bursts are buffered;
            # silently ignoring the cap would hide the misconfiguration.
            raise ExecutionError(
                "burst_size requires an optimizer (pass optimizer='dynamic', "
                "'always', 'never', 'static' or a SharingOptimizer factory) "
                "or a kernel backend that folds bursts (kernel_backend='numpy')"
            )
        self.burst_size = burst_size
        validate_lateness(allowed_lateness, late_policy, on_late)
        self.allowed_lateness = allowed_lateness
        self.late_policy = late_policy
        self.on_late = on_late
        self.analysis = analyze_workload(self.workload)
        self._engine_label, prebuilt = resolve_engine_label(engine_factory)
        flavor: Optional[str] = None
        if shared_windows:
            flavor, prebuilt = shared_window_flavor_of(engine_factory, prebuilt)
        self._units: list[_Unit] = []
        for group in self.analysis.groups:
            for queries in execution_units(group.queries):
                self._units.append(self._build_unit(queries, flavor))
        self._units_by_type: dict[EventType, tuple[_Unit, ...]] = {}
        for unit in self._units:
            for event_type in unit.relevant_types:
                self._units_by_type.setdefault(event_type, []).append(unit)  # type: ignore[arg-type]
        self._units_by_type = {
            event_type: tuple(units) for event_type, units in self._units_by_type.items()
        }
        if prebuilt is not None:
            first_instances = next(
                (unit for unit in self._units if unit.linear and not unit.shared), None
            )
            if first_instances is not None:
                first_instances.pool.append(prebuilt)
                self._engines: list[TrendAggregationEngine] = [prebuilt]
            else:
                self._engines = []
        else:
            self._engines = []
        self._begin_run()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def run(
        self,
        stream: EventStream | EventBlock | Iterable[Event],
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> ExecutionReport:
        """Consume ``stream`` in one pass and return the final report.

        ``stream`` may be an :class:`~repro.events.block.EventBlock`, which
        is ingested columnar (:meth:`process_block`) without materializing
        per-event objects on the hot path.

        ``start`` / ``end`` replay only the half-open time slice
        ``[start, end)`` of a recorded :class:`EventStream` (or block); the
        slice is cut with the cached timestamp column (binary search, no
        scan — blocks slice zero-copy).
        """
        self._begin_run()
        if isinstance(stream, EventBlock):
            self.process_block(stream.slice_time(start, end))
            return self.finish()
        stream = slice_stream(stream, start, end)
        for event in stream:
            self.process(event)
        return self.finish()

    def process(self, event: Event) -> None:
        """Ingest one event, feeding engines and emitting closed windows.

        With ``allowed_lateness`` set the event passes through the reorder
        buffer first: it is buffered (and the core fed whatever the
        advancing watermark releases, in ``(time, sequence)`` order) or,
        when it is older than the watermark, handed to the late policy.
        """
        buffer = self._reorder
        if buffer is None:
            ensure_in_order(event.time, self._clock)
            self._ingest_event(event)
            return
        if buffer.is_late(event.time):
            self._handle_late_event(event)
            return
        released = buffer.push(event.time, event.sequence, event)
        if released is None:
            # Heap or block segments in play: run the full k-way merge.
            self._drain(buffer.release_ready())
        elif released:
            self._drain_events(released)

    def _ingest_event(self, event: Event) -> None:
        """Feed one in-order event to the core (past the reorder buffer)."""
        self._clock = event.time
        self._consumed += 1
        if event.time >= self._next_close:
            self._close_passed_windows(event.time)
        units = self._units_by_type.get(event.event_type)
        if not units:
            return
        arrival = time.perf_counter()
        for unit in units:
            if unit.shared:
                self._feed_shared(unit, event, arrival)
            else:
                self._feed_unit(unit, event, arrival)

    def process_block(self, block: EventBlock) -> None:
        """Ingest a whole columnar block of events.

        Semantically identical to calling :meth:`process` for every row in
        order — same results, same abstract operation counts, same emission
        order (the block differential suites pin this) — but on the default
        configuration (static plan, python kernel backend, shared windows)
        no per-row :class:`Event` object is built anywhere: covering window
        ranges come from one vectorized pass over the time column
        (:meth:`~repro.query.windows.Window.instance_range_columns`), group
        keys and measure contributions read the block's cached payload
        columns, and maximal same-``(group, type)`` runs feed the engine's
        run-level fold (:meth:`MultiWindowLinearEngine.process_block_run`)
        directly.

        Burst-buffered configurations (an adaptive optimizer, or a kernel
        backend that wants bursts) segment and flush runs on their own
        schedule, which block-boundary flushing cannot reproduce; for those
        — and for the per-instance reference path — this degrades to the
        thin per-event compat shim with lazily materialized row views.

        With ``allowed_lateness`` set the block goes through the reorder
        buffer: a ``(time, sequence)``-sorted block is split once at the
        entry watermark (late prefix to the policy, the rest buffered as a
        zero-copy segment and released as block slices — never exploded to
        per-event objects); a block with internal regressions falls back to
        buffering per-row views.
        """
        if self._reorder is None:
            if len(block):
                ensure_block_in_order(
                    block.times, block.start, block.stop, self._clock
                )
            self._ingest_block(block)
            return
        self._buffer_block(block)

    def _buffer_block(self, block: EventBlock) -> None:
        """Route one block through the reorder buffer (lateness mode)."""
        count = len(block)
        if count == 0:
            return
        buffer = self._reorder
        times = block.times
        sequences = block.sequences
        base = block.start
        stop = block.stop
        # Sortedness probe at C speed: a sorted-copy compare (Timsort is
        # one linear pass on already-sorted input) plus a set-size check
        # that rules out equal-time ties; only a tied, time-sorted block
        # needs the per-row (time, sequence) Python loop.
        section = times[base:stop]
        if sorted(section) != section:
            sorted_block = False
        elif len(set(section)) == count:
            sorted_block = True
        else:
            sorted_block = True
            previous_time = times[base]
            previous_seq = sequences[base]
            for position in range(base + 1, stop):
                time_value = times[position]
                seq_value = sequences[position]
                if time_value < previous_time or (
                    time_value == previous_time and seq_value < previous_seq
                ):
                    sorted_block = False
                    break
                previous_time = time_value
                previous_seq = seq_value
        if not sorted_block:
            # Internal regressions: the zero-copy segment path needs sorted
            # columns, so buffer lazily materialized row views one by one.
            for local in range(count):
                time_value = times[base + local]
                if buffer.is_late(time_value):
                    self._handle_late_event(block.event_at(local))
                else:
                    buffer.add(time_value, sequences[base + local], block.event_at(local))
                    buffer.observe(time_value)
            self._drain(buffer.release_ready())
            return
        # Sorted: one split at the entry watermark is exactly per-row
        # classification (a sorted block's own rows can never make a later
        # row of the same block late).
        watermark = buffer.watermark
        split = bisect.bisect_left(times, watermark, base, stop)
        if split > base:
            if self.late_policy == "raise":
                raise late_event_error(
                    times[base], sequences[base], watermark, self.allowed_lateness
                )
            if self.late_policy == "drop":
                self._late_dropped += split - base
            else:
                for local in range(split - base):
                    self._handle_late_event(block.event_at(local))
        if split < stop:
            buffer.add_segment(block.slice(split - base, count))
            buffer.observe(times[stop - 1])
            self._drain(buffer.release_ready())

    def _ingest_block(self, block: EventBlock) -> None:
        """Feed one in-order block to the core (past the reorder buffer)."""
        if self._burst_buffering or not self.shared_windows:
            for local in range(len(block)):
                self._ingest_event(block.event_at(local))
            return
        count = len(block)
        if count == 0:
            return
        times = block.times
        base = block.start
        stop = block.stop
        if base == 0 and stop == len(times):
            times_col: Sequence[float] = times
            codes_col: Sequence[int] = block.type_codes
            seqs_col: Sequence[int] = block.sequences
        else:
            times_col = times[base:stop]
            codes_col = block.type_codes[base:stop]
            seqs_col = block.sequences[base:stop]
        #: ``(window size, slide) -> (lows, highs)`` — units sharing a window
        #: shape share one covering-range pass over the time column.
        range_cache: dict[tuple[float, float], tuple[list[int], list[int]]] = {}
        prepared: dict[_Unit, _BlockUnitColumns] = {}
        #: Shared-unit states in first-touch order (close boundaries and the
        #: block end flush their pending runs in this deterministic order).
        states: list[_BlockUnitColumns] = []
        #: Per type code: ``(unit, state-or-None, qualifies)`` triples,
        #: resolved lazily on the code's first row.
        triples_by_code: list[Optional[list]] = [None] * len(block.type_table)
        arrival = time.perf_counter()
        clock = self._clock
        consumed = self._consumed
        engine_feeds = 0
        metrics = self._report.metrics
        next_close = self._next_close
        for local, event_time, code, sequence in zip(
            range(count), times_col, codes_col, seqs_col
        ):
            clock = event_time
            consumed += 1
            if event_time >= next_close:
                # Pending rows precede the boundary: fold them before any
                # window they may contribute to is read out.
                for state in states:
                    if state.pending:
                        for entry in state.pending.values():
                            self._flush_block_run(block, state.unit, entry)
                        state.pending.clear()
                    state.armed.clear()
                self._clock = clock
                self._consumed = consumed
                self._engine_feeds += engine_feeds
                engine_feeds = 0
                self._close_passed_windows(event_time)
                next_close = self._next_close
            triples = triples_by_code[code]
            if triples is None:
                triples = triples_by_code[code] = self._block_code_triples(
                    block, code, prepared, states, range_cache
                )
            if not triples:
                continue
            event: Optional[Event] = None
            for unit, state, qualifies in triples:
                if state is None:
                    if event is None:
                        event = block.event_at(local)
                    self._feed_unit(unit, event, arrival)
                    continue
                group_key = state.group_keys[local]
                group = unit.shared_groups.get(group_key)
                if group is None:
                    if not qualifies:
                        continue
                    assert unit.compiled is not None
                    engine = MultiWindowLinearEngine(
                        unit.compiled, self._kernel_backend
                    )
                    group = unit.shared_groups[group_key] = _SharedGroup(
                        engine=engine, evicts=engine.store is not None
                    )
                lo = state.lows[local]
                hi = state.highs[local]
                if hi < lo:
                    continue
                metas = group.metas
                if qualifies:
                    cached = state.armed.get(group_key)
                    if cached is None or hi > cached:
                        # Indices up to ``cached`` were armed earlier in this
                        # sweep segment and cannot have closed since.
                        first = lo if cached is None else max(lo, cached + 1)
                        opened = False
                        window = unit.spec.window
                        for index in range(first, hi + 1):
                            if index not in metas:
                                end = window.instance_bounds(index)[1]
                                metas[index] = _WindowMeta(
                                    index, end, group.fed, group.share_seconds
                                )
                                opened = True
                                self._shared_active += 1
                                if end < unit.next_close:
                                    unit.next_close = end
                                    if end < self._next_close:
                                        self._next_close = end
                                        next_close = end
                        state.armed[group_key] = hi
                        if opened:
                            metrics.note_active_windows(self.active_window_count())
                if not metas:
                    continue
                entry = state.pending.get(group_key)
                if entry is not None and entry[1] != code:
                    del state.pending[group_key]
                    self._flush_block_run(block, unit, entry)
                    entry = None
                if entry is None:
                    entry = state.pending[group_key] = [group, code, []]
                    # One stamp covers the whole block: every feed of this
                    # group during the block happens at the same arrival.
                    group.last_arrival = arrival
                entry[2].append((local, event_time, sequence, lo, hi))
                group.fed += 1
                engine_feeds += 1
        for state in states:
            if state.pending:
                for entry in state.pending.values():
                    self._flush_block_run(block, state.unit, entry)
                state.pending.clear()
        self._clock = clock
        self._consumed = consumed
        self._engine_feeds += engine_feeds

    # ------------------------------------------------------------------ #
    # Out-of-order ingestion (reorder buffer, late policies, retraction)
    # ------------------------------------------------------------------ #
    @property
    def max_event_time(self) -> float:
        """Maximum event time seen (buffered or ingested); the stream clock
        when no reorder buffer is configured."""
        if self._reorder is not None:
            return self._reorder.max_event_time
        return self._clock

    @property
    def watermark(self) -> float:
        """``max_event_time - allowed_lateness`` (the stream clock when no
        reorder buffer is configured)."""
        if self._reorder is not None:
            return self._reorder.watermark
        return self._clock

    def _drain(self, releases: list) -> None:
        """Ingest what the reorder buffer released, logging for retraction."""
        if not releases:
            return
        retracting = self._retract_snapshots is not None
        for kind, payload in releases:
            if kind == "events":
                if not payload:
                    continue
                if retracting:
                    self._released_log.append(("events", payload))
                    last = payload[-1]
                    self._release_cursor = (last.time, last.sequence)
                    self._released_since_rotate += len(payload)
                for event in payload:
                    self._ingest_event(event)
            else:
                if retracting:
                    self._released_log.append(("block", payload))
                    position = payload.stop - 1
                    self._release_cursor = (
                        payload.times[position],
                        payload.sequences[position],
                    )
                    self._released_since_rotate += len(payload)
                self._ingest_block(payload)
        if retracting and self._released_since_rotate >= _RETRACT_INTERVAL:
            self._rotate_retract_snapshot()

    def _drain_events(self, events: list) -> None:
        """Ingest a loose-event release without the per-release wrappers."""
        if self._retract_snapshots is not None:
            self._drain([("events", events)])
            return
        for event in events:
            self._ingest_event(event)

    def _handle_late_event(self, event: Event) -> None:
        """Apply the configured policy to one beyond-the-watermark event."""
        policy = self.late_policy
        if policy == "drop":
            self._late_dropped += 1
            return
        if policy == "side_output":
            self._late_side_output += 1
            self.on_late(event)  # type: ignore[misc]  # validated non-None
            return
        if policy == "retract":
            self._apply_retraction(event)
            self._late_retracted += 1
            return
        raise late_event_error(
            event.time,
            event.sequence,
            self._reorder.watermark,  # type: ignore[union-attr]
            self.allowed_lateness,
        )

    def _core_state(self) -> dict:
        """The pickled-copy view of everything the core ingest state owns."""
        return {
            "clock": self._clock,
            "consumed": self._consumed,
            "engine_feeds": self._engine_feeds,
            "shared_active": self._shared_active,
            "windows_closed": self._windows_closed,
            "next_close": self._next_close,
            "units": [
                (unit.shared_groups, unit.open, unit.pool, unit.next_close)
                for unit in self._units
            ],
            "report": self._report,
            "adaptive_stats": self._adaptive_stats,
        }

    def _restore_core(self, core: dict) -> None:
        """Reattach a :meth:`_core_state` copy (snapshot restore / retract).

        Never touches the lateness machinery: the reorder buffer, late
        counters and retract log live *upstream* of the core and survive a
        retraction's state rollback.
        """
        restored_engines: list[TrendAggregationEngine] = []
        arrival = time.perf_counter()
        for unit, (shared_groups, open_instances, pool, next_close) in zip(
            self._units, core["units"]
        ):
            unit.shared_groups = shared_groups
            unit.open = open_instances
            unit.pool = pool
            unit.next_close = next_close
            # Arrival stamps came from another perf_counter epoch (a dead
            # process, or this run's pre-rollback past); re-anchor them so
            # emission latencies stay non-negative.
            for group in shared_groups.values():
                group.last_arrival = arrival
            for instance in open_instances.values():
                instance.last_arrival = arrival
                restored_engines.append(instance.engine)
            restored_engines.extend(pool)
        self._engines = restored_engines
        self._clock = core["clock"]
        self._consumed = core["consumed"]
        self._engine_feeds = core["engine_feeds"]
        self._shared_active = core["shared_active"]
        self._windows_closed = core["windows_closed"]
        self._next_close = core["next_close"]
        self._report = core["report"]
        self._adaptive_stats = core["adaptive_stats"]

    def _rotate_retract_snapshot(self) -> None:
        """Snapshot the core at the release cursor; retain the last two.

        Dropping older snapshots trims the released log (replay never
        reaches behind the oldest retained snapshot) and prunes emitted-log
        entries whose windows closed before it (they can never re-close).
        """
        snapshots = self._retract_snapshots
        assert snapshots is not None
        payload = pickle.dumps(self._core_state(), protocol=pickle.HIGHEST_PROTOCOL)
        snapshots.append([self._release_cursor, payload, len(self._released_log)])
        if len(snapshots) > 2:
            del snapshots[:-2]
            cut = snapshots[0][2]
            if cut:
                del self._released_log[:cut]
                for snapshot in snapshots:
                    snapshot[2] -= cut
            horizon = snapshots[0][0][0]
            self._emitted_log = {
                key: value
                for key, value in self._emitted_log.items()
                if value[1] > horizon
            }
        self._released_since_rotate = 0

    def _apply_retraction(self, event: Event) -> None:
        """Fold one beyond-the-watermark event into already-processed state.

        Bounded per-update work: restore the newest core snapshot at or
        before the event's ``(time, sequence)`` position, splice the event
        into the released log at that position (splitting a block segment
        when it lands inside one), and replay the log tail — at most two
        rotation intervals of events.  Windows that re-close are reconciled
        by :meth:`_emit_window`: unchanged results are suppressed, changed
        ones re-emit with ``retraction=True``.
        """
        key = (event.time, event.sequence)
        snapshots = self._retract_snapshots
        assert snapshots is not None
        chosen = None
        for index in range(len(snapshots) - 1, -1, -1):
            if not key < snapshots[index][0]:
                chosen = index
                break
        if chosen is None:
            raise OutOfOrderError(
                f"retract horizon exceeded: event at time={event.time!r} "
                f"seq={event.sequence} predates the oldest retained engine "
                f"snapshot; raise allowed_lateness to buffer more disorder"
            )
        _, payload, log_index = snapshots[chosen]
        # Newer snapshots were taken without this event; restoring one
        # later would silently lose it.
        del snapshots[chosen + 1 :]
        merged = self._merge_late_into_log(self._released_log[log_index:], event, key)
        self._released_log[log_index:] = merged
        self._restore_core(pickle.loads(payload))
        for kind, entry in merged:
            if kind == "events":
                for item in entry:
                    self._ingest_event(item)
            else:
                self._ingest_block(entry)
        last_kind, last_entry = merged[-1]
        if last_kind == "events":
            last = last_entry[-1]
            self._release_cursor = (last.time, last.sequence)
        else:
            position = last_entry.stop - 1
            self._release_cursor = (
                last_entry.times[position],
                last_entry.sequences[position],
            )

    @staticmethod
    def _merge_late_into_log(entries: list, event: Event, key: tuple) -> list:
        """Splice ``event`` into release-log ``entries`` at its key position."""
        merged: list = []
        inserted = False
        for entry in entries:
            if inserted:
                merged.append(entry)
                continue
            kind, payload = entry
            if kind == "events":
                index = len(payload)
                for position, item in enumerate(payload):
                    if key < (item.time, item.sequence):
                        index = position
                        break
                if index < len(payload):
                    merged.append(("events", payload[:index] + [event] + payload[index:]))
                    inserted = True
                else:
                    merged.append(entry)
            else:
                last = payload.stop - 1
                if key < (payload.times[last], payload.sequences[last]):
                    base = payload.start
                    split = bisect.bisect_left(payload.times, key[0], base, payload.stop)
                    sequences = payload.sequences
                    while (
                        split < payload.stop
                        and payload.times[split] == key[0]
                        and sequences[split] <= key[1]
                    ):
                        split += 1
                    relative = split - base
                    if relative:
                        merged.append(("block", payload.slice(0, relative)))
                    merged.append(("events", [event]))
                    merged.append(("block", payload.slice(relative, len(payload))))
                    inserted = True
                else:
                    merged.append(entry)
        if not inserted:
            merged.append(("events", [event]))
        return merged

    def _emit_window(self, result: WindowResult) -> None:
        """Deliver one closed window, reconciling retract re-emissions.

        Under the retract policy a replay re-closes windows the original
        pass already emitted: identical results are suppressed, changed
        ones go out again flagged ``retraction=True`` so downstream
        consumers can overwrite the stale value.
        """
        if self._retract_snapshots is not None:
            key = (result.group_key, result.window_index)
            previous = self._emitted_log.get(key)
            if previous is not None:
                if previous[0] == result.results:
                    return
                result = replace(result, retraction=True)
            # Log a copy: the callback may mutate the dict it is handed.
            self._emitted_log[key] = (dict(result.results), result.window_end)
        self.on_window(result)  # type: ignore[misc]  # callers gate on None

    def finish(self) -> ExecutionReport:
        """Close every remaining window and return the report."""
        if self._reorder is not None:
            self._drain(self._reorder.flush())
        self._report.metrics.note_memory_units(self._open_memory_units())
        for unit in self._units:
            if unit.shared:
                if self._burst_buffering:
                    for group in unit.shared_groups.values():
                        self._flush_group(unit, group)
                pending = [
                    (meta.end, group_key, meta.index)
                    for group_key, group in unit.shared_groups.items()
                    for meta in group.metas.values()
                ]
                pending.sort(key=lambda item: (item[0], group_sort_key(item[1]), item[2]))
                for _, group_key, index in pending:
                    group = unit.shared_groups[group_key]
                    self._close_shared_window(unit, group_key, group, group.metas.pop(index))
            else:
                # Sorted for a deterministic emission order of the final flush.
                for key in sorted(
                    unit.open, key=lambda item: (item[1], group_sort_key(item[0]))
                ):
                    self._close_instance(unit, unit.open.pop(key))
            unit.next_close = float("inf")
        self._next_close = float("inf")
        report = self._report
        report.metrics.stream_events = self._consumed
        report.metrics.wall_seconds = time.perf_counter() - self._run_started
        # Late counters live on the executor (a retraction's state rollback
        # must not roll them back) and land in the report here.
        report.metrics.late_dropped = self._late_dropped
        report.metrics.late_side_output = self._late_side_output
        report.metrics.late_retracted = self._late_retracted
        if self._consumed:
            for unit in self._units:
                for query in unit.queries:
                    report.totals.setdefault(query.name, 0.0)
        recombine_decompositions(
            self.analysis.decompositions, report.partition_results, report.totals
        )
        self._attach_optimizer_statistics(report)
        return report

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def active_window_count(self) -> int:
        """Number of currently open ``(group, window instance)`` states."""
        return self._shared_active + sum(len(unit.open) for unit in self._units)

    @property
    def engines_created(self) -> int:
        """Per-instance engines built so far (shared-window engines are one
        per live ``(group, unit)`` pair and are not pooled)."""
        return len(self._engines)

    @property
    def shared_group_count(self) -> int:
        """Live shared multi-window engines (one per ``(group, unit)`` pair)."""
        return sum(len(unit.shared_groups) for unit in self._units if unit.shared)

    @property
    def engine_feeds(self) -> int:
        """Engine ``process`` calls so far: 1 per (event, unit, group) on the
        shared path versus up to ``ceil(size/slide)`` per event per unit on
        the per-instance path."""
        return self._engine_feeds

    @property
    def peak_active_windows(self) -> int:
        """Peak number of simultaneously open window instances this run."""
        return self._report.metrics.peak_active_windows

    @property
    def windows_closed(self) -> int:
        """Window instances closed (emitted) so far this run."""
        return self._windows_closed

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def _snapshot_fingerprint(self) -> dict:
        # Everything the snapshot's meaning depends on: restoring into an
        # executor with a different workload, sharing configuration or
        # kernel backend would silently resume the wrong computation.
        return {
            "queries": tuple(query.name for query in self.workload.queries),
            "engine": self._engine_label,
            "lazy_open": self.lazy_open,
            "shared_windows": self.shared_windows,
            "adaptive": self._optimizer_factory is not None,
            "burst_size": self.burst_size,
            "kernel": self._kernel_backend.name,
            "allowed_lateness": self.allowed_lateness,
            "late_policy": self.late_policy,
        }

    def snapshot_state(self) -> bytes:
        """Serialize the full mid-stream execution state.

        The snapshot captures everything :meth:`restore_state` needs to
        continue the run bit-identically on a fresh executor built from
        the same workload and configuration: per-unit shared groups
        (coefficient state, window bookkeeping, optimizer statistics and
        the *unflushed* burst buffer — flushing here would force a burst
        decision the uninterrupted run takes later), per-instance open
        windows and engine pools, the partial :class:`ExecutionReport`,
        and the stream/close clocks.  With ``allowed_lateness`` set, the
        reorder buffer (buffered events and the watermark), the late
        counters and the retract machinery ride along under a ``"reorder"``
        section, so a restore resumes mid-horizon disorder handling too.
        The payload is an opaque pickle; the on-disk container
        (:mod:`repro.runtime.checkpoint`) adds the versioned, checksummed
        header.
        """
        reorder: Optional[dict] = None
        if self._reorder is not None:
            reorder = {
                "buffer": self._reorder,
                "late_dropped": self._late_dropped,
                "late_side_output": self._late_side_output,
                "late_retracted": self._late_retracted,
                "release_cursor": self._release_cursor,
                "released_log": self._released_log,
                "released_since_rotate": self._released_since_rotate,
                "emitted_log": self._emitted_log,
                "retract_snapshots": self._retract_snapshots,
            }
        state = {
            "version": SNAPSHOT_VERSION,
            "fingerprint": self._snapshot_fingerprint(),
            "core": self._core_state(),
            "reorder": reorder,
        }
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    def restore_state(self, payload: bytes) -> None:
        """Resume from a :meth:`snapshot_state` payload.

        The executor must have been constructed from the same workload and
        configuration as the snapshotting one; mismatches raise
        :class:`~repro.errors.CheckpointError` instead of resuming the
        wrong computation.  After the restore, :meth:`process` continues
        exactly where the snapshot left off — same partition results, same
        totals, same optimizer decisions.
        """
        try:
            state = pickle.loads(payload)
        except Exception as error:
            raise CheckpointError(f"undecodable snapshot payload: {error!r}") from error
        if not isinstance(state, dict) or state.get("version") != SNAPSHOT_VERSION:
            raise CheckpointError(
                f"snapshot schema version {state.get('version') if isinstance(state, dict) else '?'} "
                f"does not match this executor's {SNAPSHOT_VERSION}"
            )
        fingerprint = self._snapshot_fingerprint()
        if state["fingerprint"] != fingerprint:
            raise CheckpointError(
                "snapshot was taken for a different workload/configuration: "
                f"snapshot {state['fingerprint']!r} vs executor {fingerprint!r}"
            )
        self._begin_run()
        self._restore_core(state["core"])
        reorder = state.get("reorder")
        if reorder is not None:
            self._reorder = reorder["buffer"]
            self._late_dropped = reorder["late_dropped"]
            self._late_side_output = reorder["late_side_output"]
            self._late_retracted = reorder["late_retracted"]
            self._release_cursor = reorder["release_cursor"]
            self._released_log = reorder["released_log"]
            self._released_since_rotate = reorder["released_since_rotate"]
            self._emitted_log = reorder["emitted_log"]
            self._retract_snapshots = reorder["retract_snapshots"]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _build_unit(self, queries: tuple[Query, ...], flavor: Optional[str]) -> _Unit:
        first = queries[0]
        linear = unit_is_linear(queries)
        relevant = frozenset(unit_relevant_types(queries))
        if linear:
            opening: set[EventType] = set()
            for query in queries:
                opening |= set(compile_pattern(query.pattern).start_types)
        else:
            # The inert-prefix argument relies on linearity (zero starts ==
            # zero aggregate); GRETA's extremum propagation can yield values
            # from start-less predecessor chains, so MIN/MAX instances open
            # on any relevant event to stay batch-identical.
            opening = set(relevant)
        compiled: Optional[UnitCompilation] = None
        if flavor is not None and linear:
            compiled = UnitCompilation(queries, share_classes=flavor == "classes")
        return _Unit(
            queries=queries,
            spec=PartitionSpec(group_by=first.group_by, window=first.window),
            relevant_types=relevant,
            opening_types=frozenset(opening),
            linear=linear,
            compiled=compiled,
        )

    def _begin_run(self) -> None:
        for unit in self._units:
            unit.shared_groups.clear()
            for instance in unit.open.values():
                instance.engine.close()
                unit.pool.append(instance.engine)
            unit.open.clear()
            unit.next_close = float("inf")
        # The report's optimizer statistics are per run: pooled engines
        # survive across run() calls (keeping their compiled templates), so
        # their optimizers' counters must restart with the run.
        for engine in self._engines:
            optimizer = getattr(engine, "optimizer", None)
            if optimizer is not None:
                optimizer.statistics = OptimizerStatistics()
        self._report = ExecutionReport(engine_name=self._engine_label)
        self._run_started = time.perf_counter()
        self._clock = float("-inf")
        self._consumed = 0
        self._engine_feeds = 0
        #: Adaptive mode: decision statistics of evicted groups, folded in
        #: eviction order (deterministic for a given stream).
        self._adaptive_stats: Optional[OptimizerStatistics] = (
            OptimizerStatistics() if self._optimizer_factory is not None else None
        )
        #: Open shared-window instances (kept incrementally; per-instance
        #: opens are counted from the units' ``open`` dicts directly).
        self._shared_active = 0
        self._next_close = float("inf")
        #: Window instances closed this run (both paths) — the checkpoint
        #: scheduler's "every N window boundaries" trigger reads this.
        self._windows_closed = 0
        #: Lateness machinery: buffer, policy counters and retract state.
        self._reorder: Optional[ReorderBuffer] = (
            ReorderBuffer(self.allowed_lateness)
            if self.allowed_lateness is not None
            else None
        )
        self._late_dropped = 0
        self._late_side_output = 0
        self._late_retracted = 0
        #: Retract policy only: ``(time, sequence)`` of the last item fed
        #: to the core, the release log since the oldest snapshot, the
        #: retained ``[cursor, pickled core, log offset]`` snapshots, and
        #: the emitted-window reconciliation log.
        self._release_cursor: tuple = (float("-inf"), float("-inf"))
        self._released_log: list = []
        self._released_since_rotate = 0
        self._emitted_log: dict = {}
        if self._reorder is not None and self.late_policy == "retract":
            self._retract_snapshots: Optional[list] = [
                [
                    self._release_cursor,
                    pickle.dumps(self._core_state(), protocol=pickle.HIGHEST_PROTOCOL),
                    0,
                ]
            ]
        else:
            self._retract_snapshots = None

    # ------------------------------------------------------------------ #
    # Shared-window path
    # ------------------------------------------------------------------ #
    def _feed_shared(self, unit: _Unit, event: Event, arrival: float) -> None:
        window = unit.spec.window
        group_key = unit.spec.group_key(event)
        group = unit.shared_groups.get(group_key)
        qualifies = not self.lazy_open or event.event_type in unit.opening_types
        if group is None:
            if not qualifies:
                # The group has never seen an opening event: every window
                # covering this event is unopened, so the event is provably
                # inert — don't even build the group's engine.
                return
            assert unit.compiled is not None
            engine = MultiWindowLinearEngine(unit.compiled, self._kernel_backend)
            group = unit.shared_groups[group_key] = _SharedGroup(
                engine=engine, evicts=engine.store is not None
            )
            if self._optimizer_factory is not None:
                group.optimizer = self._optimizer_factory()
        indices = window.instance_indices_covering(event.time)
        lo, hi = indices.start, indices.stop - 1
        if hi < lo:
            return
        metas = group.metas
        if qualifies:
            opened = False
            for index in range(lo, hi + 1):
                if index not in metas:
                    end = window.instance_bounds(index)[1]
                    metas[index] = _WindowMeta(index, end, group.fed, group.share_seconds)
                    opened = True
                    self._shared_active += 1
                    if end < unit.next_close:
                        unit.next_close = end
                        if end < self._next_close:
                            self._next_close = end
            if opened:
                self._report.metrics.note_active_windows(self.active_window_count())
        if not metas:
            # No window of this group is open: the event precedes every
            # trend-start event of every instance covering it and is
            # provably inert (see the module docstring); it is skipped
            # without touching the shared engine.
            return
        if self._burst_buffering:
            # Buffer the burst; decisions (adaptive mode) and engine feeds
            # happen at flush (type change, cap, window close, or finish).
            if group.burst and (
                group.burst_type != event.event_type
                or (self.burst_size is not None and len(group.burst) >= self.burst_size)
            ):
                self._flush_group(unit, group)
            group.burst_type = event.event_type
            group.burst.append((event, lo, hi))
            group.fed += 1
            group.last_arrival = arrival
            self._engine_feeds += 1
            return
        started = time.perf_counter()
        group.engine.process(event, lo, hi)
        duration = time.perf_counter() - started
        group.fed += 1
        group.last_arrival = arrival
        group.share_seconds += duration / len(metas)
        self._engine_feeds += 1

    def _flush_group(self, unit: _Unit, group: _SharedGroup) -> None:
        """Decide and process the group's pending burst (adaptive mode).

        One consultation of the group's optimizer per eligible query class
        (classes with at least two computationally identical members whose
        template is positive for the burst type), mirroring the batch
        engine's per-burst decision; the engine's coefficient columns are
        split or merged before the buffered events are folded.
        """
        burst = group.burst
        if not burst:
            group.burst_type = None
            return
        event_type = group.burst_type
        group.burst = []
        group.burst_type = None
        engine = group.engine
        compiled = unit.compiled
        assert compiled is not None and event_type is not None
        started = time.perf_counter()
        optimizer = group.optimizer
        if optimizer is not None and event_type in compiled.positive_classes_by_type:
            engine.note_positive_burst(event_type)
            eligible = compiled.adaptive_classes_by_type.get(event_type)
            if eligible:
                # ``n`` of the cost model: events currently relevant to the
                # oldest live window of this group (deterministic counts —
                # identical across re-runs and shard layouts).
                events_in_window = group.fed - min(
                    meta.opened_fed for meta in group.metas.values()
                )
                for spec in eligible:
                    stats = engine.burst_statistics(
                        spec, event_type, len(burst), events_in_window
                    )
                    decision = optimizer.decide(stats)
                    shared = decision.shared_queries if decision.share else frozenset()
                    engine.apply_burst_decision(spec, event_type, shared, len(burst))
        # One run-level engine feed: plan resolution is hoisted to burst
        # start and the kernel backend folds the whole run (the python
        # backend with per-event reference arithmetic, the numpy backend
        # with a closed-form array op).
        engine.process_burst(burst)
        duration = time.perf_counter() - started
        group.share_seconds += duration / max(1, len(group.metas))

    def _block_code_triples(
        self,
        block: EventBlock,
        code: int,
        prepared: dict[_Unit, _BlockUnitColumns],
        states: list[_BlockUnitColumns],
        range_cache: dict[tuple[float, float], tuple[list[int], list[int]]],
    ) -> list[tuple[_Unit, Optional[_BlockUnitColumns], bool]]:
        """Resolve one type code's ``(unit, state, qualifies)`` triples.

        Built lazily on the code's first row; shared-unit states are built
        once per unit (covering ranges shared between units with the same
        window shape) and ``None`` marks a per-instance fallback unit.
        """
        units = self._units_by_type.get(block.type_table[code])
        triples: list[tuple[_Unit, Optional[_BlockUnitColumns], bool]] = []
        for unit in units or ():
            if not unit.shared:
                triples.append((unit, None, True))
                continue
            state = prepared.get(unit)
            if state is None:
                window = unit.spec.window
                cache_key = (window.size, window.slide)
                ranges = range_cache.get(cache_key)
                if ranges is None:
                    ranges = range_cache[cache_key] = window.instance_range_columns(
                        block.times, block.start, block.stop
                    )
                if self.lazy_open:
                    qualifies_by_code = [
                        event_type in unit.opening_types
                        for event_type in block.type_table
                    ]
                else:
                    qualifies_by_code = [True] * len(block.type_table)
                state = prepared[unit] = _BlockUnitColumns(
                    unit=unit,
                    group_keys=block.group_keys(unit.spec.group_by),
                    lows=ranges[0],
                    highs=ranges[1],
                    qualifies=qualifies_by_code,
                )
                states.append(state)
            triples.append((unit, state, bool(state.qualifies[code])))
        return triples

    def _flush_block_run(self, block: EventBlock, unit: _Unit, entry: list) -> None:
        """Feed one buffered ``(group, type)`` run to its shared engine.

        The engine folds the run from columns when it can
        (:meth:`MultiWindowLinearEngine.process_block_run`); runs that need
        per-event structure (store writes, local predicates, the scan slow
        path) are replayed through the per-event reference entry point with
        lazily materialized row views — exact per-event semantics.
        """
        group, code, run = entry
        positions, run_times, run_sequences, lows, highs = zip(*run)
        engine = group.engine
        compiled = unit.compiled
        event_type = block.type_table[code]
        rows = None
        if compiled is not None and not compiled.scalar:
            rows = self._block_contribution_rows(block, compiled, event_type, positions)
        started = time.perf_counter()
        folded = engine.process_block_run(
            event_type, run_times, run_sequences, lows, highs, rows
        )
        if not folded:
            for offset, local in enumerate(positions):
                engine.process(block.event_at(local), lows[offset], highs[offset])
        duration = time.perf_counter() - started
        group.share_seconds += duration / max(1, len(group.metas))

    def _block_contribution_rows(
        self,
        block: EventBlock,
        compiled: UnitCompilation,
        event_type: EventType,
        positions: Sequence[int],
    ) -> list[tuple[float, ...]]:
        """``unit.contributions(event)`` for a same-type run, from columns.

        Per measure: a foreign event type contributes 0.0, ``COUNT``-style
        measures (no attribute) contribute 1.0, and attribute measures read
        the block's cached payload column — the same values
        :meth:`Measure.contribution` computes per event.
        """
        count = len(positions)
        columns: list[list[float]] = []
        for measure in compiled.measures:
            if measure.event_type != event_type:
                columns.append([0.0] * count)
            elif measure.attribute is None:
                columns.append([1.0] * count)
            else:
                source = block.payload_column(measure.attribute)
                columns.append([float(source[local]) for local in positions])
        return list(zip(*columns))

    def _close_shared_window(
        self, unit: _Unit, group_key: tuple, group: _SharedGroup, meta: _WindowMeta
    ) -> None:
        self._shared_active -= 1  # callers pop the meta before closing
        self._windows_closed += 1
        engine = group.engine
        started = time.perf_counter()
        results = engine.close_window(meta.index)
        if group.evicts:
            engine.evict_to(next(iter(group.metas), None))
        if not group.metas:
            # The group's last window closed: evict the group itself so
            # shared-path memory tracks *live* state, not every group key
            # ever seen.  A returning key rebuilds its engine from the
            # unit's shared compilation (cheap — state only).  The group's
            # decision statistics outlive it in the run accumulator.
            if group.optimizer is not None and self._adaptive_stats is not None:
                self._adaptive_stats.merge(group.optimizer.statistics)
            del unit.shared_groups[group_key]
        now = time.perf_counter()
        events = group.fed - meta.opened_fed
        seconds = (group.share_seconds - meta.share_at_open) + (now - started)
        latency = now - group.last_arrival if events else 0.0
        operations = engine.operations()
        ops_delta = operations - group.ops_reported
        group.ops_reported = operations
        window_start, window_end = unit.window.instance_bounds(meta.index)
        metrics = self._report.metrics
        metrics.record_partition(
            seconds=seconds,
            events=events,
            memory_units=engine.memory_units(),
            operations=ops_delta,
        )
        metrics.record_emission(latency)
        # ``results`` is a fresh dict per close; the report owns it, and the
        # callback (which may mutate what it is handed) gets its own copy.
        self._report.partition_results.append(
            PartitionResult(
                group_key=group_key,
                window_index=meta.index,
                window_start=window_start,
                results=results,
                seconds=seconds,
                events=events,
            )
        )
        totals = self._report.totals
        for name, value in results.items():
            if value != 0.0:  # adding exact zero is a no-op; skip the fold
                totals[name] = totals.get(name, 0.0) + value
        if self.on_window is not None:
            self._emit_window(
                WindowResult(
                    group_key=group_key,
                    window_index=meta.index,
                    window_start=window_start,
                    window_end=window_end,
                    results=dict(results),
                    events=events,
                    emission_latency=latency,
                )
            )

    # ------------------------------------------------------------------ #
    # Per-instance path (semantics reference and fallback)
    # ------------------------------------------------------------------ #
    def _feed_unit(self, unit: _Unit, event: Event, arrival: float) -> None:
        window = unit.spec.window
        group_key = unit.spec.group_key(event)
        opens = not self.lazy_open or event.event_type in unit.opening_types
        for index in window.instance_indices_covering(event.time):
            key = (group_key, index)
            instance = unit.open.get(key)
            if instance is None:
                if not opens:
                    # No trend of any unit query can have started in this
                    # instance yet; the event is inert for it (see module
                    # docstring) and is skipped without touching an engine.
                    continue
                instance = self._open_instance(unit, key)
            started = time.perf_counter()
            instance.engine.process(event)
            instance.seconds += time.perf_counter() - started
            instance.events += 1
            instance.last_arrival = arrival
            self._engine_feeds += 1

    def _open_instance(self, unit: _Unit, key: PartitionKey) -> _Instance:
        engine = unit.pool.pop() if unit.pool else self._new_engine(unit)
        started = time.perf_counter()
        engine.start(unit.queries)
        end = unit.window.instance_bounds(key[1])[1]
        instance = _Instance(key=key, end=end, engine=engine, seconds=time.perf_counter() - started)
        unit.open[key] = instance
        if end < unit.next_close:
            unit.next_close = end
            if end < self._next_close:
                self._next_close = end
        self._report.metrics.note_active_windows(self.active_window_count())
        return instance

    def _new_engine(self, unit: _Unit) -> TrendAggregationEngine:
        engine = self.engine_factory() if unit.linear else GretaEngine()
        self._engines.append(engine)
        return engine

    # ------------------------------------------------------------------ #
    # Window close sweeps
    # ------------------------------------------------------------------ #
    def _close_passed_windows(self, now: float) -> None:
        # Peak memory is the state held *concurrently*; sample the combined
        # open footprint at its local high-water mark — just before a batch
        # of windows is evicted (and again before the final flush).
        self._report.metrics.note_memory_units(self._open_memory_units())
        self._next_close = float("inf")
        for unit in self._units:
            if now >= unit.next_close:
                if unit.shared:
                    self._sweep_unit_shared(unit, now)
                else:
                    self._sweep_unit(unit, now)
            if unit.next_close < self._next_close:
                self._next_close = unit.next_close

    def _sweep_unit(self, unit: _Unit, now: float) -> None:
        expired = [instance for instance in unit.open.values() if instance.end <= now]
        expired.sort(key=lambda instance: (instance.end, group_sort_key(instance.key[0])))
        for instance in expired:
            del unit.open[instance.key]
            self._close_instance(unit, instance)
        unit.next_close = min(
            (instance.end for instance in unit.open.values()), default=float("inf")
        )

    def _sweep_unit_shared(self, unit: _Unit, now: float) -> None:
        expired = []
        for group_key, group in unit.shared_groups.items():
            if (
                group.burst
                and group.metas
                and next(iter(group.metas.values())).end <= now
            ):
                # A window of this group is about to be read out: fold the
                # pending burst first — its events precede the close.
                self._flush_group(unit, group)
            for meta in group.metas.values():  # ascending index == ascending end
                if meta.end <= now:
                    expired.append((meta.end, group_key, meta.index))
                else:
                    break
        expired.sort(key=lambda item: (item[0], group_sort_key(item[1]), item[2]))
        for _, group_key, index in expired:
            group = unit.shared_groups[group_key]
            self._close_shared_window(unit, group_key, group, group.metas.pop(index))
        unit.next_close = min(
            (
                next(iter(group.metas.values())).end
                for group in unit.shared_groups.values()
                if group.metas
            ),
            default=float("inf"),
        )

    def _close_instance(self, unit: _Unit, instance: _Instance) -> None:
        self._windows_closed += 1
        engine = instance.engine
        started = time.perf_counter()
        results = engine.results()
        now = time.perf_counter()
        seconds = instance.seconds + (now - started)
        latency = now - instance.last_arrival if instance.events else 0.0
        group_key, window_index = instance.key
        window_start, window_end = unit.window.instance_bounds(window_index)
        metrics = self._report.metrics
        metrics.record_partition(
            seconds=seconds,
            events=instance.events,
            memory_units=engine.memory_units(),
            operations=engine.operations(),
        )
        metrics.record_emission(latency)
        self._report.partition_results.append(
            PartitionResult(
                group_key=group_key,
                window_index=window_index,
                window_start=window_start,
                results=dict(results),
                seconds=seconds,
                events=instance.events,
            )
        )
        for name, value in results.items():
            self._report.totals[name] = self._report.totals.get(name, 0.0) + value
        engine.close()
        unit.pool.append(engine)
        if self.on_window is not None:
            self._emit_window(
                WindowResult(
                    group_key=group_key,
                    window_index=window_index,
                    window_start=window_start,
                    window_end=window_end,
                    results=dict(results),
                    events=instance.events,
                    emission_latency=latency,
                )
            )

    def _open_memory_units(self) -> int:
        """Combined footprint of the live state, counted once.

        Shared-window engines hold each event and coefficient exactly once,
        so their footprints sum directly.  On the per-instance path the
        engines of overlapping instances of the same ``(unit, group)`` pair
        duplicate the shared suffix of events; summing them would multiply
        identical state by the overlap factor (the PR 2 over-counting), so
        the sample takes the *largest* instance per ``(unit, group)`` — the
        oldest open window, whose state subsumes its younger overlaps.
        """
        units = 0
        for unit in self._units:
            if unit.shared:
                # A pending adaptive burst is live state too (one unit per
                # buffered event, like the engines' stored events); sampling
                # happens just before close sweeps — the buffer's high-water
                # mark — so the cross-plan memory comparison stays honest.
                units += sum(
                    group.engine.memory_units() + len(group.burst)
                    for group in unit.shared_groups.values()
                )
            else:
                largest: dict[tuple, int] = {}
                for instance in unit.open.values():
                    group_key = instance.key[0]
                    footprint = instance.engine.memory_units()
                    if footprint > largest.get(group_key, -1):
                        largest[group_key] = footprint
                units += sum(largest.values())
        return units

    def _attach_optimizer_statistics(self, report: ExecutionReport) -> None:
        merged: Optional[OptimizerStatistics] = None
        if self._adaptive_stats is not None:
            # Adaptive shared-window decisions: evicted groups were folded
            # at eviction; groups that never opened a window still hold
            # their (empty) counters.  Attach even when zero decisions were
            # made so callers can tell "adaptive, nothing eligible" from
            # "not adaptive".
            merged = OptimizerStatistics()
            merged.merge(self._adaptive_stats)
            for unit in self._units:
                for group in unit.shared_groups.values():
                    if group.optimizer is not None:
                        merged.merge(group.optimizer.statistics)
        for engine in self._engines:
            optimizer = getattr(engine, "optimizer", None)
            if optimizer is None:
                continue
            if merged is None:
                merged = OptimizerStatistics()
            merged.merge(optimizer.statistics)
        if merged is not None:
            report.optimizer_statistics = merged


def run_streaming(
    workload: Workload | Sequence[Query],
    stream: EventStream | EventBlock | Iterable[Event],
    engine_factory: EngineFactory = HamletEngine,
    *,
    on_window: Optional[Callable[[WindowResult], None]] = None,
    lazy_open: bool = True,
    shared_windows: bool = True,
    optimizer: OptimizerSpec = None,
    burst_size: Optional[int] = None,
    kernel_backend: KernelBackendSpec = None,
    allowed_lateness: Optional[float] = None,
    late_policy: str = "raise",
    on_late: Optional[Callable[[Event], None]] = None,
) -> ExecutionReport:
    """One-shot convenience wrapper around :class:`StreamingExecutor`."""
    executor = StreamingExecutor(
        workload,
        engine_factory,
        on_window=on_window,
        lazy_open=lazy_open,
        shared_windows=shared_windows,
        optimizer=optimizer,
        burst_size=burst_size,
        kernel_backend=kernel_backend,
        allowed_lateness=allowed_lateness,
        late_policy=late_policy,
        on_late=on_late,
    )
    return executor.run(stream)
