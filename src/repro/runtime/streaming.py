"""Single-pass streaming workload executor.

The batch :class:`~repro.runtime.executor.WorkloadExecutor` materializes the
whole stream, duplicates every event into each overlapping window partition
and replays each partition from scratch — correct, and kept as the semantics
reference, but its latency, memory and throughput are artifacts of replay.
This module is the online counterpart:

* events are consumed **in timestamp order exactly once**;
* an active-window index per ``(group key, window instance)`` feeds each
  event incrementally to the engines of the window instances covering it —
  at most ``ceil(size/slide)`` per event;
* the moment the stream passes a window's end, its result is emitted through
  a callback as a :class:`WindowResult` and the instance's engine state is
  **evicted**, so peak memory is bounded by the number of *active* window
  instances instead of the stream length;
* closed-instance engines return to a per-unit pool: restarting a pooled
  engine reuses its compiled templates and sharing analysis (see
  ``TrendAggregationEngine.close``).

Lazy opening (on by default) is the streaming-only throughput lever: a
window instance is not opened — and events covering it are not fed to any
engine — until the first event whose type can *start* a trend of one of the
unit's queries arrives inside the instance.  Events preceding every
trend-start event are provably inert: a trend is a time-ordered match
beginning with a start-type event, negation constraints only invalidate
edges between stored positive events, and leading ``NOT`` carries no
constraint, so no engine's result can depend on the skipped prefix.  The
randomized equivalence suite asserts bit-identical totals against the batch
replay across engines and sharing policies.

The executor is incremental: ``process(event)`` / ``finish()`` drive it from
a live source, ``run(stream)`` wraps them for replay-style use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core.engine import HamletEngine
from repro.errors import ExecutionError
from repro.events.event import Event, EventType
from repro.events.stream import EventStream
from repro.greta.engine import GretaEngine
from repro.interfaces import TrendAggregationEngine
from repro.optimizer.decisions import OptimizerStatistics
from repro.query.query import Query
from repro.query.windows import Window
from repro.query.workload import Workload
from repro.runtime.executor import (
    EngineFactory,
    ExecutionReport,
    PartitionResult,
    execution_units,
    recombine_decompositions,
    resolve_engine_label,
    unit_is_linear,
    unit_relevant_types,
)
from repro.runtime.partitioner import PartitionKey, PartitionSpec
from repro.template.analysis import analyze_workload
from repro.template.template import compile_pattern


@dataclass(frozen=True)
class WindowResult:
    """One closed window instance, emitted the moment the stream passes it."""

    group_key: tuple
    #: Integer window-instance index (instance spans ``[k*slide, k*slide+size)``).
    window_index: int
    window_start: float
    window_end: float
    #: Final aggregate per query of the instance's execution unit.
    results: Mapping[str, float]
    #: Events fed to this instance's engine.
    events: int
    #: Wall-clock seconds from the arrival of the instance's last contributing
    #: event to the emission of this result.
    emission_latency: float


@dataclass
class _Instance:
    """Runtime state of one open ``(group key, window instance)``."""

    key: PartitionKey
    end: float
    engine: TrendAggregationEngine
    events: int = 0
    seconds: float = 0.0
    #: ``time.perf_counter()`` at the arrival of the last fed event.
    last_arrival: float = 0.0


@dataclass
class _Unit:
    """One execution unit: queries sharing a partition set, plus its engines."""

    queries: tuple[Query, ...]
    spec: PartitionSpec
    relevant_types: frozenset[EventType]
    #: Types that can start a trend of at least one unit query (lazy-open gate).
    opening_types: frozenset[EventType]
    linear: bool
    open: dict[PartitionKey, _Instance] = field(default_factory=dict)
    pool: list[TrendAggregationEngine] = field(default_factory=list)
    #: Earliest end among open instances (``inf`` when none are open).
    next_close: float = float("inf")

    @property
    def window(self) -> Window:
        return self.spec.window


class StreamingExecutor:
    """Single-pass, bounded-memory evaluation of a trend aggregation workload."""

    def __init__(
        self,
        workload: Workload | Sequence[Query],
        engine_factory: EngineFactory = HamletEngine,
        *,
        on_window: Optional[Callable[[WindowResult], None]] = None,
        lazy_open: bool = True,
    ) -> None:
        """Create a streaming executor.

        Args:
            workload: The queries to evaluate.
            engine_factory: Zero-argument callable returning the engine used
                for linear-aggregate query units (default: HAMLET).  MIN/MAX
                units run on GRETA, as in the batch executor.
            on_window: Callback invoked with every :class:`WindowResult` the
                moment its window closes, in emission order.
            lazy_open: Open a window instance only when a trend-start-type
                event arrives inside it (skips provably inert prefixes).
                Disable to mirror the batch executor's instance set exactly.
        """
        self.workload = workload if isinstance(workload, Workload) else Workload(workload)
        self.workload.validate()
        self.engine_factory = engine_factory
        self.on_window = on_window
        self.lazy_open = lazy_open
        self.analysis = analyze_workload(self.workload)
        self._engine_label, prebuilt = resolve_engine_label(engine_factory)
        self._units: list[_Unit] = []
        for group in self.analysis.groups:
            for queries in execution_units(group.queries):
                self._units.append(self._build_unit(queries))
        if prebuilt is not None and self._units:
            first_linear = next((unit for unit in self._units if unit.linear), None)
            if first_linear is not None:
                first_linear.pool.append(prebuilt)
        self._engines: list[TrendAggregationEngine] = [] if prebuilt is None else [prebuilt]
        self._begin_run()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def run(
        self,
        stream: EventStream | Iterable[Event],
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> ExecutionReport:
        """Consume ``stream`` in one pass and return the final report.

        ``start`` / ``end`` replay only the half-open time slice
        ``[start, end)`` of a recorded :class:`EventStream`; the slice is cut
        with the stream's cached timestamp array (binary search, no scan).
        """
        self._begin_run()
        if start is not None or end is not None:
            if not isinstance(stream, EventStream):
                stream = EventStream(stream)
            stream = stream.between(
                start if start is not None else 0.0,
                end if end is not None else float("inf"),
            )
        for event in stream:
            self.process(event)
        return self.finish()

    def process(self, event: Event) -> None:
        """Ingest one event, feeding engines and emitting closed windows."""
        if event.time < self._clock:
            raise ExecutionError(
                f"streaming executor requires in-order arrival: event at "
                f"{event.time} after stream time {self._clock}"
            )
        self._clock = event.time
        self._consumed += 1
        if event.time >= self._next_close:
            self._close_passed_windows(event.time)
        arrival = time.perf_counter()
        for unit in self._units:
            if event.event_type not in unit.relevant_types:
                continue
            self._feed_unit(unit, event, arrival)

    def finish(self) -> ExecutionReport:
        """Close every remaining window and return the report."""
        self._report.metrics.note_memory_units(self._open_memory_units())
        for unit in self._units:
            # Sorted for a deterministic emission order of the final flush.
            for key in sorted(unit.open, key=lambda item: (item[1], repr(item[0]))):
                self._close_instance(unit, unit.open.pop(key))
            unit.next_close = float("inf")
        self._next_close = float("inf")
        report = self._report
        report.metrics.stream_events = self._consumed
        if self._consumed:
            for unit in self._units:
                for query in unit.queries:
                    report.totals.setdefault(query.name, 0.0)
        recombine_decompositions(
            self.analysis.decompositions, report.partition_results, report.totals
        )
        self._attach_optimizer_statistics(report)
        return report

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def active_window_count(self) -> int:
        """Number of currently open ``(group, window instance)`` states."""
        return sum(len(unit.open) for unit in self._units)

    @property
    def engines_created(self) -> int:
        """Engines built so far — bounded by peak active windows, not stream length."""
        return len(self._engines)

    @property
    def peak_active_windows(self) -> int:
        """Peak number of simultaneously open window instances this run."""
        return self._report.metrics.peak_active_windows

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _build_unit(self, queries: tuple[Query, ...]) -> _Unit:
        opening: set[EventType] = set()
        for query in queries:
            opening |= set(compile_pattern(query.pattern).start_types)
        first = queries[0]
        return _Unit(
            queries=queries,
            spec=PartitionSpec(group_by=first.group_by, window=first.window),
            relevant_types=frozenset(unit_relevant_types(queries)),
            opening_types=frozenset(opening),
            linear=unit_is_linear(queries),
        )

    def _begin_run(self) -> None:
        for unit in self._units:
            for instance in unit.open.values():
                instance.engine.close()
                unit.pool.append(instance.engine)
            unit.open.clear()
            unit.next_close = float("inf")
        # The report's optimizer statistics are per run: pooled engines
        # survive across run() calls (keeping their compiled templates), so
        # their optimizers' counters must restart with the run.
        for engine in self._engines:
            optimizer = getattr(engine, "optimizer", None)
            if optimizer is not None:
                optimizer.statistics = OptimizerStatistics()
        self._report = ExecutionReport(engine_name=self._engine_label)
        self._clock = float("-inf")
        self._consumed = 0
        self._next_close = float("inf")

    def _feed_unit(self, unit: _Unit, event: Event, arrival: float) -> None:
        window = unit.spec.window
        group_key = unit.spec.group_key(event)
        opens = not self.lazy_open or event.event_type in unit.opening_types
        for index in window.instance_indices_covering(event.time):
            key = (group_key, index)
            instance = unit.open.get(key)
            if instance is None:
                if not opens:
                    # No trend of any unit query can have started in this
                    # instance yet; the event is inert for it (see module
                    # docstring) and is skipped without touching an engine.
                    continue
                instance = self._open_instance(unit, key)
            started = time.perf_counter()
            instance.engine.process(event)
            instance.seconds += time.perf_counter() - started
            instance.events += 1
            instance.last_arrival = arrival

    def _open_instance(self, unit: _Unit, key: PartitionKey) -> _Instance:
        engine = unit.pool.pop() if unit.pool else self._new_engine(unit)
        started = time.perf_counter()
        engine.start(unit.queries)
        end = unit.window.instance_bounds(key[1])[1]
        instance = _Instance(key=key, end=end, engine=engine, seconds=time.perf_counter() - started)
        unit.open[key] = instance
        if end < unit.next_close:
            unit.next_close = end
            if end < self._next_close:
                self._next_close = end
        self._report.metrics.note_active_windows(self.active_window_count())
        return instance

    def _new_engine(self, unit: _Unit) -> TrendAggregationEngine:
        engine = self.engine_factory() if unit.linear else GretaEngine()
        self._engines.append(engine)
        return engine

    def _close_passed_windows(self, now: float) -> None:
        # Peak memory is the state held *concurrently*; sample the combined
        # open footprint at its local high-water mark — just before a batch
        # of windows is evicted (and again before the final flush).
        self._report.metrics.note_memory_units(self._open_memory_units())
        self._next_close = float("inf")
        for unit in self._units:
            if now >= unit.next_close:
                self._sweep_unit(unit, now)
            if unit.next_close < self._next_close:
                self._next_close = unit.next_close

    def _sweep_unit(self, unit: _Unit, now: float) -> None:
        expired = [instance for instance in unit.open.values() if instance.end <= now]
        expired.sort(key=lambda instance: (instance.end, repr(instance.key[0])))
        for instance in expired:
            del unit.open[instance.key]
            self._close_instance(unit, instance)
        unit.next_close = min(
            (instance.end for instance in unit.open.values()), default=float("inf")
        )

    def _close_instance(self, unit: _Unit, instance: _Instance) -> None:
        engine = instance.engine
        started = time.perf_counter()
        results = engine.results()
        now = time.perf_counter()
        seconds = instance.seconds + (now - started)
        latency = now - instance.last_arrival if instance.events else 0.0
        group_key, window_index = instance.key
        window_start, window_end = unit.window.instance_bounds(window_index)
        metrics = self._report.metrics
        metrics.record_partition(
            seconds=seconds,
            events=instance.events,
            memory_units=engine.memory_units(),
            operations=engine.operations(),
        )
        metrics.record_emission(latency)
        self._report.partition_results.append(
            PartitionResult(
                group_key=group_key,
                window_index=window_index,
                window_start=window_start,
                results=dict(results),
                seconds=seconds,
                events=instance.events,
            )
        )
        for name, value in results.items():
            self._report.totals[name] = self._report.totals.get(name, 0.0) + value
        engine.close()
        unit.pool.append(engine)
        if self.on_window is not None:
            self.on_window(
                WindowResult(
                    group_key=group_key,
                    window_index=window_index,
                    window_start=window_start,
                    window_end=window_end,
                    results=dict(results),
                    events=instance.events,
                    emission_latency=latency,
                )
            )

    def _open_memory_units(self) -> int:
        """Combined footprint of every currently open window instance."""
        return sum(
            instance.engine.memory_units()
            for unit in self._units
            for instance in unit.open.values()
        )

    def _attach_optimizer_statistics(self, report: ExecutionReport) -> None:
        merged: Optional[OptimizerStatistics] = None
        for engine in self._engines:
            optimizer = getattr(engine, "optimizer", None)
            if optimizer is None:
                continue
            if merged is None:
                merged = OptimizerStatistics()
            merged.merge(optimizer.statistics)
        if merged is not None:
            report.optimizer_statistics = merged


def run_streaming(
    workload: Workload | Sequence[Query],
    stream: EventStream | Iterable[Event],
    engine_factory: EngineFactory = HamletEngine,
    *,
    on_window: Optional[Callable[[WindowResult], None]] = None,
    lazy_open: bool = True,
) -> ExecutionReport:
    """One-shot convenience wrapper around :class:`StreamingExecutor`."""
    executor = StreamingExecutor(
        workload, engine_factory, on_window=on_window, lazy_open=lazy_open
    )
    return executor.run(stream)
