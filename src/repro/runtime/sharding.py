"""Sharded streaming execution: a router / worker split over the runtime.

HAMLET partitions the stream by grouping attributes before anything else
(Section 3.1), and ``(group key, window instance)`` partitions are
independent by construction.  The single-process
:class:`~repro.runtime.streaming.StreamingExecutor` nevertheless evaluates
every partition on one core.  This module turns the partition independence
into parallelism:

* a :class:`ShardRouter` splits the workload into *shards* and maps every
  event to the shard(s) that must see it.  When the workload has GROUP BY
  (every query groups by the same attributes), events are **hash-routed by
  group key** — a process-stable hash, so routing is deterministic across
  runs and machines.  Without GROUP BY there is only one group per window
  and the stream cannot be split by key, so the router falls back to
  **sharding by execution unit**: each shard owns a subset of the query
  clusters and sees exactly the events relevant to them.  Both placements
  keep every ``(group, window instance)`` partition wholly inside one
  shard, so the shared-window engines work unchanged per shard and no
  cross-shard coordination is ever needed;
* a :class:`ShardedStreamingExecutor` drives one
  :class:`~repro.runtime.streaming.StreamingExecutor` per shard — unmodified;
  anything satisfying :class:`~repro.interfaces.StreamProcessor` would do —
  either in-process (``workers=0``, the testable-without-fork mode) or in a
  ``multiprocessing`` pool.  Events cross process boundaries in batches —
  as pickled :class:`~repro.events.batch.EventBatch` chunks
  (``transport="pickle"``) or as columnar buffers in reusable
  shared-memory slabs with only ``(slab, length)`` references on the wire
  (``transport="shm"``; see :mod:`repro.runtime.transport`) — the
  per-shard input queues are bounded (``max_inflight`` batches) so a slow
  shard back-pressures the router instead of buffering the stream, and the
  per-shard reports are merged **deterministically**: partition results are
  ordered by ``(window end, execution unit, group key)`` using the same
  :func:`~repro.runtime.partitioner.group_sort_key` total order as the
  single-process paths, metrics fold through
  :meth:`~repro.runtime.metrics.ExecutionMetrics.merge`, and OR/AND
  decompositions are recombined over the merged partitions — so totals are
  identical whatever the shard count.

Worker failures propagate: a shard that raises ships its traceback back to
the driver (which shuts the pool down and re-raises as
:class:`~repro.errors.ExecutionError`), and a shard that dies without a
report (crash, ``os._exit``) is detected by liveness checks instead of
deadlocking the router.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
import traceback
from dataclasses import dataclass
from queue import Empty, Full
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core.engine import HamletEngine
from repro.core.kernels import KernelBackendSpec, resolve_kernel_backend
from repro.errors import ExecutionError
from repro.events import columnar
from repro.events.batch import EventBatch
from repro.events.event import Event, EventType
from repro.events.stream import EventStream, slice_stream
from repro.optimizer.decisions import OptimizerStatistics
from repro.optimizer.registry import OptimizerSpec, resolve_optimizer_factory
from repro.query.query import Query
from repro.query.windows import Window
from repro.query.workload import Workload
from repro.runtime.executor import (
    EngineFactory,
    ExecutionReport,
    PartitionResult,
    execution_units,
    recombine_decompositions,
    unit_relevant_types,
)
from repro.runtime.partitioner import group_sort_key
from repro.runtime.streaming import StreamingExecutor, WindowResult
from repro.runtime.transport import (
    DEFAULT_SLAB_BYTES,
    SlabReader,
    SlabRing,
    ring_slots,
    validate_transport,
)
from repro.template.analysis import analyze_workload

__all__ = [
    "ShardReport",
    "ShardRouter",
    "ShardedStreamingExecutor",
    "run_sharded",
    "stable_shard_hash",
]

#: Seconds a queue operation waits before re-checking worker liveness.
_POLL_SECONDS = 0.25
#: Grace period granted to a dead worker's last report to surface in the
#: result queue (the feeder thread may still be flushing) before the driver
#: declares the worker crashed.
_CRASH_GRACE_SECONDS = 3.0
#: Cap on the router's group-key -> shard memo.  The hash is cheap; the
#: memo only skips repr+BLAKE2b for hot keys, and a high-cardinality
#: GROUP BY (per-user/per-ride keys seen once) must not grow driver memory
#: without bound while every other layer evicts dead groups.
_SHARD_MEMO_LIMIT = 65536


def _canonical_key_element(value) -> tuple:
    """Collapse a group-key element to its partition-equality form.

    Partitions are dicts keyed by group tuples, so ``4``, ``4.0`` and
    ``True == 1`` land in **one** partition — the shard hash must not tell
    them apart (``repr`` would, and a partition would straddle shards).
    Numbers canonicalize through ``as_integer_ratio`` (exact, equal for
    equal values across int/float/bool, no 2**53 truncation); every branch
    carries a type tag so e.g. the string ``"None"`` cannot collide with
    ``None``.

    Sibling of :func:`repro.runtime.partitioner._value_sort_key`, which
    answers the *ordering* question for the same key population (this one
    answers equality collapse for hashing); a new group-key value type
    should be considered for both.
    """
    if isinstance(value, str):
        return ("s", value)
    if value is None:
        return ("0",)
    if isinstance(value, tuple):
        return ("t",) + tuple(_canonical_key_element(element) for element in value)
    if isinstance(value, complex):
        # complex(4) == 4 as a dict key; reduce real-valued complex numbers
        # to their real part so they canonicalize with int/float/Decimal.
        if value.imag == 0:
            return _canonical_key_element(value.real)
        return ("c", repr(value))
    ratio = getattr(value, "as_integer_ratio", None)  # int, float, bool,
    if ratio is not None:  # Decimal, Fraction, ...
        try:
            return ("n",) + tuple(ratio())
        except (ValueError, OverflowError):  # nan / inf
            try:
                return ("n", repr(float(value)))
            except (ValueError, OverflowError):  # e.g. Decimal('sNaN')
                return ("n", repr(value))
    return ("r", repr(value))


def stable_shard_hash(group_key: tuple) -> int:
    """A deterministic, process-stable hash of a group key.

    Python's built-in ``hash`` is randomized per process for strings
    (``PYTHONHASHSEED``), which would route the same group to different
    shards in the driver and in tests.  Keys are first canonicalized so
    values that compare equal as partition-dict keys (``4`` vs ``4.0`` vs
    ``True``) hash identically; the canonical form's ``repr`` is
    deterministic, and BLAKE2b mixes it well even for the short,
    near-identical reprs of small numeric keys — where a plain CRC-32
    modulo the shard count degenerates to one shard.
    """
    canonical = tuple(_canonical_key_element(element) for element in group_key)
    digest = hashlib.blake2b(repr(canonical).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class _ShardPlan:
    """The routing decision: mode plus per-shard query placement."""

    #: ``"group"`` (hash on group key) or ``"unit"`` (by execution unit).
    mode: str
    #: Queries evaluated by each shard, in workload order.  Group mode gives
    #: every shard the full workload (events select the shard); unit mode
    #: partitions the query clusters across shards.
    shard_queries: tuple[tuple[Query, ...], ...]
    #: The common grouping attributes (group mode; empty in unit mode).
    group_by: tuple[str, ...]
    #: Event types at least one query references (router drop-filter).
    relevant_types: frozenset[EventType]
    #: Unit mode: event type -> shards whose queries reference it.
    type_routes: Mapping[EventType, tuple[int, ...]]

    @property
    def shards(self) -> int:
        return len(self.shard_queries)


class ShardRouter:
    """Maps each event of a workload's stream to its shard(s).

    The routing invariant — *no ``(group, window instance)`` partition ever
    straddles shards* — holds in both modes:

    * **group mode**: a partition's events all carry the same group key,
      and the shard is a pure function of that key;
    * **unit mode**: a partition belongs to one execution unit, and every
      event relevant to a unit is routed to the (single) shard owning it.

    Unit mode clusters *original* queries (pre-decomposition) transitively:
    queries that share an execution unit — or are sub-queries of the same
    OR/AND decomposition — stay on one shard, so per-shard engines keep
    every sharing opportunity the single-process runtime has.
    """

    def __init__(
        self,
        workload: Workload | Sequence[Query],
        shards: int,
        *,
        routing: str = "auto",
    ) -> None:
        if shards < 1:
            raise ExecutionError(f"shard count must be >= 1, got {shards}")
        if routing not in ("auto", "group", "unit"):
            raise ExecutionError(
                f"routing must be 'auto', 'group' or 'unit', got {routing!r}"
            )
        self.workload = workload if isinstance(workload, Workload) else Workload(workload)
        self.workload.validate()
        self.analysis = analyze_workload(self.workload)
        queries = tuple(self.workload.queries)
        group_bys = {query.group_by for query in queries}
        groupable = len(group_bys) == 1 and next(iter(group_bys)) != ()
        if routing == "group" and not groupable:
            raise ExecutionError(
                "group routing requires every query to share one non-empty "
                "GROUP BY clause; this workload does not (use routing='unit')"
            )
        mode = routing if routing != "auto" else ("group" if groupable else "unit")
        if mode == "group":
            self.plan = self._plan_group(queries, shards)
        else:
            self.plan = self._plan_unit(queries, shards)
        #: Group-key -> shard memo: the shard is a pure function of a small,
        #: heavily-repeated key set, so the hot path pays one dict lookup
        #: instead of repr + BLAKE2b per event.  Dict key equality also
        #: matches partition equality (``4`` and ``4.0`` share an entry),
        #: mirroring the canonicalized hash.
        self._shard_of_key: dict[tuple, int] = {}

    # ------------------------------------------------------------------ #
    # Plan construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _relevant_types(queries: Sequence[Query]) -> frozenset[EventType]:
        # Shared with the executors: the router's drop-filter must agree
        # exactly with what shard workers' units consume.
        return frozenset(unit_relevant_types(queries))

    def _plan_group(self, queries: tuple[Query, ...], shards: int) -> _ShardPlan:
        return _ShardPlan(
            mode="group",
            shard_queries=(queries,) * shards,
            group_by=queries[0].group_by,
            relevant_types=self._relevant_types(queries),
            type_routes={},
        )

    def _plan_unit(self, queries: tuple[Query, ...], shards: int) -> _ShardPlan:
        # Union-find over original query names: queries whose (possibly
        # decomposed) sub-queries share an execution unit must co-locate.
        parent = {query.name: query.name for query in queries}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(first: str, second: str) -> None:
            parent[find(second)] = find(first)

        original_of = {
            sub.name: original_name
            for original_name, decomposition in self.analysis.decompositions.items()
            for sub in decomposition.sub_queries
        }
        for group in self.analysis.groups:
            for unit in execution_units(group.queries):
                names = [original_of.get(query.name, query.name) for query in unit]
                for name in names[1:]:
                    union(names[0], name)
        # Clusters in workload order (first member's position), assigned
        # round-robin — deterministic, and balanced when clusters are even.
        clusters: dict[str, list[Query]] = {}
        for query in queries:
            clusters.setdefault(find(query.name), []).append(query)
        cluster_list = list(clusters.values())
        shard_count = min(shards, len(cluster_list))
        shard_queries: list[list[Query]] = [[] for _ in range(shard_count)]
        for index, cluster in enumerate(cluster_list):
            shard_queries[index % shard_count].extend(cluster)
        type_routes: dict[EventType, list[int]] = {}
        for shard_id, shard in enumerate(shard_queries):
            for event_type in self._relevant_types(shard):
                type_routes.setdefault(event_type, []).append(shard_id)
        return _ShardPlan(
            mode="unit",
            shard_queries=tuple(tuple(shard) for shard in shard_queries),
            group_by=(),
            relevant_types=self._relevant_types(queries),
            type_routes={
                event_type: tuple(shard_ids)
                for event_type, shard_ids in type_routes.items()
            },
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @property
    def mode(self) -> str:
        """The selected routing mode (``"group"`` or ``"unit"``)."""
        return self.plan.mode

    @property
    def shards(self) -> int:
        """Effective shard count (unit mode never exceeds the cluster count)."""
        return self.plan.shards

    def shard_queries(self, shard_id: int) -> tuple[Query, ...]:
        """The queries shard ``shard_id`` evaluates."""
        return self.plan.shard_queries[shard_id]

    def route(self, event: Event) -> tuple[int, ...]:
        """Shard ids that must see ``event`` (empty: no query cares)."""
        if event.event_type not in self.plan.relevant_types:
            return ()
        if self.plan.mode == "group":
            key = tuple(event.get(attribute) for attribute in self.plan.group_by)
            shard = self._shard_of_key.get(key)
            if shard is None:
                shard = stable_shard_hash(key) % self.plan.shards
                if len(self._shard_of_key) < _SHARD_MEMO_LIMIT:
                    self._shard_of_key[key] = shard
            return (shard,)
        return self.plan.type_routes.get(event.event_type, ())


@dataclass
class ShardReport:
    """One shard's contribution to a sharded run."""

    shard_id: int
    #: Distinct stream events the router sent to this shard.  The single
    #: in-process shard (``workers=0``, one shard) is fed the stream
    #: unfiltered — the shard's own per-type dispatch does the dropping —
    #: so there this counts every consumed event, not just relevant ones.
    events: int
    #: Event batches shipped across the process boundary (0 in-process).
    batches: int
    #: The shard worker's own :class:`ExecutionReport`.
    report: ExecutionReport


def _shard_worker_main(
    shard_id: int,
    queries: tuple[Query, ...],
    engine_factory: EngineFactory,
    lazy_open: bool,
    shared_windows: bool,
    optimizer: OptimizerSpec,
    burst_size: Optional[int],
    kernel_backend: KernelBackendSpec,
    channel: Optional[tuple[str, int, object]],
    in_queue,
    out_queue,
) -> None:
    """Entry point of one shard worker process.

    Drives an unmodified :class:`StreamingExecutor` over the batches the
    router ships until the ``None`` sentinel arrives, then returns the
    shard's report.  The adaptive-sharing policy and kernel backend cross
    the process boundary as their specs (typically names); each shard
    resolves its own optimizer instances, whose decision counts are
    shard-placement invariant because bursts are segmented per ``(group,
    unit)`` stream and every such stream lives wholly inside one shard.

    ``channel`` selects the transport: ``None`` means pickle (queue items
    are :class:`EventBatch` objects); a ``(segment name, slab bytes, ack
    pipe)`` triple means shared memory — queue items are ``("slab", index,
    nbytes)`` references into the ring (acked back after decoding) or
    ``("raw", payload)`` framed-bytes fallbacks.  Any failure is shipped
    back as a formatted traceback — the driver re-raises it — rather than
    dying silently.
    """
    reader: Optional[SlabReader] = None
    try:
        executor = StreamingExecutor(
            list(queries),
            engine_factory,
            lazy_open=lazy_open,
            shared_windows=shared_windows,
            optimizer=optimizer,
            burst_size=burst_size,
            kernel_backend=kernel_backend,
        )
        process = executor.process
        if channel is not None:
            segment_name, slab_bytes, ack_send = channel
            reader = SlabReader(segment_name, slab_bytes, ack_send)
            while True:
                message = in_queue.get()
                if message is None:
                    break
                if message[0] == "slab":
                    _, slab, nbytes = message
                    view = reader.view(slab, nbytes)
                    try:
                        # Decoding copies every column out of the mapped
                        # slab, so the slab is recyclable the moment
                        # decode returns — ack before processing.
                        events = columnar.decode_events(view)
                    finally:
                        view.release()
                    reader.ack(slab)
                else:
                    events = columnar.decode_events(message[1])
                for event in events:
                    process(event)
        else:
            while True:
                batch = in_queue.get()
                if batch is None:
                    break
                for event in batch:
                    process(event)
        out_queue.put((shard_id, "ok", executor.finish()))
    except BaseException:
        out_queue.put((shard_id, "error", traceback.format_exc()))
    finally:
        if reader is not None:
            reader.close()


class ShardedStreamingExecutor:
    """Multi-process (or in-process) sharded single-pass execution.

    The driver satisfies :class:`~repro.interfaces.StreamProcessor` itself
    (``process`` / ``finish``), so it is a drop-in replacement for a
    :class:`StreamingExecutor` wherever one is fed incrementally.

    Args:
        workload: The queries to evaluate.
        engine_factory: Engine factory for linear units (default HAMLET).
            With ``workers > 0`` it crosses a process boundary: under the
            ``fork`` start method (Linux) any callable works; under
            ``spawn`` it must be picklable.
        workers: Shard worker *processes*.  ``0`` runs every shard executor
            inside the driver process — same router, same merge, no fork
            semantics — which is also the mode that keeps ``on_window``
            callbacks possible.  ``workers >= 1`` spawns one process per
            shard.
        shards: Router fan-out for ``workers=0`` (defaults to 1).  With
            ``workers > 0`` the shard count *is* the worker count.
        routing: ``"auto"`` (group hash when the workload has a common
            GROUP BY, else by execution unit), ``"group"`` or ``"unit"``.
        batch_size: Events per :class:`EventBatch` shipped to a worker.
        max_inflight: Bound on undelivered batches per shard; a full queue
            back-pressures :meth:`process` instead of buffering the stream.
        lazy_open / shared_windows: Forwarded to every shard's
            :class:`StreamingExecutor`.
        optimizer / burst_size: Adaptive per-burst sharing policy and burst
            cap, forwarded to every shard's :class:`StreamingExecutor`.
            Each shard resolves its own optimizer instances; the driver
            merges the per-shard
            :class:`~repro.optimizer.decisions.OptimizerStatistics` in
            shard order, and the merged decision counts are invariant in
            the shard count because bursts are per ``(group, unit)`` stream
            and each such stream lives wholly inside one shard.
        kernel_backend: Burst-fold kernel backend spec, forwarded to every
            shard's :class:`StreamingExecutor` (same registry-name pattern
            as ``optimizer``; see
            :func:`~repro.core.kernels.resolve_kernel_backend`).
        transport: How batches cross the process boundary with
            ``workers > 0``: ``"pickle"`` ships :class:`EventBatch` blobs
            through the queues; ``"shm"`` writes columnar-encoded batches
            into a per-worker ring of reusable shared-memory slabs and
            ships only ``(slab index, length)`` references (see
            :mod:`repro.runtime.transport`).  Accepted-and-inert with
            ``workers=0`` — there is no process boundary to cross — so
            callers can sweep transports across worker counts uniformly.
        slab_bytes: Slab payload capacity for the shm transport; batches
            that encode larger fall back to the queue.
        on_window: Per-window callback; only available with ``workers=0``
            (results cross process boundaries only at :meth:`finish`).
    """

    def __init__(
        self,
        workload: Workload | Sequence[Query],
        engine_factory: EngineFactory = HamletEngine,
        *,
        workers: int = 0,
        shards: Optional[int] = None,
        routing: str = "auto",
        batch_size: int = 512,
        max_inflight: int = 8,
        lazy_open: bool = True,
        shared_windows: bool = True,
        optimizer: OptimizerSpec = None,
        burst_size: Optional[int] = None,
        kernel_backend: KernelBackendSpec = None,
        transport: str = "pickle",
        slab_bytes: int = DEFAULT_SLAB_BYTES,
        on_window: Optional[Callable[[WindowResult], None]] = None,
    ) -> None:
        if workers < 0:
            raise ExecutionError(f"workers must be >= 0, got {workers}")
        if batch_size < 1:
            raise ExecutionError(f"batch size must be >= 1, got {batch_size}")
        if max_inflight < 1:
            raise ExecutionError(f"max_inflight must be >= 1, got {max_inflight}")
        if workers > 0 and shards is not None and shards != workers:
            raise ExecutionError(
                f"with worker processes the shard count is the worker count "
                f"(workers={workers}, shards={shards})"
            )
        if workers > 0 and on_window is not None:
            raise ExecutionError(
                "on_window callbacks require workers=0: window results cross "
                "process boundaries only at finish()"
            )
        self.workload = workload if isinstance(workload, Workload) else Workload(workload)
        self.workers = workers
        self.batch_size = batch_size
        self.max_inflight = max_inflight
        self.lazy_open = lazy_open
        self.shared_windows = shared_windows
        # Validate the policy spec in the driver (fail fast, not in a
        # worker); workers receive the raw spec and resolve their own
        # per-shard optimizer instances.
        if burst_size is not None and burst_size < 1:
            raise ExecutionError(f"burst size must be >= 1, got {burst_size}")
        optimizer_factory = resolve_optimizer_factory(optimizer)
        # Resolving validates the name (and, for "numpy", the import) in the
        # driver — fail fast, not in a worker; workers receive the raw spec
        # and resolve their own per-shard backend instances.
        resolved_backend = resolve_kernel_backend(kernel_backend)
        if (
            burst_size is not None
            and optimizer_factory is None
            and not resolved_backend.wants_bursts
        ):
            raise ExecutionError(
                "burst_size requires an optimizer (burst segmentation is "
                "adaptive-mode only) or a kernel backend that folds bursts "
                "(kernel_backend='numpy')"
            )
        self.optimizer = optimizer
        self.burst_size = burst_size
        self.kernel_backend = kernel_backend
        self.transport = validate_transport(transport)
        if slab_bytes < 1:
            raise ExecutionError(f"slab_bytes must be >= 1, got {slab_bytes}")
        self.slab_bytes = slab_bytes
        self.on_window = on_window
        self.engine_factory = engine_factory
        self.router = ShardRouter(
            self.workload,
            workers if workers > 0 else (shards if shards is not None else 1),
            routing=routing,
        )
        self.analysis = self.router.analysis
        # Driver-side unit enumeration for the deterministic merge: every
        # (post-decomposition) query name -> (unit index, window).  Shard
        # modes agree on this order because it is derived from the full
        # workload's analysis, not from any shard's slice of it.
        self._unit_of_name: dict[str, tuple[int, Window]] = {}
        unit_index = 0
        for group in self.analysis.groups:
            for unit in execution_units(group.queries):
                for query in unit:
                    self._unit_of_name[query.name] = (unit_index, query.window)
                unit_index += 1
        self._unit_count = unit_index
        self._begin_run()

    # ------------------------------------------------------------------ #
    # Lifecycle (StreamProcessor)
    # ------------------------------------------------------------------ #
    def run(
        self,
        stream: EventStream | Iterable[Event],
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> ExecutionReport:
        """Consume ``stream`` in one pass and return the merged report."""
        self._begin_run()
        stream = slice_stream(stream, start, end)
        if self.workers == 0 and self.router.shards == 1:
            # Bulk fast path for the degenerate single in-process shard: the
            # shard executor enforces event order itself, so the refactored
            # driver costs one counter per event over a plain
            # StreamingExecutor run (the workers=0/1-parity regression gate
            # in BENCH_PR4.json watches exactly this).
            self._start_shards()
            single = self._single
            assert single is not None
            consumed = 0
            process = single.process
            for event in stream:
                consumed += 1
                process(event)
            self._consumed = consumed
            self._shard_events[0] = consumed
            self._clock = single._clock
            return self.finish()
        try:
            process = self.process
            for event in stream:
                process(event)
        except BaseException:
            # A failing stream iterable (process() cleans up after itself)
            # must not orphan a live worker pool.
            self._shutdown()
            raise
        return self.finish()

    def process(self, event: Event) -> None:
        """Route one event to its shard(s), shipping full batches."""
        if event.time < self._clock:
            # Driver-side rejection: shut a live pool down before raising so
            # a caller that catches the error and drops the executor does
            # not leak worker processes blocked on their input queues.
            self._shutdown()
            raise ExecutionError(
                f"sharded executor requires in-order arrival: event at "
                f"{event.time} after stream time {self._clock}"
            )
        self._clock = event.time
        self._consumed += 1
        if not self._started:
            self._start_shards()
        if self._single is not None:
            # One in-process shard: skip routing entirely — the shard's own
            # per-type dispatch drops irrelevant events just as fast as the
            # router would, and the hot path stays one call deep.
            self._shard_events[0] += 1
            self._single.process(event)
            return
        for shard_id in self.router.route(event):
            self._shard_events[shard_id] += 1
            if self._local is not None:
                self._local[shard_id].process(event)
            else:
                buffer = self._buffers[shard_id]
                buffer.append(event)
                if len(buffer) >= self.batch_size:
                    self._ship(shard_id)

    def finish(self) -> ExecutionReport:
        """Flush every shard, merge the per-shard reports and return."""
        if not self._started:
            self._start_shards()
        wall_started = self._run_started
        if self._local is not None:
            shard_reports = [executor.finish() for executor in self._local]
        else:
            shard_reports = self._finish_workers()
        report = self._merge(shard_reports, time.perf_counter() - wall_started)
        # Full reset: the driver is an incrementally-fed StreamProcessor, so
        # a process()/finish() cycle after this one must start a fresh run
        # (fresh clock, counters and shard state), exactly like run() does.
        self._begin_run()
        return report

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shard_count(self) -> int:
        """Effective number of shards (see :class:`ShardRouter`)."""
        return self.router.shards

    @property
    def routing_mode(self) -> str:
        """The router's mode: ``"group"`` or ``"unit"``."""
        return self.router.mode

    @property
    def shard_event_counts(self) -> tuple[int, ...]:
        """Events routed to each shard so far this run."""
        return tuple(self._shard_events)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _begin_run(self) -> None:
        # A re-run that interrupts a live pool-mode run (run() called after
        # process() without finish()) must not orphan its workers: shut the
        # old pool down before the state is reset.  (__init__ calls this
        # before any transport attribute exists; finish() has already
        # drained and cleared the pool by the time it resets.)
        if getattr(self, "_processes", None):
            self._shutdown()
        self._clock = float("-inf")
        self._consumed = 0
        self._shard_events = [0] * self.router.shards
        self._shard_batches = [0] * self.router.shards
        self._run_started = time.perf_counter()
        self._started = False
        #: In-process shard executors (workers=0); None in pool mode.
        self._local: Optional[list[StreamingExecutor]] = None
        #: Fast path for the single in-process shard.
        self._single: Optional[StreamingExecutor] = None
        self._buffers: list[list[Event]] = []
        self._processes: list = []
        self._in_queues: list = []
        self._out_queue = None
        #: Per-shard slab rings (shm transport in pool mode; else empty).
        self._rings: list[SlabRing] = []

    def _start_shards(self) -> None:
        self._started = True
        self._run_started = time.perf_counter()
        if self.workers == 0:
            self._local = [
                StreamingExecutor(
                    list(self.router.shard_queries(shard_id)),
                    self.engine_factory,
                    on_window=self.on_window,
                    lazy_open=self.lazy_open,
                    shared_windows=self.shared_windows,
                    optimizer=self.optimizer,
                    burst_size=self.burst_size,
                    kernel_backend=self.kernel_backend,
                )
                for shard_id in range(self.router.shards)
            ]
            if self.router.shards == 1:
                self._single = self._local[0]
            return
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self._buffers = [[] for _ in range(self.router.shards)]
        self._in_queues = [
            context.Queue(maxsize=self.max_inflight) for _ in range(self.router.shards)
        ]
        self._out_queue = context.Queue()
        if self.transport == "shm":
            self._rings = [
                SlabRing(
                    context,
                    slots=ring_slots(self.max_inflight),
                    slab_bytes=self.slab_bytes,
                )
                for _ in range(self.router.shards)
            ]
        self._processes = []
        for shard_id in range(self.router.shards):
            if self._rings:
                ring = self._rings[shard_id]
                channel = (ring.name, ring.slab_bytes, ring.ack_send)
            else:
                channel = None
            process = context.Process(
                target=_shard_worker_main,
                args=(
                    shard_id,
                    self.router.shard_queries(shard_id),
                    self.engine_factory,
                    self.lazy_open,
                    self.shared_windows,
                    self.optimizer,
                    self.burst_size,
                    self.kernel_backend,
                    channel,
                    self._in_queues[shard_id],
                    self._out_queue,
                ),
                daemon=True,
                name=f"repro-shard-{shard_id}",
            )
            process.start()
            self._processes.append(process)

    def _ship(self, shard_id: int) -> None:
        buffer = self._buffers[shard_id]
        self._shard_batches[shard_id] += 1
        if self._rings:
            payload = columnar.encode_events(buffer, columnar.CODEC_COLUMNAR)
            buffer.clear()
            ring = self._rings[shard_id]
            if ring.fits(payload):
                slab = ring.acquire(
                    poll_seconds=_POLL_SECONDS,
                    on_stall=lambda: self._check_alive(shard_id),
                )
                ring.write(slab, payload)
                self._put(shard_id, ("slab", slab, len(payload)))
            else:
                # Oversized batch: same framed bytes through the queue.
                self._put(shard_id, ("raw", payload))
            return
        batch = EventBatch.from_events(buffer)
        buffer.clear()
        self._put(shard_id, batch)

    def _check_alive(self, shard_id: int) -> None:
        if not self._processes[shard_id].is_alive():
            self._raise_worker_failure(shard_id)

    def _put(self, shard_id: int, item) -> None:
        """Bounded put: blocks on a full queue (backpressure) but never on a
        dead worker — liveness is re-checked between waits."""
        queue = self._in_queues[shard_id]
        while True:
            try:
                queue.put(item, timeout=_POLL_SECONDS)
                return
            except Full:
                self._check_alive(shard_id)

    def _finish_workers(self) -> list[ExecutionReport]:
        # Ship every shard's residual batch and sentinel in a round-robin of
        # non-blocking puts: a blocking per-shard pass would hold shard
        # i+1's sentinel hostage to shard i's backpressured queue, leaving
        # drained workers idle through the end-of-stream tail.
        pending: dict[int, list] = {}
        for shard_id in range(self.router.shards):
            items: list = []
            buffer = self._buffers[shard_id]
            if buffer:
                if self._rings:
                    # Tail batches ride the raw fallback: acquiring a slab
                    # can block on worker acks, which would defeat this
                    # round-robin of strictly non-blocking puts.
                    items.append(
                        (
                            "raw",
                            columnar.encode_events(
                                buffer, columnar.CODEC_COLUMNAR
                            ),
                        )
                    )
                else:
                    items.append(EventBatch.from_events(buffer))
                buffer.clear()
                self._shard_batches[shard_id] += 1
            items.append(None)
            pending[shard_id] = items
        while pending:
            progressed = False
            for shard_id in list(pending):
                items = pending[shard_id]
                while items:
                    try:
                        self._in_queues[shard_id].put_nowait(items[0])
                    except Full:
                        break
                    items.pop(0)
                    progressed = True
                if not items:
                    del pending[shard_id]
            if pending and not progressed:
                for shard_id in pending:
                    if not self._processes[shard_id].is_alive():
                        self._raise_worker_failure(shard_id)
                time.sleep(_POLL_SECONDS / 5)
        collected: dict[int, ExecutionReport] = {}
        grace_deadline: Optional[float] = None
        while len(collected) < self.router.shards:
            try:
                shard_id, status, payload = self._out_queue.get(timeout=_POLL_SECONDS)
            except Empty:
                dead = [
                    shard_id
                    for shard_id, process in enumerate(self._processes)
                    if shard_id not in collected and not process.is_alive()
                ]
                if not dead:
                    grace_deadline = None
                    continue
                # A worker exited with its report possibly still in flight
                # in the queue's feeder thread; grant a short grace before
                # declaring the crash.
                now = time.perf_counter()
                if grace_deadline is None:
                    grace_deadline = now + _CRASH_GRACE_SECONDS
                elif now >= grace_deadline:
                    exit_code = self._processes[dead[0]].exitcode
                    self._shutdown()
                    raise ExecutionError(
                        f"shard worker {dead[0]} died without a report "
                        f"(exit code {exit_code})"
                    )
                continue
            # Any delivery proves the queue is flowing again — a previously
            # armed deadline belongs to a report that has now arrived (or
            # will, on a fresh grace period), so re-arm from scratch.
            grace_deadline = None
            if status == "error":
                self._shutdown()
                raise ExecutionError(f"shard worker {shard_id} failed:\n{payload}")
            collected[shard_id] = payload
        for process in self._processes:
            process.join(timeout=5.0)
        self._shutdown(terminate=False)
        return [collected[shard_id] for shard_id in range(self.router.shards)]

    def _raise_worker_failure(self, shard_id: int) -> None:
        # Mid-stream failure path (the sentinel has not been sent, so the
        # result queue can only hold "error" payloads — workers report "ok"
        # only after their sentinel).  Prefer the worker's own traceback: it
        # may still be in flight in the queue's feeder thread, so wait the
        # deadline out rather than giving up on the first empty read.
        deadline = time.perf_counter() + _CRASH_GRACE_SECONDS
        while time.perf_counter() < deadline:
            try:
                failed_id, status, payload = self._out_queue.get(timeout=_POLL_SECONDS)
            except Empty:
                continue
            if status == "error":
                self._shutdown()
                raise ExecutionError(f"shard worker {failed_id} failed:\n{payload}")
        exit_code = self._processes[shard_id].exitcode
        self._shutdown()
        raise ExecutionError(
            f"shard worker {shard_id} died without a report (exit code {exit_code})"
        )

    def _shutdown(self, *, terminate: bool = True) -> None:
        for process in self._processes:
            if terminate and process.is_alive():
                process.terminate()
            process.join(timeout=1.0)
        for queue in self._in_queues:
            queue.close()
            queue.cancel_join_thread()
        if self._out_queue is not None:
            self._out_queue.close()
            self._out_queue.cancel_join_thread()
        # Unlink every ring segment after the workers are gone (joined or
        # terminated above) — the "no leaked segments" half of the shm
        # transport contract; close() is idempotent and also detaches the
        # last-resort finalizer.
        for ring in self._rings:
            ring.close()
        self._processes = []
        self._in_queues = []
        self._out_queue = None
        self._rings = []

    # ------------------------------------------------------------------ #
    # Deterministic merge
    # ------------------------------------------------------------------ #
    def _partition_order(self, partition: PartitionResult) -> tuple:
        for name in partition.results:
            placed = self._unit_of_name.get(name)
            if placed is not None:
                unit_index, window = placed
                window_end = window.instance_bounds(partition.window_index)[1]
                return (
                    window_end,
                    unit_index,
                    group_sort_key(partition.group_key),
                    partition.window_index,
                )
        return (  # pragma: no cover - engines always report unit queries
            partition.window_start,
            -1,
            group_sort_key(partition.group_key),
            partition.window_index,
        )

    def _merge(
        self, shard_reports: Sequence[ExecutionReport], wall_seconds: float
    ) -> ExecutionReport:
        # The shard executors resolved the engine label already; building an
        # engine here just to read its name would be pure waste.
        report = ExecutionReport(engine_name=shard_reports[0].engine_name)
        metrics = report.metrics
        merged_statistics: Optional[OptimizerStatistics] = None
        for sub in shard_reports:
            metrics.merge(sub.metrics)
            if sub.optimizer_statistics is not None:
                if merged_statistics is None:
                    merged_statistics = OptimizerStatistics()
                merged_statistics.merge(sub.optimizer_statistics)
        # merge() sums shard counts, but an event routed to two unit-mode
        # shards is still one stream event — and wall clock is the driver's
        # elapsed time, not any shard's.
        metrics.stream_events = self._consumed
        metrics.wall_seconds = wall_seconds
        # Concurrent gauges: parallel shards hold their state *at the same
        # time*, so merge()'s max-of-peaks (right for re-runs of one
        # pipeline) would under-report an N-shard run by up to N.  Sum the
        # per-shard peaks instead — an upper bound, since shards need not
        # peak at the same instant.
        metrics.peak_memory_units = sum(
            sub.metrics.peak_memory_units for sub in shard_reports
        )
        metrics.peak_active_windows = sum(
            sub.metrics.peak_active_windows for sub in shard_reports
        )
        report.optimizer_statistics = merged_statistics
        merged = [
            partition for sub in shard_reports for partition in sub.partition_results
        ]
        if len(shard_reports) > 1 or self._unit_count > 1:
            merged.sort(key=self._partition_order)
        # else: one shard, one unit — the shard's emission order (close
        # sweeps ordered by (end, group key) with non-decreasing ends) IS
        # the canonical (window end, unit, group) order; skip the re-sort.
        report.partition_results = merged
        if len(shard_reports) == 1:
            # One shard saw the whole stream: its totals are already the
            # complete, recombined answer — rebuilding them would only
            # re-add the same partitions.  (Zero-defaults still need the
            # driver's consumed count: the router may have dropped every
            # event before the shard, e.g. an all-irrelevant stream.)
            report.totals.update(shard_reports[0].totals)
            if self._consumed:
                for name in self._unit_of_name:
                    report.totals.setdefault(name, 0.0)
        else:
            # Totals are rebuilt from the merged partitions in their
            # canonical order — never by summing per-shard totals, whose
            # grouping would depend on the shard count.
            totals = report.totals
            for partition in merged:
                for name, value in partition.results.items():
                    if value != 0.0:
                        totals[name] = totals.get(name, 0.0) + value
            if self._consumed:
                for name in self._unit_of_name:
                    totals.setdefault(name, 0.0)
            recombine_decompositions(self.analysis.decompositions, merged, totals)
        report.shards = [
            ShardReport(
                shard_id=shard_id,
                events=self._shard_events[shard_id],
                batches=self._shard_batches[shard_id],
                report=sub,
            )
            for shard_id, sub in enumerate(shard_reports)
        ]
        return report


def run_sharded(
    workload: Workload | Sequence[Query],
    stream: EventStream | Iterable[Event],
    engine_factory: EngineFactory = HamletEngine,
    *,
    workers: int = 0,
    shards: Optional[int] = None,
    routing: str = "auto",
    batch_size: int = 512,
    max_inflight: int = 8,
    lazy_open: bool = True,
    shared_windows: bool = True,
    optimizer: OptimizerSpec = None,
    burst_size: Optional[int] = None,
    kernel_backend: KernelBackendSpec = None,
    transport: str = "pickle",
    slab_bytes: int = DEFAULT_SLAB_BYTES,
) -> ExecutionReport:
    """One-shot convenience wrapper around :class:`ShardedStreamingExecutor`."""
    executor = ShardedStreamingExecutor(
        workload,
        engine_factory,
        workers=workers,
        shards=shards,
        routing=routing,
        batch_size=batch_size,
        max_inflight=max_inflight,
        lazy_open=lazy_open,
        shared_windows=shared_windows,
        optimizer=optimizer,
        burst_size=burst_size,
        kernel_backend=kernel_backend,
        transport=transport,
        slab_bytes=slab_bytes,
    )
    return executor.run(stream)
