"""Sharded streaming execution: a router / worker split over the runtime.

HAMLET partitions the stream by grouping attributes before anything else
(Section 3.1), and ``(group key, window instance)`` partitions are
independent by construction.  The single-process
:class:`~repro.runtime.streaming.StreamingExecutor` nevertheless evaluates
every partition on one core.  This module turns the partition independence
into parallelism:

* a :class:`ShardRouter` splits the workload into *shards* and maps every
  event to the shard(s) that must see it.  When the workload has GROUP BY
  (every query groups by the same attributes), events are **hash-routed by
  group key** — a process-stable hash, so routing is deterministic across
  runs and machines.  Without GROUP BY there is only one group per window
  and the stream cannot be split by key, so the router falls back to
  **sharding by execution unit**: each shard owns a subset of the query
  clusters and sees exactly the events relevant to them.  Both placements
  keep every ``(group, window instance)`` partition wholly inside one
  shard, so the shared-window engines work unchanged per shard and no
  cross-shard coordination is ever needed;
* a :class:`ShardedStreamingExecutor` drives one
  :class:`~repro.runtime.streaming.StreamingExecutor` per shard — unmodified;
  anything satisfying :class:`~repro.interfaces.StreamProcessor` would do —
  either in-process (``workers=0``, the testable-without-fork mode) or in a
  ``multiprocessing`` pool.  Events cross process boundaries in batches —
  as pickled :class:`~repro.events.batch.EventBatch` chunks
  (``transport="pickle"``) or as columnar buffers in reusable
  shared-memory slabs with only ``(slab, length)`` references on the wire
  (``transport="shm"``; see :mod:`repro.runtime.transport`) — the
  per-shard input queues are bounded (``max_inflight`` batches) so a slow
  shard back-pressures the router instead of buffering the stream, and the
  per-shard reports are merged **deterministically**: partition results are
  ordered by ``(window end, execution unit, group key)`` using the same
  :func:`~repro.runtime.partitioner.group_sort_key` total order as the
  single-process paths, metrics fold through
  :meth:`~repro.runtime.metrics.ExecutionMetrics.merge`, and OR/AND
  decompositions are recombined over the merged partitions — so totals are
  identical whatever the shard count.

Worker failures propagate: a shard that raises ships its traceback back to
the driver (which shuts the pool down and re-raises as
:class:`~repro.errors.ExecutionError`), and a shard that dies without a
report (crash, ``os._exit``) is detected by liveness checks instead of
deadlocking the router.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import random
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass
from queue import Empty, Full
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core.engine import HamletEngine
from repro.core.kernels import KernelBackendSpec, resolve_kernel_backend
from repro.errors import ExecutionError, OutOfOrderError, WorkerCrashError
from repro.events import columnar
from repro.events.batch import EventBatch
from repro.events.block import EventBlock
from repro.events.event import Event, EventType
from repro.events.stream import EventStream, slice_stream
from repro.optimizer.decisions import OptimizerStatistics
from repro.optimizer.registry import OptimizerSpec, resolve_optimizer_factory
from repro.query.query import Query
from repro.query.windows import Window
from repro.query.workload import Workload
from repro.runtime.executor import (
    EngineFactory,
    ExecutionReport,
    PartitionResult,
    execution_units,
    recombine_decompositions,
    unit_relevant_types,
)
from repro.runtime.checkpoint import AsyncCheckpointWriter, CheckpointStore
from repro.runtime.faultpoints import resolve_fault_hook
from repro.runtime.metrics import RecoveryStats
from repro.runtime.partitioner import group_sort_key
from repro.runtime.reorder import ensure_in_order, validate_lateness
from repro.runtime.streaming import StreamingExecutor, WindowResult
from repro.runtime.transport import (
    DEFAULT_SLAB_BYTES,
    SlabReader,
    SlabRing,
    ring_slots,
    validate_transport,
)
from repro.template.analysis import analyze_workload

__all__ = [
    "ShardReport",
    "ShardRouter",
    "ShardedStreamingExecutor",
    "run_sharded",
    "stable_shard_hash",
]

#: Seconds a slab acquire polls the ack pipe between liveness checks.
_POLL_SECONDS = 0.05
#: Default grace period granted to a dead worker's last report to surface
#: in the result queue (the feeder thread may still be flushing) before
#: the driver classifies the death (``worker_grace_seconds`` overrides).
_CRASH_GRACE_SECONDS = 3.0
#: Jittered-exponential-backoff geometry of the driver's liveness-polling
#: waits (full queue, stalled round-robin): start microscopic so a healthy
#: worker costs almost nothing, double to a cap low enough that worker
#: death is noticed promptly.
_BACKOFF_BASE_SECONDS = 0.001
_BACKOFF_CAP_SECONDS = 0.25
#: Capped exponential backoff between respawns of one shard (recovery):
#: a worker dying instantly in a loop must not busy-respawn.
_RESTART_BACKOFF_BASE_SECONDS = 0.05
_RESTART_BACKOFF_CAP_SECONDS = 2.0
#: Per-shard restart backoff stops doubling past this exponent.
_RESTART_BACKOFF_MAX_EXPONENT = 6
#: Cap on the router's group-key -> shard memo.  The hash is cheap; the
#: memo only skips repr+BLAKE2b for hot keys, and a high-cardinality
#: GROUP BY (per-user/per-ride keys seen once) must not grow driver memory
#: without bound while every other layer evicts dead groups.
_SHARD_MEMO_LIMIT = 65536


class _Backoff:
    """Jittered exponential backoff for the driver's liveness-poll waits.

    Replaces the old fixed-interval sleep loops: waits start at ``base``
    (a healthy worker unblocks in microseconds, so the first re-check must
    be nearly free), double up to ``cap``, and are jittered by a *seeded*
    RNG (reprolint RL006: no global-RNG draws on runtime paths) so
    N shards backing off together do not re-poll in lockstep.  ``sleep``
    returns the seconds actually slept — callers accumulate them into
    :attr:`ExecutionMetrics.driver_wait_seconds`.
    """

    __slots__ = ("_rng", "_base", "_cap", "_delay")

    def __init__(
        self,
        rng: random.Random,
        *,
        base: float = _BACKOFF_BASE_SECONDS,
        cap: float = _BACKOFF_CAP_SECONDS,
    ) -> None:
        self._rng = rng
        self._base = base
        self._cap = cap
        self._delay = base

    def sleep(self) -> float:
        delay = self._delay * (0.5 + self._rng.random())
        time.sleep(delay)
        self._delay = min(self._cap, self._delay * 2.0)
        return delay

    def reset(self) -> None:
        self._delay = self._base


class _WorkerRecovered(Exception):
    """Internal control-flow signal: a dead shard worker was respawned.

    Raised by the liveness check after a successful recovery (respawn +
    checkpoint restore + tail replay) so the interrupted driver operation
    unwinds: whatever batch it was trying to deliver is already in the
    replay buffer and has been re-shipped to the new incarnation.  Never
    escapes the driver.
    """

    def __init__(self, shard_id: int) -> None:
        super().__init__(shard_id)
        self.shard_id = shard_id


def _canonical_key_element(value) -> tuple:
    """Collapse a group-key element to its partition-equality form.

    Partitions are dicts keyed by group tuples, so ``4``, ``4.0`` and
    ``True == 1`` land in **one** partition — the shard hash must not tell
    them apart (``repr`` would, and a partition would straddle shards).
    Numbers canonicalize through ``as_integer_ratio`` (exact, equal for
    equal values across int/float/bool, no 2**53 truncation); every branch
    carries a type tag so e.g. the string ``"None"`` cannot collide with
    ``None``.

    Sibling of :func:`repro.runtime.partitioner._value_sort_key`, which
    answers the *ordering* question for the same key population (this one
    answers equality collapse for hashing); a new group-key value type
    should be considered for both.
    """
    if isinstance(value, str):
        return ("s", value)
    if value is None:
        return ("0",)
    if isinstance(value, tuple):
        return ("t",) + tuple(_canonical_key_element(element) for element in value)
    if isinstance(value, complex):
        # complex(4) == 4 as a dict key; reduce real-valued complex numbers
        # to their real part so they canonicalize with int/float/Decimal.
        if value.imag == 0:
            return _canonical_key_element(value.real)
        return ("c", repr(value))
    ratio = getattr(value, "as_integer_ratio", None)  # int, float, bool,
    if ratio is not None:  # Decimal, Fraction, ...
        try:
            return ("n",) + tuple(ratio())
        except (ValueError, OverflowError):  # nan / inf
            try:
                return ("n", repr(float(value)))
            except (ValueError, OverflowError):  # e.g. Decimal('sNaN')
                return ("n", repr(value))
    return ("r", repr(value))


def stable_shard_hash(group_key: tuple) -> int:
    """A deterministic, process-stable hash of a group key.

    Python's built-in ``hash`` is randomized per process for strings
    (``PYTHONHASHSEED``), which would route the same group to different
    shards in the driver and in tests.  Keys are first canonicalized so
    values that compare equal as partition-dict keys (``4`` vs ``4.0`` vs
    ``True``) hash identically; the canonical form's ``repr`` is
    deterministic, and BLAKE2b mixes it well even for the short,
    near-identical reprs of small numeric keys — where a plain CRC-32
    modulo the shard count degenerates to one shard.
    """
    canonical = tuple(_canonical_key_element(element) for element in group_key)
    digest = hashlib.blake2b(repr(canonical).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class _ShardPlan:
    """The routing decision: mode plus per-shard query placement."""

    #: ``"group"`` (hash on group key) or ``"unit"`` (by execution unit).
    mode: str
    #: Queries evaluated by each shard, in workload order.  Group mode gives
    #: every shard the full workload (events select the shard); unit mode
    #: partitions the query clusters across shards.
    shard_queries: tuple[tuple[Query, ...], ...]
    #: The common grouping attributes (group mode; empty in unit mode).
    group_by: tuple[str, ...]
    #: Event types at least one query references (router drop-filter).
    relevant_types: frozenset[EventType]
    #: Unit mode: event type -> shards whose queries reference it.
    type_routes: Mapping[EventType, tuple[int, ...]]

    @property
    def shards(self) -> int:
        return len(self.shard_queries)


class ShardRouter:
    """Maps each event of a workload's stream to its shard(s).

    The routing invariant — *no ``(group, window instance)`` partition ever
    straddles shards* — holds in both modes:

    * **group mode**: a partition's events all carry the same group key,
      and the shard is a pure function of that key;
    * **unit mode**: a partition belongs to one execution unit, and every
      event relevant to a unit is routed to the (single) shard owning it.

    Unit mode clusters *original* queries (pre-decomposition) transitively:
    queries that share an execution unit — or are sub-queries of the same
    OR/AND decomposition — stay on one shard, so per-shard engines keep
    every sharing opportunity the single-process runtime has.
    """

    def __init__(
        self,
        workload: Workload | Sequence[Query],
        shards: int,
        *,
        routing: str = "auto",
    ) -> None:
        if shards < 1:
            raise ExecutionError(f"shard count must be >= 1, got {shards}")
        if routing not in ("auto", "group", "unit"):
            raise ExecutionError(
                f"routing must be 'auto', 'group' or 'unit', got {routing!r}"
            )
        self.workload = workload if isinstance(workload, Workload) else Workload(workload)
        self.workload.validate()
        self.analysis = analyze_workload(self.workload)
        queries = tuple(self.workload.queries)
        group_bys = {query.group_by for query in queries}
        groupable = len(group_bys) == 1 and next(iter(group_bys)) != ()
        if routing == "group" and not groupable:
            raise ExecutionError(
                "group routing requires every query to share one non-empty "
                "GROUP BY clause; this workload does not (use routing='unit')"
            )
        mode = routing if routing != "auto" else ("group" if groupable else "unit")
        if mode == "group":
            self.plan = self._plan_group(queries, shards)
        else:
            self.plan = self._plan_unit(queries, shards)
        #: Group-key -> shard memo: the shard is a pure function of a small,
        #: heavily-repeated key set, so the hot path pays one dict lookup
        #: instead of repr + BLAKE2b per event.  Dict key equality also
        #: matches partition equality (``4`` and ``4.0`` share an entry),
        #: mirroring the canonicalized hash.
        self._shard_of_key: dict[tuple, int] = {}

    # ------------------------------------------------------------------ #
    # Plan construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _relevant_types(queries: Sequence[Query]) -> frozenset[EventType]:
        # Shared with the executors: the router's drop-filter must agree
        # exactly with what shard workers' units consume.
        return frozenset(unit_relevant_types(queries))

    def _plan_group(self, queries: tuple[Query, ...], shards: int) -> _ShardPlan:
        return _ShardPlan(
            mode="group",
            shard_queries=(queries,) * shards,
            group_by=queries[0].group_by,
            relevant_types=self._relevant_types(queries),
            type_routes={},
        )

    def _plan_unit(self, queries: tuple[Query, ...], shards: int) -> _ShardPlan:
        # Union-find over original query names: queries whose (possibly
        # decomposed) sub-queries share an execution unit must co-locate.
        parent = {query.name: query.name for query in queries}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(first: str, second: str) -> None:
            parent[find(second)] = find(first)

        original_of = {
            sub.name: original_name
            for original_name, decomposition in self.analysis.decompositions.items()
            for sub in decomposition.sub_queries
        }
        for group in self.analysis.groups:
            for unit in execution_units(group.queries):
                names = [original_of.get(query.name, query.name) for query in unit]
                for name in names[1:]:
                    union(names[0], name)
        # Clusters in workload order (first member's position), assigned
        # round-robin — deterministic, and balanced when clusters are even.
        clusters: dict[str, list[Query]] = {}
        for query in queries:
            clusters.setdefault(find(query.name), []).append(query)
        cluster_list = list(clusters.values())
        shard_count = min(shards, len(cluster_list))
        shard_queries: list[list[Query]] = [[] for _ in range(shard_count)]
        for index, cluster in enumerate(cluster_list):
            shard_queries[index % shard_count].extend(cluster)
        type_routes: dict[EventType, list[int]] = {}
        for shard_id, shard in enumerate(shard_queries):
            for event_type in self._relevant_types(shard):
                type_routes.setdefault(event_type, []).append(shard_id)
        return _ShardPlan(
            mode="unit",
            shard_queries=tuple(tuple(shard) for shard in shard_queries),
            group_by=(),
            relevant_types=self._relevant_types(queries),
            type_routes={
                event_type: tuple(shard_ids)
                for event_type, shard_ids in type_routes.items()
            },
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @property
    def mode(self) -> str:
        """The selected routing mode (``"group"`` or ``"unit"``)."""
        return self.plan.mode

    @property
    def shards(self) -> int:
        """Effective shard count (unit mode never exceeds the cluster count)."""
        return self.plan.shards

    def shard_queries(self, shard_id: int) -> tuple[Query, ...]:
        """The queries shard ``shard_id`` evaluates."""
        return self.plan.shard_queries[shard_id]

    def route(self, event: Event) -> tuple[int, ...]:
        """Shard ids that must see ``event`` (empty: no query cares)."""
        if event.event_type not in self.plan.relevant_types:
            return ()
        if self.plan.mode == "group":
            key = tuple(event.get(attribute) for attribute in self.plan.group_by)
            shard = self._shard_of_key.get(key)
            if shard is None:
                shard = stable_shard_hash(key) % self.plan.shards
                if len(self._shard_of_key) < _SHARD_MEMO_LIMIT:
                    self._shard_of_key[key] = shard
            return (shard,)
        return self.plan.type_routes.get(event.event_type, ())

    def route_block(self, block: EventBlock) -> tuple[list[int], ...]:
        """Block-relative row indices each shard must see, in one columnar pass.

        The columnar sibling of :meth:`route`: per-row results are identical
        (the sharded differential suite pins it), but type relevance is
        resolved once per interned type code, group keys come from the
        block's cached key column, and each distinct group key is hashed at
        most once (through the same memo the per-event path fills).
        """
        selections: tuple[list[int], ...] = tuple(
            [] for _ in range(self.plan.shards)
        )
        codes = block.type_codes
        base = block.start
        count = len(block)
        if self.plan.mode == "group":
            relevant = self.plan.relevant_types
            relevant_by_code = [
                event_type in relevant for event_type in block.type_table
            ]
            keys = block.group_keys(self.plan.group_by)
            memo = self._shard_of_key
            #: key -> that key's selection list (saves the modulo + second
            #: dict hop for the block's repeated keys).
            selection_of_key: dict[tuple, list[int]] = {}
            for local in range(count):
                if not relevant_by_code[codes[base + local]]:
                    continue
                key = keys[local]
                selection = selection_of_key.get(key)
                if selection is None:
                    shard = memo.get(key)
                    if shard is None:
                        shard = stable_shard_hash(key) % self.plan.shards
                        if len(memo) < _SHARD_MEMO_LIMIT:
                            memo[key] = shard
                    selection = selection_of_key[key] = selections[shard]
                selection.append(local)
            return selections
        routes_by_code = [
            self.plan.type_routes.get(event_type, ())
            for event_type in block.type_table
        ]
        for local in range(count):
            for shard in routes_by_code[codes[base + local]]:
                selections[shard].append(local)
        return selections


@dataclass
class ShardReport:
    """One shard's contribution to a sharded run."""

    shard_id: int
    #: Distinct stream events the router sent to this shard.  The single
    #: in-process shard (``workers=0``, one shard) is fed the stream
    #: unfiltered — the shard's own per-type dispatch does the dropping —
    #: so there this counts every consumed event, not just relevant ones.
    events: int
    #: Event batches shipped across the process boundary (0 in-process).
    batches: int
    #: The shard worker's own :class:`ExecutionReport`.
    report: ExecutionReport


def _shard_worker_main(
    shard_id: int,
    queries: tuple[Query, ...],
    engine_factory: EngineFactory,
    lazy_open: bool,
    shared_windows: bool,
    optimizer: OptimizerSpec,
    burst_size: Optional[int],
    kernel_backend: KernelBackendSpec,
    allowed_lateness: Optional[float],
    late_policy: str,
    channel: Optional[tuple[str, int, object]],
    in_queue,
    out_queue,
    recovery: Optional[tuple[str, int, int, int, bool, object]] = None,
) -> None:
    """Entry point of one shard worker process.

    Drives an unmodified :class:`StreamingExecutor` over the batches the
    router ships until the ``None`` sentinel arrives, then returns the
    shard's report.  The adaptive-sharing policy and kernel backend cross
    the process boundary as their specs (typically names); each shard
    resolves its own optimizer instances, whose decision counts are
    shard-placement invariant because bursts are segmented per ``(group,
    unit)`` stream and every such stream lives wholly inside one shard.

    ``channel`` selects the transport: ``None`` means pickle (queue items
    are ``("batch", seq, EventBatch)``); a ``(segment name, slab bytes,
    ack pipe)`` triple means shared memory — queue items are ``("slab",
    seq, index, nbytes)`` references into the ring (acked back after
    decoding) or ``("raw", seq, payload)`` framed-bytes fallbacks.  The
    driver-assigned ``seq`` tags identify batches across worker
    incarnations (checkpoint bookkeeping and post-restore replay).

    ``recovery`` enables checkpointing: ``(checkpoint dir, window
    interval, batch cadence, epoch, resume, ack pipe)``.  The worker
    snapshots its executor after a batch whenever ``interval`` windows
    closed since the last snapshot — or, as a replay-buffer bound,
    every ``cadence`` batches — and a background writer lands each
    snapshot atomically and acks ``(epoch, seq, nbytes)`` to the driver.
    With ``resume`` the worker restores the shard's last good checkpoint
    before consuming anything; every message it emits carries ``epoch``
    so the driver can discard a dead incarnation's stragglers.

    Any failure is shipped back as a formatted traceback — the driver
    re-raises it — rather than dying silently.
    """
    reader: Optional[SlabReader] = None
    writer: Optional[AsyncCheckpointWriter] = None
    epoch = 0
    try:
        executor = StreamingExecutor(
            list(queries),
            engine_factory,
            lazy_open=lazy_open,
            shared_windows=shared_windows,
            optimizer=optimizer,
            burst_size=burst_size,
            kernel_backend=kernel_backend,
            allowed_lateness=allowed_lateness,
            late_policy=late_policy,
        )
        interval = cadence = 0
        if recovery is not None:
            directory, interval, cadence, epoch, resume, checkpoint_ack = recovery
            store = CheckpointStore(directory, shard_id)
            if resume:
                latest = store.latest()
                if latest is not None:
                    executor.restore_state(latest.payload)
            writer = AsyncCheckpointWriter(store, checkpoint_ack)
        fault = resolve_fault_hook(shard_id, epoch)
        if channel is not None:
            segment_name, slab_bytes, ack_send = channel
            reader = SlabReader(segment_name, slab_bytes, ack_send)
        process = executor.process
        windows_marked = executor.windows_closed
        batches_since = 0
        while True:
            message = in_queue.get()
            if message is None:
                break
            kind = message[0]
            block: Optional[EventBlock] = None
            if kind == "slab":
                assert reader is not None
                _, seq, slab, nbytes = message
                view = reader.view(slab, nbytes)
                try:
                    # Parsing copies every column out of the mapped
                    # slab, so the slab is recyclable the moment the
                    # block is built — ack before processing.  No
                    # per-event objects are constructed on this path.
                    block = EventBlock.from_bytes(view)
                finally:
                    view.release()
                if fault is not None:
                    fault("mid-batch-decode")  # decoded, slab unacked
                reader.ack(slab)
            elif kind == "raw":
                _, seq, payload = message
                block = EventBlock.from_bytes(payload)
                if fault is not None:
                    fault("mid-batch-decode")
            else:  # "batch": a pickled EventBatch
                _, seq, events = message
                if fault is not None:
                    fault("mid-batch-decode")
            if fault is not None:
                fault("pre-fold")
            if block is not None:
                executor.process_block(block)
            else:
                for event in events:
                    process(event)
            if writer is not None:
                batches_since += 1
                if (
                    executor.windows_closed - windows_marked >= interval
                    or batches_since >= cadence
                ):
                    # Snapshot synchronously (the state must hold still),
                    # write + fsync on the background thread.
                    writer.submit(epoch, seq, executor.snapshot_state())
                    windows_marked = executor.windows_closed
                    batches_since = 0
            if fault is not None:
                fault("post-close-pre-ack")
        if writer is not None:
            # Drain pending checkpoint writes (and surface any write
            # failure as this worker's error) before reporting.
            writer.close()
            writer = None
        if fault is not None:
            fault("pre-report")
        out_queue.put((shard_id, epoch, "ok", executor.finish()))
    except BaseException:
        out_queue.put((shard_id, epoch, "error", traceback.format_exc()))
    finally:
        if writer is not None:
            writer.abort()
        if reader is not None:
            reader.close()


class ShardedStreamingExecutor:
    """Multi-process (or in-process) sharded single-pass execution.

    The driver satisfies :class:`~repro.interfaces.StreamProcessor` itself
    (``process`` / ``finish``), so it is a drop-in replacement for a
    :class:`StreamingExecutor` wherever one is fed incrementally.

    Args:
        workload: The queries to evaluate.
        engine_factory: Engine factory for linear units (default HAMLET).
            With ``workers > 0`` it crosses a process boundary: under the
            ``fork`` start method (Linux) any callable works; under
            ``spawn`` it must be picklable.
        workers: Shard worker *processes*.  ``0`` runs every shard executor
            inside the driver process — same router, same merge, no fork
            semantics — which is also the mode that keeps ``on_window``
            callbacks possible.  ``workers >= 1`` spawns one process per
            shard.
        shards: Router fan-out for ``workers=0`` (defaults to 1).  With
            ``workers > 0`` the shard count *is* the worker count.
        routing: ``"auto"`` (group hash when the workload has a common
            GROUP BY, else by execution unit), ``"group"`` or ``"unit"``.
        batch_size: Events per :class:`EventBatch` shipped to a worker.
        max_inflight: Bound on undelivered batches per shard; a full queue
            back-pressures :meth:`process` instead of buffering the stream.
        lazy_open / shared_windows: Forwarded to every shard's
            :class:`StreamingExecutor`.
        optimizer / burst_size: Adaptive per-burst sharing policy and burst
            cap, forwarded to every shard's :class:`StreamingExecutor`.
            Each shard resolves its own optimizer instances; the driver
            merges the per-shard
            :class:`~repro.optimizer.decisions.OptimizerStatistics` in
            shard order, and the merged decision counts are invariant in
            the shard count because bursts are per ``(group, unit)`` stream
            and each such stream lives wholly inside one shard.
        kernel_backend: Burst-fold kernel backend spec, forwarded to every
            shard's :class:`StreamingExecutor` (same registry-name pattern
            as ``optimizer``; see
            :func:`~repro.core.kernels.resolve_kernel_backend`).
        transport: How batches cross the process boundary with
            ``workers > 0``: ``"pickle"`` ships :class:`EventBatch` blobs
            through the queues; ``"shm"`` writes columnar-encoded batches
            into a per-worker ring of reusable shared-memory slabs and
            ships only ``(slab index, length)`` references (see
            :mod:`repro.runtime.transport`).  Accepted-and-inert with
            ``workers=0`` — there is no process boundary to cross — so
            callers can sweep transports across worker counts uniformly.
        slab_bytes: Slab payload capacity for the shm transport; batches
            that encode larger fall back to the queue.
        on_window: Per-window callback; only available with ``workers=0``
            (results cross process boundaries only at :meth:`finish`).
        allowed_lateness / late_policy: Bounded out-of-order tolerance,
            forwarded to every shard's :class:`StreamingExecutor` — each
            shard runs its own watermark-driven reorder buffer over the
            rows routed to it.  With lateness set the driver stops
            enforcing arrival order itself (its clock becomes the max
            event time seen) and exposes the conservative fleet-wide
            :attr:`watermark` as the minimum over per-shard watermarks.
            A shard-local watermark trails the *shard's* max event time,
            which is at most the global one — so per-shard lateness is
            never stricter than a single-process run's, though which
            events a non-``"raise"`` policy catches can differ with the
            shard count (each shard judges lateness against its own
            clock).  Within the horizon, results are shard-count
            invariant exactly like in-order runs.
        on_late: Side-output callback for the ``"side_output"`` policy;
            like ``on_window`` it requires ``workers=0`` (late events
            would otherwise surface in a worker process).
        checkpoint_dir: Directory for per-shard checkpoints (see
            :mod:`repro.runtime.checkpoint`).  ``None`` (the default)
            disables checkpointing *and* recovery: a dead worker is fatal,
            exactly the pre-checkpoint behaviour.  With a directory set,
            pool-mode workers snapshot their executors at window
            boundaries and the driver supervises: a worker that dies
            without reporting is respawned (capped exponential backoff),
            restored from its shard's last good checkpoint, and fed the
            post-checkpoint tail from the driver's bounded replay buffer.
            With ``workers=0`` the driver itself checkpoints the local
            shard executors on the same schedule (crash-restart coverage
            for external supervision; no respawn, there is no process to
            respawn).
        checkpoint_interval: Checkpoint after a batch once this many
            windows closed since the shard's previous checkpoint.
        max_restarts: Total worker respawns the driver will perform per
            run before declaring the crash fatal
            (:class:`~repro.errors.WorkerCrashError`).
        replay_limit: Bound on the per-shard replay buffer, in batches.
            A shard whose checkpoint acks lag this far behind
            back-pressures :meth:`process` — the buffer is what makes
            recovery lossless, so it must never be silently dropped from.
            Workers additionally checkpoint every ``replay_limit // 2``
            batches regardless of window closes, keeping the replayed
            tail short even through window droughts.
        worker_grace_seconds: Grace granted to a dead worker's final
            message (report or traceback) to surface in the result queue
            before the driver classifies the death.  Workers that die of
            a signal or a nonzero exit skip the wait entirely — no
            message can be in flight — so this only throttles the
            ambiguous clean-exit case.
    """

    def __init__(
        self,
        workload: Workload | Sequence[Query],
        engine_factory: EngineFactory = HamletEngine,
        *,
        workers: int = 0,
        shards: Optional[int] = None,
        routing: str = "auto",
        batch_size: int = 512,
        max_inflight: int = 8,
        lazy_open: bool = True,
        shared_windows: bool = True,
        optimizer: OptimizerSpec = None,
        burst_size: Optional[int] = None,
        kernel_backend: KernelBackendSpec = None,
        transport: str = "pickle",
        slab_bytes: int = DEFAULT_SLAB_BYTES,
        on_window: Optional[Callable[[WindowResult], None]] = None,
        allowed_lateness: Optional[float] = None,
        late_policy: str = "raise",
        on_late: Optional[Callable[[Event], None]] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval: int = 16,
        max_restarts: int = 3,
        replay_limit: int = 64,
        worker_grace_seconds: float = _CRASH_GRACE_SECONDS,
    ) -> None:
        if workers < 0:
            raise ExecutionError(f"workers must be >= 0, got {workers}")
        if batch_size < 1:
            raise ExecutionError(f"batch size must be >= 1, got {batch_size}")
        if max_inflight < 1:
            raise ExecutionError(f"max_inflight must be >= 1, got {max_inflight}")
        if checkpoint_interval < 1:
            raise ExecutionError(
                f"checkpoint interval must be >= 1, got {checkpoint_interval}"
            )
        if max_restarts < 0:
            raise ExecutionError(f"max_restarts must be >= 0, got {max_restarts}")
        if replay_limit < 2:
            raise ExecutionError(f"replay_limit must be >= 2, got {replay_limit}")
        if worker_grace_seconds <= 0:
            raise ExecutionError(
                f"worker_grace_seconds must be > 0, got {worker_grace_seconds}"
            )
        if workers > 0 and shards is not None and shards != workers:
            raise ExecutionError(
                f"with worker processes the shard count is the worker count "
                f"(workers={workers}, shards={shards})"
            )
        if workers > 0 and on_window is not None:
            raise ExecutionError(
                "on_window callbacks require workers=0: window results cross "
                "process boundaries only at finish()"
            )
        # Same fail-fast config validation as a single StreamingExecutor;
        # workers receive the validated values and re-validate trivially.
        validate_lateness(allowed_lateness, late_policy, on_late)
        if workers > 0 and on_late is not None:
            raise ExecutionError(
                "on_late callbacks require workers=0: late events surface "
                "inside shard worker processes, not the driver"
            )
        self.workload = workload if isinstance(workload, Workload) else Workload(workload)
        self.workers = workers
        self.batch_size = batch_size
        self.max_inflight = max_inflight
        self.lazy_open = lazy_open
        self.shared_windows = shared_windows
        # Validate the policy spec in the driver (fail fast, not in a
        # worker); workers receive the raw spec and resolve their own
        # per-shard optimizer instances.
        if burst_size is not None and burst_size < 1:
            raise ExecutionError(f"burst size must be >= 1, got {burst_size}")
        optimizer_factory = resolve_optimizer_factory(optimizer)
        # Resolving validates the name (and, for "numpy", the import) in the
        # driver — fail fast, not in a worker; workers receive the raw spec
        # and resolve their own per-shard backend instances.
        resolved_backend = resolve_kernel_backend(kernel_backend)
        if (
            burst_size is not None
            and optimizer_factory is None
            and not resolved_backend.wants_bursts
        ):
            raise ExecutionError(
                "burst_size requires an optimizer (burst segmentation is "
                "adaptive-mode only) or a kernel backend that folds bursts "
                "(kernel_backend='numpy')"
            )
        self.optimizer = optimizer
        self.burst_size = burst_size
        self.kernel_backend = kernel_backend
        self.transport = validate_transport(transport)
        if slab_bytes < 1:
            raise ExecutionError(f"slab_bytes must be >= 1, got {slab_bytes}")
        self.slab_bytes = slab_bytes
        self.on_window = on_window
        self.allowed_lateness = allowed_lateness
        self.late_policy = late_policy
        self.on_late = on_late
        self.checkpoint_dir = os.fspath(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = max_restarts
        self.replay_limit = replay_limit
        self.worker_grace_seconds = worker_grace_seconds
        #: Batch-count checkpoint cadence: bounds the replay tail (and with
        #: it recovery latency) even when no window closes for a long time.
        self._batch_cadence = max(1, replay_limit // 2)
        #: Recovery (respawn + restore + replay) needs both checkpoints and
        #: worker processes; workers=0 checkpoints without supervising.
        self._recovery_enabled = self.checkpoint_dir is not None and workers > 0
        #: Seeded driver RNG for backoff jitter (reprolint RL006: runtime
        #: paths draw no global-RNG randomness; determinism of *results*
        #: never depends on these timings).
        self._rng = random.Random(0x52504350)
        self.engine_factory = engine_factory
        self.router = ShardRouter(
            self.workload,
            workers if workers > 0 else (shards if shards is not None else 1),
            routing=routing,
        )
        self.analysis = self.router.analysis
        # Driver-side unit enumeration for the deterministic merge: every
        # (post-decomposition) query name -> (unit index, window).  Shard
        # modes agree on this order because it is derived from the full
        # workload's analysis, not from any shard's slice of it.
        self._unit_of_name: dict[str, tuple[int, Window]] = {}
        unit_index = 0
        for group in self.analysis.groups:
            for unit in execution_units(group.queries):
                for query in unit:
                    self._unit_of_name[query.name] = (unit_index, query.window)
                unit_index += 1
        self._unit_count = unit_index
        self._begin_run()

    # ------------------------------------------------------------------ #
    # Lifecycle (StreamProcessor)
    # ------------------------------------------------------------------ #
    def run(
        self,
        stream: EventStream | EventBlock | Iterable[Event],
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> ExecutionReport:
        """Consume ``stream`` in one pass and return the merged report.

        ``stream`` may be an :class:`~repro.events.block.EventBlock`: the
        whole block is ingested columnar (:meth:`process_block`), and the
        ``start``/``end`` slice is cut zero-copy by binary search.
        """
        self._begin_run()
        if isinstance(stream, EventBlock):
            try:
                self.process_block(stream.slice_time(start, end))
            except BaseException:
                self._shutdown()
                raise
            return self.finish()
        stream = slice_stream(stream, start, end)
        if self.workers == 0 and self.router.shards == 1:
            # Bulk fast path for the degenerate single in-process shard: the
            # shard executor enforces event order itself, so the refactored
            # driver costs one counter per event over a plain
            # StreamingExecutor run (the workers=0/1-parity regression gate
            # in BENCH_PR4.json watches exactly this).
            self._start_shards()
            single = self._single
            assert single is not None
            consumed = 0
            process = single.process
            if self._local_stores:
                countdown = self.batch_size
                for event in stream:
                    consumed += 1
                    process(event)
                    countdown -= 1
                    if not countdown:
                        self._consumed = consumed
                        self._checkpoint_local()
                        countdown = self.batch_size
            else:
                for event in stream:
                    consumed += 1
                    process(event)
            self._consumed = consumed
            self._shard_events[0] = consumed
            if self.allowed_lateness is None:
                self._clock = single._clock
            else:
                # Under lateness the shard's released clock trails its max
                # seen; the driver clock carries max-event-time semantics.
                self._clock = self._shard_max_time[0] = single.max_event_time
            return self.finish()
        try:
            process = self.process
            for event in stream:
                process(event)
        except BaseException:
            # A failing stream iterable (process() cleans up after itself)
            # must not orphan a live worker pool.
            self._shutdown()
            raise
        return self.finish()

    def process(self, event: Event) -> None:
        """Route one event to its shard(s), shipping full batches."""
        if self.allowed_lateness is None:
            try:
                ensure_in_order(event.time, self._clock, what="sharded executor")
            except OutOfOrderError:
                # Driver-side rejection: shut a live pool down before
                # re-raising so a caller that catches the error and drops
                # the executor does not leak worker processes blocked on
                # their input queues.
                self._shutdown()
                raise
            self._clock = event.time
        else:
            # Bounded disorder: the shard executors' reorder buffers enforce
            # the lateness horizon; the driver's clock just tracks the max.
            self._clock = max(self._clock, event.time)
        self._consumed += 1
        if not self._started:
            self._start_shards()
        if self._single is not None:
            # One in-process shard: skip routing entirely — the shard's own
            # per-type dispatch drops irrelevant events just as fast as the
            # router would, and the hot path stays one call deep.
            self._shard_events[0] += 1
            if event.time > self._shard_max_time[0]:
                self._shard_max_time[0] = event.time
            self._single.process(event)
            if self._ckpt_countdown:
                self._ckpt_countdown -= 1
                if not self._ckpt_countdown:
                    self._checkpoint_local()
                    self._ckpt_countdown = self.batch_size
            return
        for shard_id in self.router.route(event):
            self._shard_events[shard_id] += 1
            if event.time > self._shard_max_time[shard_id]:
                self._shard_max_time[shard_id] = event.time
            if self._local is not None:
                self._local[shard_id].process(event)
            else:
                buffer = self._buffers[shard_id]
                buffer.append(event)
                if len(buffer) >= self.batch_size:
                    self._ship(shard_id)
        if self._ckpt_countdown:
            # workers=0 checkpoint scheduling: poll the window-interval
            # condition once per batch_size consumed events, mirroring the
            # per-batch cadence of pool-mode workers.
            self._ckpt_countdown -= 1
            if not self._ckpt_countdown:
                self._checkpoint_local()
                self._ckpt_countdown = self.batch_size

    def process_block(self, block: EventBlock) -> None:
        """Route one in-order :class:`EventBlock`, keeping rows columnar.

        The block counterpart of :meth:`process`: the router partitions the
        block in one vectorized pass (:meth:`ShardRouter.route_block`), and
        each shard's rows stay columns end to end — in-process shards ingest
        a gathered sub-block directly, pool workers receive its framed
        columnar bytes (both transports) and rebuild a block without
        constructing per-event objects.  Results are bit-identical to
        feeding the block's events through :meth:`process` one by one.

        Internal ordering of the block is enforced by the shard executors
        (in-process: immediately; pool mode: the worker's error surfaces at
        the next driver interaction), the driver only rejects a block that
        starts before the stream clock.
        """
        count = len(block)
        if count == 0:
            return
        if self.allowed_lateness is None:
            try:
                ensure_in_order(
                    block.times[block.start], self._clock, what="sharded executor"
                )
            except OutOfOrderError:
                self._shutdown()
                raise
            self._clock = block.times[block.stop - 1]
        else:
            # The block may be internally disordered (the shard buffers
            # re-sort it); the driver clock tracks the max over its rows.
            self._clock = max(self._clock, *block.times[block.start : block.stop])
        self._consumed += count
        if not self._started:
            self._start_shards()
        if self._single is not None:
            self._shard_events[0] += count
            if self._clock > self._shard_max_time[0]:
                self._shard_max_time[0] = self._clock
            self._single.process_block(block)
        else:
            times = block.times
            base = block.start
            for shard_id, indices in enumerate(self.router.route_block(block)):
                if not indices:
                    continue
                self._shard_events[shard_id] += len(indices)
                if self.allowed_lateness is None:
                    # Sorted block: the selection is ascending, so its last
                    # row holds the shard's max — no scan needed.
                    shard_max = times[base + indices[-1]]
                else:
                    shard_max = max(times[base + local] for local in indices)
                if shard_max > self._shard_max_time[shard_id]:
                    self._shard_max_time[shard_id] = shard_max
                shard_block = (
                    block if len(indices) == count else block.select(indices)
                )
                if self._local is not None:
                    self._local[shard_id].process_block(shard_block)
                    continue
                # Preserve arrival order with any per-event process() calls
                # buffered ahead of this block.
                if self._buffers[shard_id]:
                    self._ship(shard_id)
                self._shard_batches[shard_id] += 1
                payload = shard_block.to_bytes("columnar")
                seq = self._next_seq(shard_id, "raw", payload, len(indices))
                if self._rings:
                    self._send_encoded(shard_id, seq, payload)
                else:
                    try:
                        self._put(shard_id, ("raw", seq, payload))
                    except _WorkerRecovered:
                        pass  # replayed into the respawned worker already
        if self._ckpt_countdown:
            self._ckpt_countdown -= count
            if self._ckpt_countdown <= 0:
                self._checkpoint_local()
                self._ckpt_countdown = self.batch_size

    def finish(self) -> ExecutionReport:
        """Flush every shard, merge the per-shard reports and return."""
        if not self._started:
            self._start_shards()
        wall_started = self._run_started
        if self._local is not None:
            shard_reports = [executor.finish() for executor in self._local]
        else:
            shard_reports = self._finish_workers()
        report = self._merge(shard_reports, time.perf_counter() - wall_started)
        # Full reset: the driver is an incrementally-fed StreamProcessor, so
        # a process()/finish() cycle after this one must start a fresh run
        # (fresh clock, counters and shard state), exactly like run() does.
        self._begin_run()
        return report

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shard_count(self) -> int:
        """Effective number of shards (see :class:`ShardRouter`)."""
        return self.router.shards

    @property
    def routing_mode(self) -> str:
        """The router's mode: ``"group"`` or ``"unit"``."""
        return self.router.mode

    @property
    def shard_event_counts(self) -> tuple[int, ...]:
        """Events routed to each shard so far this run."""
        return tuple(self._shard_events)

    @property
    def watermark(self) -> Optional[float]:
        """Fleet-wide completeness bound under ``allowed_lateness``.

        The minimum over per-shard watermarks (shard max event time minus
        the lateness): every shard has released all work at or below it.
        Shards that have seen no events hold nothing back — their buffers
        are empty, so the bound is vacuously true for them.  ``None`` when
        lateness is off or nothing has been routed yet.
        """
        if self.allowed_lateness is None:
            return None
        marks = [mark for mark in self._shard_max_time if mark != float("-inf")]
        if not marks:
            return None
        return min(marks) - self.allowed_lateness

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _begin_run(self) -> None:
        # A re-run that interrupts a live pool-mode run (run() called after
        # process() without finish()) must not orphan its workers: shut the
        # old pool down before the state is reset.  (__init__ calls this
        # before any transport attribute exists; finish() has already
        # drained and cleared the pool by the time it resets.)
        if getattr(self, "_processes", None):
            self._shutdown()
        self._clock = float("-inf")
        self._consumed = 0
        self._shard_events = [0] * self.router.shards
        #: Max event time routed to each shard so far (drives the merged
        #: :attr:`watermark`; each shard's own buffer tracks the same max).
        self._shard_max_time = [float("-inf")] * self.router.shards
        self._shard_batches = [0] * self.router.shards
        self._run_started = time.perf_counter()
        self._started = False
        #: In-process shard executors (workers=0); None in pool mode.
        self._local: Optional[list[StreamingExecutor]] = None
        #: Fast path for the single in-process shard.
        self._single: Optional[StreamingExecutor] = None
        self._buffers: list[list[Event]] = []
        self._processes: list = []
        self._in_queues: list = []
        self._out_queue = None
        #: Per-shard slab rings (shm transport in pool mode; else empty).
        self._rings: list[SlabRing] = []
        #: Spawn context (pool mode); kept for respawns during recovery.
        self._context = None
        #: Next driver-assigned batch sequence number, per shard.  Global
        #: across worker incarnations: a respawned worker continues the
        #: dead one's numbering, so checkpoint seq tags stay monotonic.
        self._seq: list[int] = [0] * self.router.shards
        #: Highest checkpoint-acked seq per shard (replay-buffer trim line).
        self._acked_seq: list[int] = [0] * self.router.shards
        #: Worker incarnation per shard; bumped before each respawn.
        #: Messages tagged with a stale epoch are a dead incarnation's
        #: stragglers and are dropped (duplicate-result suppression).
        self._epochs: list[int] = [0] * self.router.shards
        #: Per-shard replay buffer: (seq, kind, payload, events) of every
        #: batch shipped but not yet covered by an acked checkpoint.
        self._replay: list[deque] = [deque() for _ in range(self.router.shards)]
        #: Whether each shard's end-of-stream sentinel has been enqueued
        #: (a respawn after that point must re-send it).
        self._sentinel_sent: list[bool] = [False] * self.router.shards
        #: Per-shard checkpoint-ack pipes (recovery mode; else empty).
        self._ckpt_recv: list = []
        self._ckpt_send: list = []
        #: Respawns performed so far this run (bounded by max_restarts).
        self._restarts_done = 0
        #: Per-shard respawn count (drives that shard's backoff exponent).
        self._restart_index: list[int] = [0] * self.router.shards
        #: Final reports that surfaced while the driver was waiting on a
        #: different shard's death classification.
        self._early_reports: dict[int, ExecutionReport] = {}
        #: Recovery counters for the merged report (None: checkpointing off).
        self._recovery = RecoveryStats() if self.checkpoint_dir is not None else None
        #: Seconds process()/finish() spent blocked on backpressure or
        #: liveness polling (surfaces as ExecutionMetrics.driver_wait_seconds).
        self._wait_seconds = 0.0
        #: workers=0 checkpointing: per-shard stores plus the windows-closed
        #: mark of each local executor's last checkpoint.
        self._local_stores: list[CheckpointStore] = []
        self._local_marked: list[int] = []
        #: Events until the next workers=0 checkpoint-schedule poll.
        self._ckpt_countdown = (
            self.batch_size
            if self.workers == 0 and self.checkpoint_dir is not None
            else 0
        )

    def _start_shards(self) -> None:
        self._started = True
        self._run_started = time.perf_counter()
        if self.workers == 0:
            self._local = [
                StreamingExecutor(
                    list(self.router.shard_queries(shard_id)),
                    self.engine_factory,
                    on_window=self.on_window,
                    lazy_open=self.lazy_open,
                    shared_windows=self.shared_windows,
                    optimizer=self.optimizer,
                    burst_size=self.burst_size,
                    kernel_backend=self.kernel_backend,
                    allowed_lateness=self.allowed_lateness,
                    late_policy=self.late_policy,
                    on_late=self.on_late,
                )
                for shard_id in range(self.router.shards)
            ]
            if self.router.shards == 1:
                self._single = self._local[0]
            if self.checkpoint_dir is not None:
                self._local_stores = [
                    CheckpointStore(self.checkpoint_dir, shard_id)
                    for shard_id in range(self.router.shards)
                ]
                self._local_marked = [0] * self.router.shards
            return
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self._context = context
        self._buffers = [[] for _ in range(self.router.shards)]
        self._in_queues = [
            context.Queue(maxsize=self.max_inflight) for _ in range(self.router.shards)
        ]
        self._out_queue = context.Queue()
        if self.transport == "shm":
            self._rings = [
                SlabRing(
                    context,
                    slots=ring_slots(self.max_inflight),
                    slab_bytes=self.slab_bytes,
                )
                for _ in range(self.router.shards)
            ]
        if self._recovery_enabled:
            self._ckpt_recv = []
            self._ckpt_send = []
            for _ in range(self.router.shards):
                recv, send = context.Pipe(duplex=False)
                self._ckpt_recv.append(recv)
                self._ckpt_send.append(send)
        self._processes = [None] * self.router.shards
        for shard_id in range(self.router.shards):
            self._spawn_worker(shard_id, resume=False)

    def _spawn_worker(self, shard_id: int, *, resume: bool) -> None:
        """Start (or restart) one shard worker on the current channels."""
        context = self._context
        assert context is not None
        if self._rings:
            ring = self._rings[shard_id]
            channel = (ring.name, ring.slab_bytes, ring.ack_send)
        else:
            channel = None
        recovery = None
        if self.checkpoint_dir is not None:
            recovery = (
                self.checkpoint_dir,
                self.checkpoint_interval,
                self._batch_cadence,
                self._epochs[shard_id],
                resume,
                self._ckpt_send[shard_id] if self._ckpt_send else None,
            )
        process = context.Process(
            target=_shard_worker_main,
            args=(
                shard_id,
                self.router.shard_queries(shard_id),
                self.engine_factory,
                self.lazy_open,
                self.shared_windows,
                self.optimizer,
                self.burst_size,
                self.kernel_backend,
                self.allowed_lateness,
                self.late_policy,
                channel,
                self._in_queues[shard_id],
                self._out_queue,
                recovery,
            ),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        process.start()
        self._processes[shard_id] = process

    def _checkpoint_local(self) -> None:
        """workers=0 checkpointing: snapshot each local shard executor whose
        window-boundary interval elapsed.  Epoch is always 0 (there are no
        respawns in-process); the consumed-event count stands in for the
        pool mode's batch seq — both only need to be monotonic."""
        assert self._local is not None and self._recovery is not None
        for shard_id, executor in enumerate(self._local):
            if (
                executor.windows_closed - self._local_marked[shard_id]
                >= self.checkpoint_interval
            ):
                nbytes = self._local_stores[shard_id].write(
                    0, self._consumed, executor.snapshot_state()
                )
                self._local_marked[shard_id] = executor.windows_closed
                self._recovery.checkpoints += 1
                self._recovery.checkpoint_bytes += nbytes

    def _next_seq(self, shard_id: int, kind: str, payload, events: int) -> int:
        """Assign the next batch seq and record it in the replay buffer.

        ``payload`` is whatever re-shipping needs: the framed columnar
        bytes (shm's slab *and* raw messages both replay as ``raw`` — a
        dead worker's ring is torn down with it, so replay must not
        reference slabs) or the :class:`EventBatch` (pickle transport).
        """
        self._seq[shard_id] += 1
        seq = self._seq[shard_id]
        if self._recovery_enabled:
            self._wait_replay_capacity(shard_id)
            self._replay[shard_id].append((seq, kind, payload, events))
        return seq

    def _ship(self, shard_id: int) -> None:
        buffer = self._buffers[shard_id]
        self._shard_batches[shard_id] += 1
        events = len(buffer)
        if self._rings:
            payload = columnar.encode_events(buffer, columnar.CODEC_COLUMNAR)
            buffer.clear()
            seq = self._next_seq(shard_id, "raw", payload, events)
            self._send_encoded(shard_id, seq, payload)
            return
        batch = EventBatch.from_events(buffer)
        buffer.clear()
        seq = self._next_seq(shard_id, "batch", batch, events)
        try:
            self._put(shard_id, ("batch", seq, batch))
        except _WorkerRecovered:
            # The batch is in the replay buffer and was re-shipped to the
            # new incarnation as part of recovery; nothing left to send.
            pass

    def _send_encoded(self, shard_id: int, seq: int, payload: bytes) -> None:
        """Ship framed columnar bytes: through a slab when one fits, else
        as a raw queue message (oversized batches, end-of-stream tails)."""
        try:
            ring = self._rings[shard_id]
            if ring.fits(payload):
                slab = ring.acquire(
                    poll_seconds=_POLL_SECONDS,
                    on_stall=lambda: self._check_alive(shard_id),
                )
                ring.write(slab, payload)
                self._put(shard_id, ("slab", seq, slab, len(payload)))
            else:
                self._put(shard_id, ("raw", seq, payload))
        except _WorkerRecovered:
            # Recovery replayed the buffer (this batch included) into the
            # respawned worker's fresh ring/queue; the interrupted send —
            # possibly holding a slab of the now-unlinked old ring — is
            # simply abandoned.
            pass

    def _check_alive(self, shard_id: int) -> None:
        process = self._processes[shard_id]
        if process is None or not process.is_alive():
            self._handle_worker_death(shard_id)

    def _put(self, shard_id: int, item) -> None:
        """Bounded put: blocks on a full queue (backpressure) but never on a
        dead worker — liveness is re-checked between jittered, exponentially
        backed-off waits, and the blocked time is surfaced in
        :attr:`ExecutionMetrics.driver_wait_seconds`."""
        queue = self._in_queues[shard_id]
        backoff = _Backoff(self._rng)
        while True:
            try:
                queue.put_nowait(item)
                return
            except Full:
                self._check_alive(shard_id)
                self._wait_seconds += backoff.sleep()

    # ------------------------------------------------------------------ #
    # Supervision and recovery
    # ------------------------------------------------------------------ #
    def _drain_checkpoint_acks(self, shard_id: int) -> None:
        """Fold durable-checkpoint acks into the stats and trim the replay
        buffer: batches a restorable checkpoint covers never need replaying."""
        if not self._ckpt_recv:
            return
        recv = self._ckpt_recv[shard_id]
        try:
            while recv.poll():
                _epoch, seq, nbytes = recv.recv()
                if self._recovery is not None:
                    self._recovery.checkpoints += 1
                    self._recovery.checkpoint_bytes += nbytes
                if seq > self._acked_seq[shard_id]:
                    self._acked_seq[shard_id] = seq
                    replay = self._replay[shard_id]
                    while replay and replay[0][0] <= seq:
                        replay.popleft()
        except (OSError, EOFError):  # pragma: no cover - pipe torn mid-drain
            pass

    def _wait_replay_capacity(self, shard_id: int) -> None:
        """Backpressure on the replay buffer: block until checkpoint acks
        (or a recovery, which trims to the restored checkpoint's tail) make
        room.  The buffer is what makes recovery lossless — it is never
        silently dropped from."""
        replay = self._replay[shard_id]
        self._drain_checkpoint_acks(shard_id)
        if len(replay) < self.replay_limit:
            return
        backoff = _Backoff(self._rng)
        while len(self._replay[shard_id]) >= self.replay_limit:
            try:
                self._check_alive(shard_id)
            except _WorkerRecovered:
                continue
            self._wait_seconds += backoff.sleep()
            self._drain_checkpoint_acks(shard_id)

    def _can_recover(self) -> bool:
        return self._recovery_enabled and self._restarts_done < self.max_restarts

    def _handle_worker_death(self, shard_id: int) -> None:
        """Classify a dead worker and either recover it or raise.

        Exit code 0 means the worker *function* returned — its final
        message (report or traceback) is in flight through the result
        queue's feeder thread, so wait the grace period out for it.  Any
        other exit code (a signal shows as its negative) means no message
        is coming: classify immediately, which is what makes SIGKILL
        recovery fast.  Recovery (when enabled and restarts remain) ends
        by raising :class:`_WorkerRecovered` so the interrupted driver
        operation unwinds; otherwise the pool is shut down and a typed
        :class:`~repro.errors.WorkerCrashError` raised.
        """
        process = self._processes[shard_id]
        exit_code: Optional[int] = None
        if process is not None:
            process.join(timeout=1.0)
            exit_code = process.exitcode
        if exit_code == 0 and self._await_message_from(shard_id):
            return
        if self._can_recover():
            self._recover(shard_id)
            raise _WorkerRecovered(shard_id)
        raise self._worker_crash_error(shard_id, exit_code)

    def _await_message_from(self, shard_id: int) -> bool:
        """Drain the result queue for up to the grace period, looking for
        the dead worker's final message.  Returns True when its report
        arrived (stashed in ``_early_reports``); raises on its traceback.
        Other shards' reports surfacing meanwhile are stashed too, never
        dropped."""
        deadline = time.perf_counter() + self.worker_grace_seconds
        while time.perf_counter() < deadline:
            waited = time.perf_counter()
            try:
                sender, epoch, status, payload = self._out_queue.get(
                    timeout=_POLL_SECONDS
                )
            except Empty:
                self._wait_seconds += time.perf_counter() - waited
                continue
            if epoch != self._epochs[sender]:
                continue  # a dead incarnation's straggler
            if status == "error":
                self._shutdown()
                raise ExecutionError(f"shard worker {sender} failed:\n{payload}")
            self._early_reports[sender] = payload
            if sender == shard_id:
                return True
        return False

    def _worker_crash_error(self, shard_id: int, exit_code: Optional[int]) -> WorkerCrashError:
        last_acked = self._rings[shard_id].last_acked if self._rings else None
        self._shutdown()
        detail = f"exit code {exit_code}"
        if exit_code is not None and exit_code < 0:
            try:
                detail += f", signal {signal.Signals(-exit_code).name}"
            except ValueError:  # pragma: no cover - unknown signal number
                pass
        return WorkerCrashError(
            f"shard worker {shard_id} died without a report ({detail})",
            shard_id=shard_id,
            exit_code=exit_code,
            last_acked_slab=last_acked,
        )

    def _recover(self, shard_id: int) -> None:
        """Respawn a dead shard worker and make its loss unobservable.

        The sequence: capped-exponential-backoff pause; harvest the dead
        incarnation's checkpoint acks; retire its channels (closing the
        ring unlinks the dead worker's shm segment); sweep its orphaned
        checkpoint temp files; bump the shard's epoch (stale-message
        suppression); rebuild the channels; spawn the new incarnation with
        ``resume=True`` (it restores the shard's last good checkpoint);
        replay the post-checkpoint tail from the replay buffer — and the
        end-of-stream sentinel, if the dead worker had already been sent
        it.  A nested recovery (the respawn dies mid-replay) restarts the
        replay itself, so this invocation just stops.
        """
        assert self._recovery is not None and self.checkpoint_dir is not None
        self._restarts_done += 1
        self._restart_index[shard_id] += 1
        self._recovery.restarts += 1
        exponent = min(
            self._restart_index[shard_id] - 1, _RESTART_BACKOFF_MAX_EXPONENT
        )
        delay = min(
            _RESTART_BACKOFF_CAP_SECONDS,
            _RESTART_BACKOFF_BASE_SECONDS * (2.0**exponent),
        ) * (0.5 + self._rng.random())
        time.sleep(delay)
        self._wait_seconds += delay
        process = self._processes[shard_id]
        if process is not None:
            process.join(timeout=1.0)
        self._drain_checkpoint_acks(shard_id)
        old_queue = self._in_queues[shard_id]
        old_queue.close()
        old_queue.cancel_join_thread()
        if self._rings:
            self._rings[shard_id].close()
        if self._ckpt_recv:
            for end in (self._ckpt_recv[shard_id], self._ckpt_send[shard_id]):
                try:
                    end.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        # The dead worker's async writer is dead with it, so its leftover
        # temp files are deletable garbage — and its last *finished*
        # checkpoint is this recovery's restore point.
        store = CheckpointStore(self.checkpoint_dir, shard_id)
        store.clean_temporaries()
        latest = store.latest()
        restore_seq = latest.seq if latest is not None else 0
        replay = self._replay[shard_id]
        while replay and replay[0][0] <= restore_seq:
            replay.popleft()
        if restore_seq > self._acked_seq[shard_id]:
            self._acked_seq[shard_id] = restore_seq
        self._epochs[shard_id] += 1
        epoch = self._epochs[shard_id]
        context = self._context
        assert context is not None
        self._in_queues[shard_id] = context.Queue(maxsize=self.max_inflight)
        if self._rings:
            self._rings[shard_id] = SlabRing(
                context,
                slots=ring_slots(self.max_inflight),
                slab_bytes=self.slab_bytes,
            )
        if self._ckpt_recv:
            recv, send = context.Pipe(duplex=False)
            self._ckpt_recv[shard_id] = recv
            self._ckpt_send[shard_id] = send
        self._spawn_worker(shard_id, resume=True)
        for seq, kind, payload, events in list(replay):
            if self._epochs[shard_id] != epoch:
                return
            self._recovery.replayed_batches += 1
            self._recovery.replayed_events += events
            if kind == "raw":
                self._send_encoded(shard_id, seq, payload)
            else:
                try:
                    self._put(shard_id, (kind, seq, payload))
                except _WorkerRecovered:
                    return
        if self._sentinel_sent[shard_id] and self._epochs[shard_id] == epoch:
            try:
                self._put(shard_id, None)
            except _WorkerRecovered:
                pass

    # ------------------------------------------------------------------ #
    # End of stream
    # ------------------------------------------------------------------ #
    def _finish_workers(self) -> list[ExecutionReport]:
        # Ship every shard's residual batch and sentinel in a round-robin of
        # non-blocking puts: a blocking per-shard pass would hold shard
        # i+1's sentinel hostage to shard i's backpressured queue, leaving
        # drained workers idle through the end-of-stream tail.
        pending: dict[int, list] = {}
        for shard_id in range(self.router.shards):
            items: list = []
            buffer = self._buffers[shard_id]
            if buffer:
                events = len(buffer)
                self._shard_batches[shard_id] += 1
                if self._rings:
                    # Tail batches ride the raw fallback: acquiring a slab
                    # can block on worker acks, which would defeat this
                    # round-robin of strictly non-blocking puts.
                    payload = columnar.encode_events(buffer, columnar.CODEC_COLUMNAR)
                    seq = self._next_seq(shard_id, "raw", payload, events)
                    items.append(("raw", seq, payload))
                else:
                    batch = EventBatch.from_events(buffer)
                    seq = self._next_seq(shard_id, "batch", batch, events)
                    items.append(("batch", seq, batch))
                buffer.clear()
            items.append(None)
            pending[shard_id] = items
        backoff = _Backoff(self._rng)
        while pending:
            progressed = False
            for shard_id in list(pending):
                items = pending[shard_id]
                while items:
                    try:
                        self._in_queues[shard_id].put_nowait(items[0])
                    except Full:
                        break
                    if items.pop(0) is None:
                        self._sentinel_sent[shard_id] = True
                    progressed = True
                if not items:
                    del pending[shard_id]
            if pending and not progressed:
                for shard_id in list(pending):
                    try:
                        self._check_alive(shard_id)
                    except _WorkerRecovered:
                        # Recovery replayed the shard's buffered batches
                        # (and, when it had landed, the sentinel) into the
                        # new incarnation; only a not-yet-sent sentinel
                        # stays this loop's responsibility.
                        pending[shard_id] = [
                            item for item in pending[shard_id] if item is None
                        ]
                        if not pending[shard_id]:
                            del pending[shard_id]
                        progressed = True
                if progressed:
                    backoff.reset()
                else:
                    self._wait_seconds += backoff.sleep()
            elif progressed:
                backoff.reset()
        collected: dict[int, ExecutionReport] = dict(self._early_reports)
        while len(collected) < self.router.shards:
            waited = time.perf_counter()
            try:
                shard_id, epoch, status, payload = self._out_queue.get(
                    timeout=_POLL_SECONDS
                )
            except Empty:
                self._wait_seconds += time.perf_counter() - waited
                failed = [
                    shard_id
                    for shard_id, process in enumerate(self._processes)
                    if shard_id not in collected
                    and (process is None or not process.is_alive())
                ]
                if not failed:
                    continue
                try:
                    self._handle_worker_death(failed[0])
                except _WorkerRecovered:
                    pass
                collected.update(self._early_reports)
                continue
            if epoch != self._epochs[shard_id] or shard_id in collected:
                continue  # a dead incarnation's straggler, or a duplicate
            if status == "error":
                self._shutdown()
                raise ExecutionError(f"shard worker {shard_id} failed:\n{payload}")
            collected[shard_id] = payload
        for process in self._processes:
            if process is not None:
                process.join(timeout=5.0)
        for shard_id in range(self.router.shards):
            self._drain_checkpoint_acks(shard_id)
        self._shutdown(terminate=False)
        return [collected[shard_id] for shard_id in range(self.router.shards)]

    def _shutdown(self, *, terminate: bool = True) -> None:
        for process in self._processes:
            if process is None:
                continue
            if terminate and process.is_alive():
                process.terminate()
            process.join(timeout=1.0)
        for queue in self._in_queues:
            queue.close()
            queue.cancel_join_thread()
        if self._out_queue is not None:
            self._out_queue.close()
            self._out_queue.cancel_join_thread()
        # Unlink every ring segment after the workers are gone (joined or
        # terminated above) — the "no leaked segments" half of the shm
        # transport contract; close() is idempotent and also detaches the
        # last-resort finalizer.
        for ring in self._rings:
            ring.close()
        for end in (*self._ckpt_recv, *self._ckpt_send):
            try:
                end.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._processes = []
        self._in_queues = []
        self._out_queue = None
        self._rings = []
        self._ckpt_recv = []
        self._ckpt_send = []

    # ------------------------------------------------------------------ #
    # Deterministic merge
    # ------------------------------------------------------------------ #
    def _partition_order(self, partition: PartitionResult) -> tuple:
        for name in partition.results:
            placed = self._unit_of_name.get(name)
            if placed is not None:
                unit_index, window = placed
                window_end = window.instance_bounds(partition.window_index)[1]
                return (
                    window_end,
                    unit_index,
                    group_sort_key(partition.group_key),
                    partition.window_index,
                )
        return (  # pragma: no cover - engines always report unit queries
            partition.window_start,
            -1,
            group_sort_key(partition.group_key),
            partition.window_index,
        )

    def _merge(
        self, shard_reports: Sequence[ExecutionReport], wall_seconds: float
    ) -> ExecutionReport:
        # The shard executors resolved the engine label already; building an
        # engine here just to read its name would be pure waste.
        report = ExecutionReport(engine_name=shard_reports[0].engine_name)
        metrics = report.metrics
        merged_statistics: Optional[OptimizerStatistics] = None
        for sub in shard_reports:
            metrics.merge(sub.metrics)
            if sub.optimizer_statistics is not None:
                if merged_statistics is None:
                    merged_statistics = OptimizerStatistics()
                merged_statistics.merge(sub.optimizer_statistics)
        # merge() sums shard counts, but an event routed to two unit-mode
        # shards is still one stream event — and wall clock is the driver's
        # elapsed time, not any shard's.
        metrics.stream_events = self._consumed
        metrics.wall_seconds = wall_seconds
        # Driver-side blocked time (backpressure, liveness polling, restart
        # backoff) is a property of this run's router, not of any shard.
        metrics.driver_wait_seconds = self._wait_seconds
        # Concurrent gauges: parallel shards hold their state *at the same
        # time*, so merge()'s max-of-peaks (right for re-runs of one
        # pipeline) would under-report an N-shard run by up to N.  Sum the
        # per-shard peaks instead — an upper bound, since shards need not
        # peak at the same instant.
        metrics.peak_memory_units = sum(
            sub.metrics.peak_memory_units for sub in shard_reports
        )
        metrics.peak_active_windows = sum(
            sub.metrics.peak_active_windows for sub in shard_reports
        )
        report.optimizer_statistics = merged_statistics
        merged = [
            partition for sub in shard_reports for partition in sub.partition_results
        ]
        if len(shard_reports) > 1 or self._unit_count > 1:
            merged.sort(key=self._partition_order)
        # else: one shard, one unit — the shard's emission order (close
        # sweeps ordered by (end, group key) with non-decreasing ends) IS
        # the canonical (window end, unit, group) order; skip the re-sort.
        report.partition_results = merged
        if len(shard_reports) == 1:
            # One shard saw the whole stream: its totals are already the
            # complete, recombined answer — rebuilding them would only
            # re-add the same partitions.  (Zero-defaults still need the
            # driver's consumed count: the router may have dropped every
            # event before the shard, e.g. an all-irrelevant stream.)
            report.totals.update(shard_reports[0].totals)
            if self._consumed:
                for name in self._unit_of_name:
                    report.totals.setdefault(name, 0.0)
        else:
            # Totals are rebuilt from the merged partitions in their
            # canonical order — never by summing per-shard totals, whose
            # grouping would depend on the shard count.
            totals = report.totals
            for partition in merged:
                for name, value in partition.results.items():
                    if value != 0.0:
                        totals[name] = totals.get(name, 0.0) + value
            if self._consumed:
                for name in self._unit_of_name:
                    totals.setdefault(name, 0.0)
            recombine_decompositions(self.analysis.decompositions, merged, totals)
        report.shards = [
            ShardReport(
                shard_id=shard_id,
                events=self._shard_events[shard_id],
                batches=self._shard_batches[shard_id],
                report=sub,
            )
            for shard_id, sub in enumerate(shard_reports)
        ]
        report.recovery = self._recovery
        return report


def run_sharded(
    workload: Workload | Sequence[Query],
    stream: EventStream | EventBlock | Iterable[Event],
    engine_factory: EngineFactory = HamletEngine,
    *,
    workers: int = 0,
    shards: Optional[int] = None,
    routing: str = "auto",
    batch_size: int = 512,
    max_inflight: int = 8,
    lazy_open: bool = True,
    shared_windows: bool = True,
    optimizer: OptimizerSpec = None,
    burst_size: Optional[int] = None,
    kernel_backend: KernelBackendSpec = None,
    transport: str = "pickle",
    slab_bytes: int = DEFAULT_SLAB_BYTES,
    allowed_lateness: Optional[float] = None,
    late_policy: str = "raise",
    on_late: Optional[Callable[[Event], None]] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval: int = 16,
    max_restarts: int = 3,
    replay_limit: int = 64,
) -> ExecutionReport:
    """One-shot convenience wrapper around :class:`ShardedStreamingExecutor`."""
    executor = ShardedStreamingExecutor(
        workload,
        engine_factory,
        workers=workers,
        shards=shards,
        routing=routing,
        batch_size=batch_size,
        max_inflight=max_inflight,
        lazy_open=lazy_open,
        shared_windows=shared_windows,
        optimizer=optimizer,
        burst_size=burst_size,
        kernel_backend=kernel_backend,
        transport=transport,
        slab_bytes=slab_bytes,
        allowed_lateness=allowed_lateness,
        late_policy=late_policy,
        on_late=on_late,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        max_restarts=max_restarts,
        replay_limit=replay_limit,
    )
    return executor.run(stream)
