"""Versioned, checksummed on-disk checkpoints for the streaming runtime.

A checkpoint is one :meth:`~repro.runtime.streaming.StreamingExecutor.
snapshot_state` payload wrapped in a fixed binary container — the same
schema-versioned-header discipline as the columnar wire format's ``RPEB``
frame (:mod:`repro.events.columnar`):

====== ===== =========================================================
offset bytes field
====== ===== =========================================================
0      4     magic ``RPCP``
4      1     container version (:data:`VERSION`)
5      1     flags (reserved, 0)
6      2     reserved (0)
8      8     checkpoint epoch (big-endian; bumped per worker respawn)
16     8     sequence number of the last batch folded into the snapshot
24     8     payload length
32     16    BLAKE2b-128 digest of the payload
48     ...   payload (opaque snapshot pickle)
====== ===== =========================================================

Everything that touches disk is **atomic**: the blob is written to a
temp file in the checkpoint directory, flushed and fsynced, then
``os.replace``\\ d over the final name (reprolint RL009 enforces this
write-temp + fsync + rename shape statically).  A per-shard ``.latest``
pointer file — updated with the same atomic dance — names the last good
checkpoint; readers fall back to a directory scan (newest valid first)
when the pointer is stale or its target corrupt, so a crash at any
instant leaves either the previous checkpoint or the new one readable,
never neither.

:class:`CheckpointStore` owns one shard's files; :class:`AsyncCheckpoint
Writer` moves the fsync latency off the worker's hot path onto a single
background thread (checkpoints are ordered per shard, so one thread is
exactly the right amount of concurrency) and acks each durable write —
``(epoch, seq, nbytes)`` — back to the driver, which uses the acks to
trim its replay buffer.
"""

from __future__ import annotations

import hashlib
import os
import queue
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.errors import CheckpointError

__all__ = [
    "AsyncCheckpointWriter",
    "Checkpoint",
    "CheckpointStore",
    "MAGIC",
    "TEMP_SUFFIX",
    "VERSION",
    "pack_checkpoint",
    "unpack_checkpoint",
]

#: Container magic, doubling as a human-readable file signature.
MAGIC = b"RPCP"
#: Container format version (header layout + digest algorithm).
VERSION = 1
#: Suffix of in-progress writes; a surviving ``*.tmp`` file is always
#: garbage (the atomic rename never happened) and is safe to delete.
TEMP_SUFFIX = ".tmp"
#: File suffix of finished checkpoints.
CHECKPOINT_SUFFIX = ".ckpt"

#: magic, version, flags, reserved, epoch, seq, payload length, digest.
_HEADER = struct.Struct(">4sBBHQQQ16s")


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=16).digest()


def pack_checkpoint(epoch: int, seq: int, payload: bytes) -> bytes:
    """Wrap a snapshot payload in the versioned, checksummed container."""
    header = _HEADER.pack(MAGIC, VERSION, 0, 0, epoch, seq, len(payload), _digest(payload))
    return header + payload


def unpack_checkpoint(blob: bytes) -> "Checkpoint":
    """Parse and verify a container; raises :class:`CheckpointError`."""
    if len(blob) < _HEADER.size:
        raise CheckpointError(
            f"checkpoint truncated: {len(blob)} bytes < {_HEADER.size}-byte header"
        )
    magic, version, _flags, _reserved, epoch, seq, length, digest = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CheckpointError(f"bad checkpoint magic {magic!r} (want {MAGIC!r})")
    if version != VERSION:
        raise CheckpointError(
            f"unsupported checkpoint container version {version} (want {VERSION})"
        )
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        raise CheckpointError(
            f"checkpoint truncated: header promises {length} payload bytes, "
            f"found {len(payload)}"
        )
    if _digest(payload) != digest:
        raise CheckpointError("checkpoint payload digest mismatch (corrupt or torn write)")
    return Checkpoint(epoch=epoch, seq=seq, payload=payload)


@dataclass(frozen=True)
class Checkpoint:
    """One verified checkpoint: its identity tags plus the snapshot payload."""

    #: Worker incarnation that wrote the snapshot (respawns bump it).
    epoch: int
    #: Driver-assigned sequence number of the last batch folded in.
    seq: int
    #: The opaque :meth:`StreamingExecutor.snapshot_state` payload.
    payload: bytes


def _atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Write-temp + fsync + rename: the crash-safe replacement of ``path``."""
    temp = path.with_name(path.name + TEMP_SUFFIX)
    with open(temp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def _fsync_directory(directory: Path) -> None:
    """Persist a rename by fsyncing its directory (best-effort per FS)."""
    descriptor = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(descriptor)
    except OSError:  # pragma: no cover - some filesystems reject dir fsync
        pass
    finally:
        os.close(descriptor)


class CheckpointStore:
    """One shard's checkpoint files inside a shared checkpoint directory.

    File names order lexicographically by ``(epoch, seq)`` thanks to the
    zero padding, so "newest" never needs header reads.  ``keep`` bounds
    the footprint: after every successful write all but the newest
    ``keep`` checkpoints of the shard are pruned.
    """

    def __init__(self, directory: str | os.PathLike, shard_id: int, *, keep: int = 2) -> None:
        if keep < 1:
            raise CheckpointError(f"checkpoint store must keep >= 1 files, got {keep}")
        self.directory = Path(directory)
        self.shard_id = shard_id
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Naming
    # ------------------------------------------------------------------ #
    @property
    def _prefix(self) -> str:
        return f"shard{self.shard_id:03d}"

    @property
    def _pointer_path(self) -> Path:
        return self.directory / f"{self._prefix}.latest"

    def _checkpoint_path(self, epoch: int, seq: int) -> Path:
        return self.directory / (
            f"{self._prefix}-e{epoch:08d}-s{seq:012d}{CHECKPOINT_SUFFIX}"
        )

    def _candidates(self) -> list[Path]:
        """Finished checkpoint files of this shard, newest first."""
        pattern = f"{self._prefix}-e*{CHECKPOINT_SUFFIX}"
        return sorted(self.directory.glob(pattern), key=lambda p: p.name, reverse=True)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def write(self, epoch: int, seq: int, payload: bytes) -> int:
        """Durably store one snapshot; returns the container size in bytes.

        Ordering matters for crash safety: the checkpoint lands (atomic,
        fsynced) before the pointer moves to it, and pruning runs last —
        at every instant the pointer names a complete, verified-writable
        file, and a crash between steps costs at most some garbage that
        the next write's prune collects.
        """
        blob = pack_checkpoint(epoch, seq, payload)
        path = self._checkpoint_path(epoch, seq)
        _atomic_write_bytes(path, blob)
        _atomic_write_bytes(self._pointer_path, path.name.encode("utf-8"))
        _fsync_directory(self.directory)
        self._prune(path.name)
        return len(blob)

    def _prune(self, pointed: str) -> None:
        for stale in self._candidates()[self.keep :]:
            if stale.name == pointed:  # pragma: no cover - keep >= 1 shields it
                continue
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - best-effort garbage collection
                pass

    def clean_temporaries(self) -> int:
        """Delete orphaned in-progress files (crash debris); returns count.

        Only safe while no writer is active for this shard — the driver
        calls it during recovery, after the shard's worker (and with it
        the worker's async writer thread) is known dead.
        """
        removed = 0
        for temp in self.directory.glob(f"{self._prefix}*{TEMP_SUFFIX}"):
            try:
                temp.unlink()
                removed += 1
            except OSError:  # pragma: no cover - already gone
                pass
        return removed

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def latest(self) -> Optional[Checkpoint]:
        """The newest *valid* checkpoint, or None when none exists.

        The ``.latest`` pointer is tried first; a missing, stale or
        corrupt target falls back to scanning the directory newest-first
        and returning the first checkpoint whose digest verifies — the
        "last-good" guarantee that makes torn writes recoverable.
        """
        ordered: list[Path] = []
        try:
            pointed = self._pointer_path.read_text(encoding="utf-8").strip()
        except OSError:
            pointed = ""
        if pointed and "/" not in pointed:
            ordered.append(self.directory / pointed)
        for candidate in self._candidates():
            if not ordered or candidate != ordered[0]:
                ordered.append(candidate)
        for candidate in ordered:
            try:
                blob = candidate.read_bytes()
            except OSError:
                continue
            try:
                return unpack_checkpoint(blob)
            except CheckpointError:
                continue
        return None


class AsyncCheckpointWriter:
    """Serialize checkpoint writes onto one background thread.

    Snapshots are taken synchronously (the executor's state must not move
    while it is pickled) but the expensive part — container framing,
    write, double fsync, rename — happens here, off the event path.  One
    thread per shard is exactly the needed concurrency: checkpoints of a
    shard are ordered, and cross-shard parallelism comes from the worker
    processes themselves.

    ``ack`` (when given) is a pipe-like object whose ``send`` receives
    ``(epoch, seq, nbytes)`` after each *durable* write; the driver trims
    its replay buffer on these acks, so they are only ever sent once the
    checkpoint they describe can actually be restored.
    """

    def __init__(self, store: CheckpointStore, ack=None) -> None:
        self._store = store
        self._ack = ack
        self._queue: "queue.Queue[Optional[tuple[int, int, bytes]]]" = queue.Queue()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._drain,
            name=f"repro-ckpt-{store.shard_id:03d}",
            daemon=True,
        )
        self._thread.start()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            epoch, seq, payload = item
            try:
                nbytes = self._store.write(epoch, seq, payload)
            except Exception as error:
                # Surfaced to the submitter on its next submit()/close():
                # the writer thread has no driver channel of its own.
                self._error = error
                return
            if self._ack is not None:
                try:
                    self._ack.send((epoch, seq, nbytes))
                except OSError:  # pragma: no cover - driver side already gone
                    return

    def submit(self, epoch: int, seq: int, payload: bytes) -> None:
        """Queue one snapshot for durable writing (raises prior failures)."""
        if self._error is not None:
            raise CheckpointError(
                f"checkpoint writer failed: {self._error!r}"
            ) from self._error
        self._queue.put((epoch, seq, payload))

    def close(self) -> None:
        """Drain pending writes, stop the thread, re-raise any failure."""
        self._queue.put(None)
        self._thread.join()
        if self._error is not None:
            raise CheckpointError(
                f"checkpoint writer failed: {self._error!r}"
            ) from self._error

    def abort(self) -> None:
        """Best-effort shutdown for error paths; never raises."""
        self._queue.put(None)
        self._thread.join(timeout=5.0)
