"""Zero-copy shared-memory batch transport for the sharded runtime.

With the pickle transport every :class:`~repro.events.batch.EventBatch`
crosses a worker queue as a pickle blob: the driver serializes it in the
queue's feeder thread, the bytes are copied through a pipe, and the worker
deserializes row tuples before a single event exists.  This module replaces
the blob with a **ring of reusable shared-memory slabs** per (driver,
worker) channel:

* the driver encodes a batch once into the columnar codec
  (:mod:`repro.events.columnar`) directly inside a free slab of the ring —
  one ``memcpy``-shaped write into the mapped segment;
* the hand-off through the bounded input queue is just ``("slab", index,
  nbytes)`` — a few dozen bytes instead of the whole batch;
* the worker decodes events straight out of the mapped slab (typed columns
  are C-speed ``frombytes`` reads) and then *acks* the slab index back over
  a pipe, recycling it for the driver's next acquire;
* a batch that outgrows the slab (or the end-of-stream residual) falls back
  to ``("raw", payload)`` through the queue — same framed bytes, no slab.

Crash and teardown discipline (the "no leaked segments" contract, checked
by the transport tests and a CI sweep of ``/dev/shm``):

* the **driver** owns the segment: it creates it, and unlinks it in
  ``ShardedStreamingExecutor._shutdown`` on every path — clean finish,
  worker crash, driver-side error.  A ``weakref.finalize`` guard unlinks
  even if an executor is dropped mid-run without ``finish()``;
* **workers** only attach.  On interpreters without ``track=False``
  (< 3.13) the attach is explicitly unregistered from the worker's
  ``resource_tracker``, which would otherwise unlink the live segment when
  the first worker exits (the well-known premature-cleanup hazard);
* a driver killed hard (``SIGKILL``) leaves cleanup to its resource
  tracker process, which outlives it precisely for this purpose.

Segment names carry the ``repro-ring-`` prefix so humans (and the CI leak
check) can attribute stray segments at a glance.
"""

from __future__ import annotations

import os
import secrets
import weakref
from multiprocessing import shared_memory
from typing import Callable, Optional

from repro.errors import ExecutionError

__all__ = ["SlabReader", "SlabRing", "TRANSPORTS", "attach_segment"]

#: Transport names the sharded executor accepts.
TRANSPORTS = ("pickle", "shm")

#: Recognizable prefix of every ring segment (``/dev/shm/repro-ring-*``).
SEGMENT_PREFIX = "repro-ring-"

#: Default slab payload capacity.  A 512-event batch of the simulators'
#: numeric payloads encodes to a few tens of KiB; oversized batches fall
#: back to the queue, so the cap trades /dev/shm footprint for fallback
#: frequency rather than correctness.
DEFAULT_SLAB_BYTES = 256 * 1024


def _unlink_quietly(
    segment: shared_memory.SharedMemory, owner_pid: Optional[int] = None
) -> None:
    # Fork-started workers inherit the driver's ring objects, finalizers
    # included; only the creating process may unlink, or the first worker
    # to exit would tear the live segment out from under the rest.
    if owner_pid is not None and os.getpid() != owner_pid:
        return
    try:
        segment.close()
    except OSError:  # pragma: no cover - close is best-effort on teardown
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except OSError:  # pragma: no cover - already reclaimed elsewhere
        pass


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup ownership.

    On 3.13+ ``track=False`` skips resource-tracker registration outright.
    Before that, attaching registers the name with the resource tracker —
    but shard workers share the *driver's* tracker process (the fd is
    inherited through ``Process`` under both fork and spawn), whose name
    cache is a set: the duplicate registration is a no-op and the driver's
    single ``unlink`` balances it.  Crucially the worker must **not**
    unregister on exit — with a shared tracker that would strip the
    driver's registration and forfeit crash cleanup.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class SlabRing:
    """Driver-side ring of reusable slabs over one shared-memory segment.

    One ring serves one (driver, worker) channel.  Slab indices cycle
    through three states: *free* (driver-owned), *in flight* (referenced by
    a queued message), *acked* (the worker sent the index back over the ack
    pipe after decoding).  ``slots`` exceeds the channel's queue bound, so
    an acquire normally never waits; when it must (worker mid-decode with
    the queue full), it polls the ack pipe and re-checks liveness through
    the caller's hook instead of deadlocking on a dead worker.
    """

    def __init__(self, context, *, slots: int, slab_bytes: int) -> None:
        if slots < 1 or slab_bytes < 1:
            raise ExecutionError(
                f"slab ring needs positive geometry, got slots={slots}, "
                f"slab_bytes={slab_bytes}"
            )
        self.slots = slots
        self.slab_bytes = slab_bytes
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        self._segment = shared_memory.SharedMemory(
            name=name, create=True, size=slots * slab_bytes
        )
        #: Last-resort cleanup if the executor is dropped without finish();
        #: the normal paths unlink explicitly via close().  Registered
        #: immediately after creation: anything that can raise in between
        #: (a failing Pipe() constructor, historically) would leak the
        #: fresh segment.
        self._finalizer = weakref.finalize(
            self, _unlink_quietly, self._segment, os.getpid()
        )
        self.name = self._segment.name
        self._free = list(range(slots))
        #: Last slab index the worker acked (None before the first ack).
        #: Crash forensics: a dead worker's :class:`~repro.errors.
        #: WorkerCrashError` carries it to localize the death relative to
        #: the in-flight batches.
        self.last_acked: Optional[int] = None
        #: Worker -> driver slab recycling channel.  A pipe, not a queue: the
        #: payload is one small int and the worker's send never meaningfully
        #: blocks, so the queue's feeder-thread machinery buys nothing.
        self.ack_recv, self.ack_send = context.Pipe(duplex=False)

    def _recycle(self, slab: int) -> None:
        self.last_acked = slab
        self._free.append(slab)

    def _drain_acks(self) -> None:
        while self.ack_recv.poll():
            self._recycle(self.ack_recv.recv())

    def acquire(
        self, *, poll_seconds: float, on_stall: Callable[[], None]
    ) -> int:
        """Pop a free slab index, waiting on worker acks when none is free.

        ``on_stall`` runs once per ``poll_seconds`` of waiting; callers use
        it to distinguish "worker slow" (still alive: keep polling) from
        "worker dead" (exit-code inspection: raise a typed
        :class:`~repro.errors.WorkerCrashError` — carrying
        :attr:`last_acked` — or trigger recovery) so a dead worker's
        unacked slabs cannot wedge the driver.
        """
        self._drain_acks()
        while not self._free:
            if self.ack_recv.poll(poll_seconds):
                self._recycle(self.ack_recv.recv())
            else:
                on_stall()
            self._drain_acks()
        return self._free.pop()

    def write(self, slab: int, payload: bytes) -> None:
        """Copy a framed batch into ``slab`` (caller checked the size)."""
        offset = slab * self.slab_bytes
        self._segment.buf[offset : offset + len(payload)] = payload

    def fits(self, payload: bytes) -> bool:
        return len(payload) <= self.slab_bytes

    def close(self) -> None:
        """Tear the channel down and unlink the segment (idempotent)."""
        self._finalizer.detach()
        for end in (self.ack_recv, self.ack_send):
            try:
                end.close()
            except OSError:  # pragma: no cover - already closed by context
                pass
        _unlink_quietly(self._segment)


class SlabReader:
    """Worker-side view of a ring: decode from the mapped slab, then ack."""

    def __init__(self, name: str, slab_bytes: int, ack_send) -> None:
        self._segment = attach_segment(name)
        self._slab_bytes = slab_bytes
        self._ack_send = ack_send

    def view(self, slab: int, nbytes: int) -> memoryview:
        """The slab's payload bytes, straight out of the mapped segment."""
        offset = slab * self._slab_bytes
        return self._segment.buf[offset : offset + nbytes]

    def ack(self, slab: int) -> None:
        """Recycle the slab (call only after decoding copied the data out)."""
        self._ack_send.send(slab)

    def close(self) -> None:
        try:
            self._segment.close()
        except OSError:  # pragma: no cover - close is best-effort on exit
            pass


def validate_transport(transport: str) -> str:
    if transport not in TRANSPORTS:
        raise ExecutionError(
            f"unknown transport {transport!r}; choose one of {', '.join(TRANSPORTS)}"
        )
    return transport


def ring_slots(max_inflight: int) -> int:
    """Ring size for a channel bounded at ``max_inflight`` queued batches.

    At most ``max_inflight`` messages sit in the queue plus one being
    decoded by the worker; one extra slot keeps the driver's acquire from
    synchronizing with the ack of the oldest in-flight slab.
    """
    return max_inflight + 2
