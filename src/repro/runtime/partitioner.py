"""Stream partitioning by grouping attributes and window instances.

HAMLET first partitions the stream by the values of the grouping attributes,
then slices it in time (Section 3.1).  The executor evaluates an engine per
``(group key, window instance)`` partition; an event belongs to every window
instance that covers its timestamp, so events of overlapping sliding windows
are routed to several partitions.

Partitions are keyed by the *integer window-instance index* ``k`` (instance
``k`` spans ``[k*slide, k*slide + size)``), never by the float start
``k*slide``: for fractional slides the float start accumulates rounding error
(``3*0.1 != 0.3``), which used to misassign boundary events and make keys of
the same instance unequal across execution units.

Routing is exposed both incrementally (:meth:`GroupWindowPartitioner.route`
yields the keys of one event without storing anything — the streaming
executor's path) and materialized (:meth:`GroupWindowPartitioner.add_all`
builds the dict-of-lists the batch executor replays).

Queries that share an engine partition must agree on grouping attributes
(guaranteed by Definition 5) and on the window specification (a documented
simplification of the paper's pane-based cross-window sharing — see
``docs/DESIGN.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.events.event import Event
from repro.query.query import Query
from repro.query.windows import Window

#: A partition is identified by the group-by key and the window-instance index.
PartitionKey = tuple[tuple, int]


def _value_sort_key(value) -> tuple:
    """A total-order sort key for one group-key element.

    Group keys are tuples of payload values (numbers, strings, None, ...).
    Sorting them by ``repr`` — the original implementation — orders ``10``
    before ``2`` and depends on each type's repr details; comparing raw
    values directly raises for mixed types.  This key is type-tagged: values
    sort by kind first (None < booleans < non-finite floats < finite
    numbers < strings < everything else), then naturally within a kind.
    Finite numbers compare as their raw values — CPython's mixed int/float
    comparisons are exact (no float overflow for huge ints, no 2**53
    truncation; this used to go through :class:`~fractions.Fraction`, which
    orders identically but costs an object per element) — with the repr as
    a deterministic tie-breaker for equal values of different types (``1``
    vs ``1.0``); NaN and the infinities get their own bucket ordered by repr,
    so the order stays *total* — a bare NaN comparison is neither ``<`` nor
    ``>`` and would make the result depend on input order.  Every tag's
    tail has a fixed element layout so comparisons never cross types.

    Sibling of ``repro.runtime.sharding._canonical_key_element``, which
    answers the *equality-collapse* question for shard hashing over the
    same key population; a new group-key value type should be considered
    for both.
    """
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, int(value), "")
    if isinstance(value, float) and not math.isfinite(value):
        return (2, 0, repr(value))  # '-inf' < 'inf' < 'nan', deterministically
    if isinstance(value, (int, float)):
        return (3, value, repr(value))
    if isinstance(value, str):
        return (4, 0, value)
    if isinstance(value, tuple):
        return (5, 0, "") + tuple(_value_sort_key(element) for element in value)
    return (6, 0, repr(value))


def group_sort_key(group_key: tuple) -> tuple:
    """The canonical total order on group keys.

    Every component that orders partitions — the batch partitioner, the
    streaming executor's close sweeps and final flush, and the sharded
    driver's cross-shard merge — must use this same key, so that one
    workload produces one deterministic partition order regardless of the
    execution strategy.
    """
    return tuple(_value_sort_key(value) for value in group_key)


@dataclass(frozen=True)
class PartitionSpec:
    """Grouping attributes + window spec shared by the queries of a partition set."""

    group_by: tuple[str, ...]
    window: Window

    def group_key(self, event: Event) -> tuple:
        """Grouping key of an event (empty tuple when there is no GROUP BY)."""
        return tuple(event.get(attribute) for attribute in self.group_by)


class GroupWindowPartitioner:
    """Routes a stream into ``(group key, window instance)`` partitions."""

    def __init__(self, spec: PartitionSpec) -> None:
        self.spec = spec
        self._partitions: dict[PartitionKey, list[Event]] = {}

    @classmethod
    def for_queries(cls, queries: Sequence[Query]) -> "GroupWindowPartitioner":
        """Build a partitioner for queries sharing group-by and window clauses."""
        first = queries[0]
        return cls(PartitionSpec(group_by=first.group_by, window=first.window))

    def route(self, event: Event) -> Iterator[PartitionKey]:
        """Yield the key of every partition ``event`` belongs to, storing nothing."""
        group_key = self.spec.group_key(event)
        for index in self.spec.window.instance_indices_covering(event.time):
            yield (group_key, index)

    def window_start(self, key: PartitionKey) -> float:
        """Window start time of a partition key (derived, for reporting)."""
        return key[1] * self.spec.window.slide

    def add(self, event: Event) -> None:
        """Route one event into every partition it belongs to."""
        for key in self.route(event):
            self._partitions.setdefault(key, []).append(event)

    def add_all(self, events: Iterable[Event]) -> None:
        """Route every event of ``events``."""
        for event in events:
            self.add(event)

    def partitions(self) -> Iterator[tuple[PartitionKey, list[Event]]]:
        """Yield partitions ordered by window instance then group key."""
        for key in sorted(
            self._partitions, key=lambda item: (item[1], group_sort_key(item[0]))
        ):
            yield key, self._partitions[key]

    def partition_count(self) -> int:
        """Number of non-empty partitions."""
        return len(self._partitions)

    def routed_event_count(self) -> int:
        """Total number of (event, partition) assignments."""
        return sum(len(events) for events in self._partitions.values())
