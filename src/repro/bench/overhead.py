"""Optimizer overhead experiment (the in-text claims of Section 6.2).

The paper reports that even with 400–600 sharing decisions per window the
latency incurred by the decisions stays within 20 milliseconds (less than
0.2 % of the total latency) and that the one-time static workload analysis
stays within 81 milliseconds.  This experiment measures both quantities for
the reproduction: the fraction of engine time spent inside
``SharingOptimizer.decide`` and the wall-clock time of
:func:`repro.template.analysis.analyze_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.workloads import diverse_stock_workload
from repro.core.engine import HamletEngine
from repro.datasets.stock import StockGenerator
from repro.optimizer.decisions import DynamicSharingOptimizer
from repro.runtime.executor import WorkloadExecutor
from repro.runtime.metrics import Stopwatch
from repro.template.analysis import analyze_workload


@dataclass(frozen=True)
class OverheadReport:
    """Measured optimizer and analysis overheads."""

    decisions: int
    shared_fraction: float
    decision_seconds: float
    total_engine_seconds: float
    workload_analysis_seconds: float
    snapshots_created: int

    @property
    def decision_fraction(self) -> float:
        """Fraction of the engine time spent making sharing decisions."""
        if self.total_engine_seconds <= 0:
            return 0.0
        return self.decision_seconds / self.total_engine_seconds


def measure_overhead(
    num_queries: int = 12,
    events_per_minute: float = 200,
    duration_seconds: float = 120.0,
) -> OverheadReport:
    """Run the diverse stock workload and measure the optimizer overhead."""
    workload = diverse_stock_workload(num_queries)
    with Stopwatch() as analysis_watch:
        analyze_workload(workload)
    stream = StockGenerator(events_per_minute=events_per_minute).generate(duration_seconds)
    optimizer = DynamicSharingOptimizer()
    executor = WorkloadExecutor(workload, lambda: HamletEngine(optimizer))
    report = executor.run(stream)
    engine = executor._shared_engine
    snapshots = engine.total_snapshots_created() if isinstance(engine, HamletEngine) else 0
    stats = optimizer.statistics
    return OverheadReport(
        decisions=stats.decisions,
        shared_fraction=stats.shared_fraction,
        decision_seconds=stats.decision_seconds,
        total_engine_seconds=report.metrics.total_seconds,
        workload_analysis_seconds=analysis_watch.elapsed,
        snapshots_created=snapshots,
    )


def main() -> None:  # pragma: no cover - manual entry point
    report = measure_overhead()
    print(f"sharing decisions:        {report.decisions}")
    print(f"shared bursts:            {report.shared_fraction:.1%}")
    print(f"decision time:            {report.decision_seconds * 1e3:.2f} ms "
          f"({report.decision_fraction:.2%} of engine time)")
    print(f"workload analysis time:   {report.workload_analysis_seconds * 1e3:.2f} ms")
    print(f"snapshots created:        {report.snapshots_created}")


if __name__ == "__main__":  # pragma: no cover
    main()
