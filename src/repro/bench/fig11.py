"""Figure 11: HAMLET versus GRETA on the NYC-taxi and smart-home streams.

Panels:

* 11(a,b) latency vs. events per minute (NYC taxi, smart home),
* 11(c,d) throughput vs. events per minute,
* 11(e,f) memory vs. events per minute,
* 11(g,h) latency / throughput vs. number of queries (NYC taxi).

This is the "high" setting of the paper — only the two online Kleene engines
(HAMLET and GRETA) can cope, and the figure shows HAMLET's 3–5 orders of
magnitude advantage coming from sharing across the workload.

These are *streaming* scenarios, not batch replays: the generators model
live feeds (taxi trip events per zone, appliance readings per house)
arriving at a configured rate, and the engines consume them one pass,
online.  The generated streams arrive in order; a real NYC-taxi or
stock-tick feed does not, which is what `allowed_lateness=N` on the
streaming executors exists for — the watermark-driven reorder buffer
(`repro/runtime/reorder.py`, see "Out-of-order ingestion" in
`docs/DESIGN.md`) makes the same workloads runnable off an unsorted feed
with bounded disorder, bit-identically to these ordered runs.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.reporting import ExperimentRow, format_table
from repro.bench.runner import EngineSpec, default_engines, sweep
from repro.bench.workloads import nyc_taxi_workload, smart_home_workload
from repro.datasets.nyc_taxi import NycTaxiGenerator
from repro.datasets.smart_home import SmartHomeGenerator
from repro.events.stream import EventStream
from repro.query.windows import Window
from repro.query.workload import Workload

FIG11_WINDOW = Window.minutes(1)


def _build_nyc(events_per_minute: float, num_queries: int,
               duration_seconds: float = 60.0) -> tuple[Workload, EventStream]:
    workload = nyc_taxi_workload(num_queries, window=FIG11_WINDOW)
    # Few grouping keys keep the per-partition event counts high — the regime
    # where the online engines separate (the paper's "high" setting).
    stream = NycTaxiGenerator(events_per_minute=events_per_minute, seed=11, zones=4).generate(
        duration_seconds
    )
    return workload, stream


def _build_smart_home(events_per_minute: float, num_queries: int,
                      duration_seconds: float = 60.0) -> tuple[Workload, EventStream]:
    workload = smart_home_workload(num_queries, window=FIG11_WINDOW)
    stream = SmartHomeGenerator(events_per_minute=events_per_minute, seed=13, houses=4).generate(
        duration_seconds
    )
    return workload, stream


def _online_engines() -> tuple[EngineSpec, ...]:
    return default_engines(include_exponential=False)


def figure11_nyc_events_sweep(
    events_per_minute_values: Sequence[float] = (500, 1000, 1500),
    num_queries: int = 10,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panels 11(a,c,e): NYC taxi, sweep the arrival rate."""
    engines = engines or _online_engines()
    return sweep(
        "fig11-nyc-events",
        "events/min",
        events_per_minute_values,
        lambda value: _build_nyc(value, num_queries),
        engines,
    )


def figure11_smart_home_events_sweep(
    events_per_minute_values: Sequence[float] = (500, 1000, 1500),
    num_queries: int = 10,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panels 11(b,d,f): smart home, sweep the arrival rate."""
    engines = engines or _online_engines()
    return sweep(
        "fig11-smarthome-events",
        "events/min",
        events_per_minute_values,
        lambda value: _build_smart_home(value, num_queries),
        engines,
    )


def figure11_queries_sweep(
    query_counts: Sequence[int] = (10, 20, 30),
    events_per_minute: float = 1000,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panels 11(g,h): NYC taxi, sweep the workload size."""
    engines = engines or _online_engines()
    return sweep(
        "fig11-nyc-queries",
        "#queries",
        query_counts,
        lambda value: _build_nyc(events_per_minute, int(value)),
        engines,
    )


def main() -> None:  # pragma: no cover - manual entry point
    rows = (
        figure11_nyc_events_sweep()
        + figure11_smart_home_events_sweep()
        + figure11_queries_sweep()
    )
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
