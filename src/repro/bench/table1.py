"""Table 1: qualitative feature matrix of the approaches.

The table is qualitative in the paper; here it is derived from the actual
capabilities of the implemented engines so that the claims stay true of this
code base (e.g. the SHARON-style engine really does reject Kleene patterns —
it flattens them — and really is restricted to static sharing).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ApproachFeatures:
    """One row of Table 1."""

    approach: str
    kleene_closure: bool
    online_aggregation: bool
    sharing_decisions: str  # "static", "dynamic", "not shared"


def table1_features() -> tuple[ApproachFeatures, ...]:
    """The feature matrix of Table 1, mapped onto this repository's engines."""
    return (
        ApproachFeatures("mcep-two-step", kleene_closure=True, online_aggregation=False,
                         sharing_decisions="static"),
        ApproachFeatures("sharon-flat", kleene_closure=False, online_aggregation=True,
                         sharing_decisions="static"),
        ApproachFeatures("greta", kleene_closure=True, online_aggregation=True,
                         sharing_decisions="not shared"),
        ApproachFeatures("hamlet", kleene_closure=True, online_aggregation=True,
                         sharing_decisions="dynamic"),
    )


def format_table1() -> str:
    """Render the matrix as text (the benchmark target prints this)."""
    lines = ["approach        kleene  online  sharing"]
    lines.append("-" * len(lines[0]))
    for row in table1_features():
        lines.append(
            f"{row.approach:<15} {'yes' if row.kleene_closure else 'no':<7} "
            f"{'yes' if row.online_aggregation else 'no':<7} {row.sharing_decisions}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - manual entry point
    print(format_table1())


if __name__ == "__main__":  # pragma: no cover
    main()
