"""Figure 12: dynamic versus static sharing decisions (stock stream).

Panels:

* 12(a) latency vs. events per minute,
* 12(b) latency vs. number of queries (20–100),
* 12(c) throughput vs. events per minute,
* 12(d) throughput vs. number of queries.

The diverse workload (different windows, aggregates and predicates over
shared ``Trade+`` / ``UpTick+`` sub-patterns) makes a compile-time sharing
plan fragile: always sharing keeps creating snapshots when predicates
diverge, never sharing re-processes every burst per query.  The dynamic
optimizer re-evaluates the benefit per burst and lands in between, which is
the 21–34 % latency and 27–52 % throughput improvement the paper reports.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.reporting import ExperimentRow, format_table
from repro.bench.runner import EngineSpec, dynamic_vs_static_engines, sweep
from repro.bench.workloads import diverse_stock_workload
from repro.datasets.stock import StockGenerator
from repro.events.stream import EventStream
from repro.query.workload import Workload


def _build(events_per_minute: float, num_queries: int,
           duration_seconds: float = 120.0) -> tuple[Workload, EventStream]:
    workload = diverse_stock_workload(num_queries)
    stream = StockGenerator(events_per_minute=events_per_minute, seed=17).generate(
        duration_seconds
    )
    return workload, stream


def figure12_events_sweep(
    events_per_minute_values: Sequence[float] = (100, 200, 300),
    num_queries: int = 12,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panels 12(a) and 12(c): sweep the arrival rate."""
    engines = engines or dynamic_vs_static_engines()
    return sweep(
        "fig12-events",
        "events/min",
        events_per_minute_values,
        lambda value: _build(value, num_queries),
        engines,
    )


def figure12_queries_sweep(
    query_counts: Sequence[int] = (8, 16, 24),
    events_per_minute: float = 200,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panels 12(b) and 12(d): sweep the workload size."""
    engines = engines or dynamic_vs_static_engines()
    return sweep(
        "fig12-queries",
        "#queries",
        query_counts,
        lambda value: _build(events_per_minute, int(value)),
        engines,
    )


def main() -> None:  # pragma: no cover - manual entry point
    rows = figure12_events_sweep() + figure12_queries_sweep()
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
