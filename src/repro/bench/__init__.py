"""Benchmark harness: regenerates every figure of the paper's evaluation.

Each ``figNN`` module exposes functions that run the corresponding
experiment and return :class:`~repro.bench.reporting.ExperimentRow` objects
— the series behind the figure's panels — plus a ``main()`` that prints them
as a table.  The pytest-benchmark targets under ``benchmarks/`` call these
functions with laptop-scale parameters; EXPERIMENTS.md records the paper's
expected shape next to the measured numbers.
"""

from repro.bench.reporting import ExperimentRow, format_table, rows_to_csv
from repro.bench.runner import EngineSpec, default_engines, run_comparison
from repro.bench.workloads import (
    diverse_stock_workload,
    kleene_sharing_workload,
    nyc_taxi_workload,
    smart_home_workload,
)

__all__ = [
    "EngineSpec",
    "ExperimentRow",
    "default_engines",
    "diverse_stock_workload",
    "format_table",
    "kleene_sharing_workload",
    "nyc_taxi_workload",
    "rows_to_csv",
    "run_comparison",
    "smart_home_workload",
]
