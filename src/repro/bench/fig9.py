"""Figure 9: HAMLET versus the state of the art on the ridesharing stream.

Panels:

* 9(a) latency vs. number of events per minute,
* 9(b) latency vs. number of queries,
* 9(c) throughput vs. number of events per minute,
* 9(d) throughput vs. number of queries.

The paper deliberately picks a *low* setting (10K–20K events per minute,
5–25 queries) so that the two-step (MCEP) and flattened-sequence (SHARON)
baselines terminate.  The laptop-scale defaults below shrink the absolute
event counts further (pure Python versus the paper's Java implementation)
while keeping the relative ordering of the approaches — the quantity the
figure is about.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.reporting import ExperimentRow, format_table
from repro.bench.runner import EngineSpec, default_engines, sweep
from repro.bench.workloads import kleene_sharing_workload
from repro.datasets.ridesharing import RidesharingGenerator
from repro.events.stream import EventStream
from repro.query.windows import Window
from repro.query.workload import Workload

#: Window used throughout the Figure 9 experiments (one minute keeps the
#: per-window event counts tractable for the exponential baselines).
FIG9_WINDOW = Window.minutes(1)


def _build(events_per_minute: float, num_queries: int, *, seed: int = 7,
           duration_seconds: float = 60.0) -> tuple[Workload, EventStream]:
    workload = kleene_sharing_workload(
        num_queries, kleene_type="Travel", window=FIG9_WINDOW, name="fig9"
    )
    # Five districts keep enough events per group/window partition for the
    # exponential baselines to feel the trend blow-up while still terminating.
    generator = RidesharingGenerator(
        events_per_minute=events_per_minute, seed=seed, districts=5
    )
    stream = generator.generate(duration_seconds)
    return workload, stream


def figure9_events_sweep(
    events_per_minute_values: Sequence[float] = (100, 150, 200),
    num_queries: int = 5,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panels 9(a) and 9(c): sweep the arrival rate."""
    engines = engines or default_engines()
    return sweep(
        "fig9-events",
        "events/min",
        events_per_minute_values,
        lambda value: _build(value, num_queries),
        engines,
    )


def figure9_queries_sweep(
    query_counts: Sequence[int] = (5, 15, 25),
    events_per_minute: float = 150,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panels 9(b) and 9(d): sweep the workload size."""
    engines = engines or default_engines()
    return sweep(
        "fig9-queries",
        "#queries",
        query_counts,
        lambda value: _build(events_per_minute, int(value)),
        engines,
    )


def main() -> None:  # pragma: no cover - manual entry point
    rows = figure9_events_sweep() + figure9_queries_sweep()
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
