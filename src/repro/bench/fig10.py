"""Figure 10: peak memory of HAMLET versus the state of the art (ridesharing).

Panels:

* 10(a) memory vs. number of events per minute,
* 10(b) memory vs. number of queries.

The expected shape: HAMLET, GRETA and the two-step engine store the matched
events (plus per-query replication for GRETA and constructed trends for the
two-step engine), while the SHARON-style flattening needs orders of magnitude
more state because every Kleene query expands into one fixed-length sequence
query per possible trend length.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.fig9 import _build
from repro.bench.reporting import ExperimentRow, format_table
from repro.bench.runner import EngineSpec, default_engines, sweep


def figure10_memory_vs_events(
    events_per_minute_values: Sequence[float] = (60, 120, 180),
    num_queries: int = 5,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panel 10(a): peak memory while sweeping the arrival rate."""
    engines = engines or default_engines()
    return sweep(
        "fig10-memory-events",
        "events/min",
        events_per_minute_values,
        lambda value: _build(value, num_queries),
        engines,
    )


def figure10_memory_vs_queries(
    query_counts: Sequence[int] = (5, 15, 25),
    events_per_minute: float = 120,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panel 10(b): peak memory while sweeping the workload size."""
    engines = engines or default_engines()
    return sweep(
        "fig10-memory-queries",
        "#queries",
        query_counts,
        lambda value: _build(events_per_minute, int(value)),
        engines,
    )


def main() -> None:  # pragma: no cover - manual entry point
    rows = figure10_memory_vs_events() + figure10_memory_vs_queries()
    print(format_table(rows, metrics=["memory_units"]))


if __name__ == "__main__":  # pragma: no cover
    main()
