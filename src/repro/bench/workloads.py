"""Workload generators for the two workload styles of Section 6.1.

* :func:`kleene_sharing_workload` — the first workload: queries have
  different patterns but share the same Kleene sub-pattern, window, group-by,
  predicates and aggregate (Figures 9–11).
* :func:`diverse_stock_workload` — the second, more diverse workload: Kleene
  patterns of length 1–3, window sizes 5–20 minutes, different aggregates
  (COUNT, AVG, MAX, ...), group-bys and predicates (Figures 12–13).
* :func:`nyc_taxi_workload` / :func:`smart_home_workload` — the Figure 11
  workloads phrased over the corresponding simulators' schemas.
"""

from __future__ import annotations

import random

from repro.errors import BenchmarkError
from repro.query.aggregates import avg, count_events, count_trends, max_of, sum_of
from repro.query.pattern import kleene, seq
from repro.query.predicates import attr_greater, attr_less, same_attributes
from repro.query.query import Query
from repro.query.windows import Window
from repro.query.workload import Workload

from repro.datasets.nyc_taxi import NYC_TAXI_TYPES
from repro.datasets.ridesharing import RIDESHARING_TYPES
from repro.datasets.smart_home import SMART_HOME_TYPES
from repro.datasets.stock import STOCK_TYPES


def _check_count(num_queries: int) -> None:
    if num_queries < 1:
        raise BenchmarkError("a workload needs at least one query")


def kleene_sharing_workload(
    num_queries: int = 50,
    *,
    kleene_type: str = "Travel",
    prefix_types: tuple[str, ...] = (),
    window: Window | None = None,
    group_by: tuple[str, ...] = ("district",),
    slow_speed_threshold: float | None = None,
    name: str = "kleene-sharing",
) -> Workload:
    """Workload 1: different prefixes, shared ``kleene_type+`` sub-pattern.

    All queries compute COUNT(*), use the same window, group-by and (optional)
    predicate, which maximizes the sharing opportunities on the Kleene
    sub-pattern — the setting of Figures 9–11.
    """
    _check_count(num_queries)
    window = window or Window.minutes(5)
    prefixes = prefix_types or tuple(t for t in RIDESHARING_TYPES if t != kleene_type)
    workload = Workload(name=name)
    for index in range(num_queries):
        prefix = prefixes[index % len(prefixes)]
        predicates = []
        if slow_speed_threshold is not None:
            predicates.append(attr_less("speed", slow_speed_threshold, event_type=kleene_type))
        workload.add(
            Query.build(
                seq(prefix, kleene(kleene_type)),
                aggregate=count_trends(),
                predicates=predicates,
                group_by=group_by,
                window=window,
                name=f"{name}-q{index + 1}",
            )
        )
    return workload


def multi_aggregate_workload(
    num_queries: int = 12,
    *,
    kleene_type: str = "Travel",
    prefix_types: tuple[str, ...] = (),
    window: Window | None = None,
    group_by: tuple[str, ...] = ("district",),
    payload_attribute: str = "speed",
    name: str = "multi-aggregate",
) -> Workload:
    """Identical patterns, different aggregates: maximal query classes.

    Consecutive runs of four queries share one ``SEQ(prefix, kleene+)``
    pattern (and predicates, group-by and window) and differ only in what
    they aggregate — COUNT(*), SUM, AVG, COUNT(E).  The SUM / AVG /
    COUNT(E) members of a run are mutually sharable and *computationally
    identical*, so the multi-window runtime collapses them into one query
    class whose sharing the per-burst optimizer can split and merge at
    runtime; the COUNT(*) member is deliberately included as the
    non-sharable odd one out (COUNT(*) only shares with COUNT(*),
    Definition 5) so the workload also exercises singleton classes riding
    along.  This is the workload shape behind the adaptive-sharing
    benchmarks and the ``stream --optimizer`` CLI path.
    """
    _check_count(num_queries)
    window = window or Window.minutes(5)
    prefixes = prefix_types or tuple(t for t in RIDESHARING_TYPES if t != kleene_type)
    aggregates = (
        lambda: count_trends(),
        lambda: sum_of(kleene_type, payload_attribute),
        lambda: avg(kleene_type, payload_attribute),
        lambda: count_events(kleene_type),
    )
    workload = Workload(name=name)
    for index in range(num_queries):
        prefix = prefixes[(index // len(aggregates)) % len(prefixes)]
        workload.add(
            Query.build(
                seq(prefix, kleene(kleene_type)),
                aggregate=aggregates[index % len(aggregates)](),
                group_by=group_by,
                window=window,
                name=f"{name}-q{index + 1}",
            )
        )
    return workload


def nyc_taxi_workload(num_queries: int = 20, *, window: Window | None = None) -> Workload:
    """Figure 11 (NYC) workload: shared ``Travel+`` over the taxi schema."""
    prefixes = tuple(t for t in NYC_TAXI_TYPES if t not in ("Travel",))
    return kleene_sharing_workload(
        num_queries,
        kleene_type="Travel",
        prefix_types=prefixes,
        window=window or Window.minutes(5),
        group_by=("pickup_zone",),
        name="nyc-taxi",
    )


def smart_home_workload(num_queries: int = 20, *, window: Window | None = None) -> Workload:
    """Figure 11 (Smart Home) workload: shared ``Load+`` over the plug schema."""
    prefixes = tuple(t for t in SMART_HOME_TYPES if t not in ("Load",))
    return kleene_sharing_workload(
        num_queries,
        kleene_type="Load",
        prefix_types=prefixes,
        window=window or Window.minutes(5),
        group_by=("house",),
        name="smart-home",
    )


def diverse_stock_workload(
    num_queries: int = 50,
    *,
    seed: int = 23,
    name: str = "stock-diverse",
) -> Workload:
    """Workload 2: diverse patterns, windows, aggregates and predicates.

    Queries share the ``Trade+`` (and sometimes ``UpTick+``) Kleene
    sub-patterns but differ in sequence length (1–3 non-Kleene steps), window
    size (5–20 minutes), aggregate (COUNT(*), COUNT, SUM, AVG, MAX) and
    predicates, which is what makes static sharing plans fragile
    (Figures 12–13).
    """
    _check_count(num_queries)
    rng = random.Random(seed)
    kleene_candidates = ("Trade", "UpTick")
    other_types = [t for t in STOCK_TYPES if t not in kleene_candidates]
    workload = Workload(name=name)
    for index in range(num_queries):
        kleene_type = kleene_candidates[index % len(kleene_candidates)]
        prefix_length = rng.randint(1, 3)
        prefix = rng.sample(other_types, k=min(prefix_length, len(other_types)))
        pattern = seq(*prefix, kleene(kleene_type)) if prefix else kleene(kleene_type)
        # Window sizes 5–20 minutes as in the paper; the slide is shared so
        # window instances align across queries.
        window = Window.minutes(rng.choice((5, 10, 15, 20)), 5)
        aggregate_choice = index % 6
        if aggregate_choice in (0, 3):
            aggregate = count_trends()
        elif aggregate_choice == 1:
            aggregate = count_events(kleene_type)
        elif aggregate_choice == 2:
            aggregate = sum_of(kleene_type, "volume")
        elif aggregate_choice == 4:
            aggregate = avg(kleene_type, "price")
        else:
            aggregate = max_of(kleene_type, "price")
        # Predicates differ across queries on purpose: they are what makes a
        # static "always share" plan pay for event-level snapshots while the
        # dynamic optimizer backs off per burst.
        predicates = []
        predicate_choice = index % 4
        if predicate_choice == 1:
            predicates.append(
                attr_greater("volume", 100 * (1 + index % 3), event_type=kleene_type)
            )
        elif predicate_choice == 2:
            predicates.append(
                attr_less("price", 120.0 + 10.0 * (index % 4), event_type=kleene_type)
            )
        elif predicate_choice == 3:
            predicates.append(same_attributes("sector"))
        workload.add(
            Query.build(
                pattern,
                aggregate=aggregate,
                predicates=predicates,
                group_by=("sector",),
                window=window,
                name=f"{name}-q{index + 1}",
            )
        )
    return workload
