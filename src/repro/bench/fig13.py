"""Figure 13: memory of dynamic versus static sharing decisions (stock stream).

Panels:

* 13(a) memory vs. events per minute,
* 13(b) memory vs. number of queries.

The static always-share plan keeps creating snapshots even when predicates
make sharing unprofitable, so its snapshot table (and therefore memory) grows
well beyond the dynamic optimizer's — the paper reports roughly 25 % memory
savings for the dynamic decisions.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.fig12 import _build
from repro.bench.reporting import ExperimentRow, format_table
from repro.bench.runner import EngineSpec, dynamic_vs_static_engines, sweep


def figure13_memory_vs_events(
    events_per_minute_values: Sequence[float] = (100, 200, 300),
    num_queries: int = 12,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panel 13(a): memory while sweeping the arrival rate."""
    engines = engines or dynamic_vs_static_engines()
    return sweep(
        "fig13-memory-events",
        "events/min",
        events_per_minute_values,
        lambda value: _build(value, num_queries),
        engines,
    )


def figure13_memory_vs_queries(
    query_counts: Sequence[int] = (8, 16, 24),
    events_per_minute: float = 200,
    engines: Sequence[EngineSpec] | None = None,
) -> list[ExperimentRow]:
    """Panel 13(b): memory while sweeping the workload size."""
    engines = engines or dynamic_vs_static_engines()
    return sweep(
        "fig13-memory-queries",
        "#queries",
        query_counts,
        lambda value: _build(events_per_minute, int(value)),
        engines,
    )


def main() -> None:  # pragma: no cover - manual entry point
    rows = figure13_memory_vs_events() + figure13_memory_vs_queries()
    print(format_table(rows, metrics=["memory_units"]))


if __name__ == "__main__":  # pragma: no cover
    main()
