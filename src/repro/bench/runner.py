"""Experiment runner: evaluate several engines over identical inputs.

Every figure of the paper compares approaches over the same stream and
workload while one parameter (events per minute, number of queries) is
swept.  :func:`run_comparison` runs one configuration for a set of engines
and converts each execution report into an :class:`ExperimentRow`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.baselines.flat_sequences import FlatSequenceEngine
from repro.baselines.two_step import TwoStepEngine
from repro.bench.reporting import ExperimentRow
from repro.core.engine import HamletEngine
from repro.events.stream import EventStream
from repro.greta.engine import GretaEngine
from repro.interfaces import TrendAggregationEngine
from repro.optimizer.decisions import DynamicSharingOptimizer
from repro.optimizer.static import AlwaysShareOptimizer, NeverShareOptimizer
from repro.query.workload import Workload
from repro.runtime.executor import WorkloadExecutor


@dataclass(frozen=True)
class EngineSpec:
    """A named engine factory used by the comparison runner."""

    name: str
    factory: Callable[[], TrendAggregationEngine]


def default_engines(include_exponential: bool = True) -> tuple[EngineSpec, ...]:
    """The four approaches of Figures 9–10.

    ``include_exponential=False`` drops the two-step (MCEP-style) and
    SHARON-style baselines — the paper does the same in Figure 11 because
    they cannot keep up with higher rates.
    """
    engines = [
        EngineSpec("hamlet", lambda: HamletEngine(DynamicSharingOptimizer())),
        EngineSpec("greta", GretaEngine),
    ]
    if include_exponential:
        engines.append(EngineSpec("mcep-two-step", lambda: TwoStepEngine(max_events=4096)))
        engines.append(EngineSpec("sharon-flat", FlatSequenceEngine))
    return tuple(engines)


def dynamic_vs_static_engines() -> tuple[EngineSpec, ...]:
    """The two executors compared in Figures 12–13."""
    return (
        EngineSpec("hamlet-dynamic", lambda: HamletEngine(DynamicSharingOptimizer())),
        EngineSpec("hamlet-static", lambda: HamletEngine(AlwaysShareOptimizer())),
        EngineSpec("hamlet-non-shared", lambda: HamletEngine(NeverShareOptimizer())),
    )


def run_comparison(
    experiment: str,
    parameter: str,
    value: float,
    workload: Workload,
    stream: EventStream,
    engines: Sequence[EngineSpec],
) -> list[ExperimentRow]:
    """Run every engine over the same workload and stream.

    Returns one row per engine carrying latency, throughput and memory, plus
    optimizer statistics (shared-burst fraction, snapshot counts) for HAMLET
    configurations.
    """
    rows: list[ExperimentRow] = []
    for spec in engines:
        executor = WorkloadExecutor(workload, spec.factory)
        report = executor.run(stream)
        extra: dict = {"partitions": report.metrics.partitions}
        if report.optimizer_statistics is not None:
            stats = report.optimizer_statistics
            extra.update(
                {
                    "decisions": stats.decisions,
                    "shared_fraction": round(stats.shared_fraction, 3),
                    "decision_seconds": stats.decision_seconds,
                    "merges": stats.merges,
                    "splits": stats.splits,
                }
            )
        engine = executor._shared_engine
        if isinstance(engine, HamletEngine):
            extra["snapshots"] = engine.total_snapshots_created()
        rows.append(
            ExperimentRow(
                experiment=experiment,
                parameter=parameter,
                value=value,
                approach=spec.name,
                latency_seconds=report.metrics.average_latency,
                throughput_eps=report.metrics.throughput,
                memory_units=report.metrics.peak_memory_units,
                extra=extra,
            )
        )
    return rows


def sweep(
    experiment: str,
    parameter: str,
    values: Iterable[float],
    build: Callable[[float], tuple[Workload, EventStream]],
    engines: Sequence[EngineSpec],
) -> list[ExperimentRow]:
    """Sweep a parameter, building the workload/stream per value."""
    rows: list[ExperimentRow] = []
    for value in values:
        workload, stream = build(value)
        rows.extend(run_comparison(experiment, parameter, value, workload, stream, engines))
    return rows
