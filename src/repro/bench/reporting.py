"""Reporting helpers shared by all benchmark experiments."""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class ExperimentRow:
    """One data point of one series of one figure panel."""

    experiment: str
    #: Name of the swept parameter ("events/min", "#queries", ...).
    parameter: str
    #: Value of the swept parameter for this row.
    value: float
    #: The approach / series the row belongs to (hamlet, greta, ...).
    approach: str
    #: Average per-window latency in seconds.
    latency_seconds: float = 0.0
    #: Events processed per second.
    throughput_eps: float = 0.0
    #: Peak memory in abstract units.
    memory_units: float = 0.0
    #: Extra metric columns (snapshot counts, shared-burst fraction, ...).
    extra: dict = field(default_factory=dict, compare=False, hash=False)


def format_table(rows: Sequence[ExperimentRow], *, metrics: Iterable[str] = ()) -> str:
    """Format rows as an aligned text table (one line per row)."""
    metrics = list(metrics) or ["latency_seconds", "throughput_eps", "memory_units"]
    header = ["experiment", "parameter", "value", "approach", *metrics]
    lines = [header]
    for row in rows:
        line = [
            row.experiment,
            row.parameter,
            f"{row.value:g}",
            row.approach,
        ]
        for metric in metrics:
            if hasattr(row, metric):
                value = getattr(row, metric)
            else:
                value = row.extra.get(metric, "")
            line.append(f"{value:.6g}" if isinstance(value, (int, float)) else str(value))
        lines.append(line)
    widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
    output = io.StringIO()
    for index, line in enumerate(lines):
        output.write("  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip())
        output.write("\n")
        if index == 0:
            output.write("  ".join("-" * width for width in widths) + "\n")
    return output.getvalue()


def rows_to_csv(rows: Sequence[ExperimentRow]) -> str:
    """Serialize rows to CSV (used to archive benchmark outputs)."""
    output = io.StringIO()
    output.write("experiment,parameter,value,approach,latency_seconds,throughput_eps,memory_units\n")
    for row in rows:
        output.write(
            f"{row.experiment},{row.parameter},{row.value:g},{row.approach},"
            f"{row.latency_seconds:.9f},{row.throughput_eps:.3f},{row.memory_units:.1f}\n"
        )
    return output.getvalue()


def speedup(rows: Sequence[ExperimentRow], baseline: str, target: str, metric: str = "latency_seconds") -> dict[float, float]:
    """Per-parameter-value ratio ``baseline_metric / target_metric``.

    Used to express "HAMLET is N-fold faster than X" claims.
    """
    by_value: dict[float, dict[str, float]] = {}
    for row in rows:
        by_value.setdefault(row.value, {})[row.approach] = getattr(row, metric)
    ratios: dict[float, float] = {}
    for value, approaches in by_value.items():
        if baseline in approaches and target in approaches and approaches[target]:
            ratios[value] = approaches[baseline] / approaches[target]
    return ratios
