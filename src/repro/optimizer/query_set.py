"""Choice of the query set that shares a Kleene sub-pattern (Section 4.3).

The search space of sharing plans — which subset of the candidate queries
``Q_E`` shares the burst and which queries run separately — is exponential
(Figure 7).  Two pruning principles reduce it to a linear scan:

* **Snapshot-driven pruning (Theorem 4.1)** — a query that introduces no new
  snapshots is always worth sharing; plans that exclude such a query are
  pruned.
* **Benefit-driven pruning (Theorem 4.2)** — a query that does introduce
  snapshots is shared exactly when the cost of maintaining its snapshots is
  below the cost of re-processing the burst for it separately; the
  classification at Level 2 of the plan lattice is globally optimal, so no
  deeper plans need to be examined.

To make the optimality of the per-query classification exact (and therefore
property-testable against exhaustive enumeration), the plan cost used here is
the additive decomposition of the paper's burst model:

* one *propagation* term ``b * (log2(g) + n * sp)`` paid once if anything is
  shared,
* one *snapshot maintenance* term ``sc_q * g * p`` per shared query ``q``
  (``sc_q`` counts the graphlet-level snapshot plus the event-level snapshots
  the query is expected to introduce), and
* one *re-processing* term ``b * (log2(g) + n)`` per query processed
  separately.

:func:`choose_query_set` implements the pruned selection in ``O(m)``;
:func:`exhaustive_best_plan` enumerates every plan and is used by the tests
to confirm the pruned choice is never worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.optimizer.cost_model import _log2
from repro.optimizer.statistics import BurstStatistics


@dataclass(frozen=True)
class QuerySetChoice:
    """Outcome of the query-set selection for one burst."""

    shared: frozenset[str]
    non_shared: frozenset[str]
    total_cost: float

    @property
    def share_count(self) -> int:
        """Number of queries selected to share the burst."""
        return len(self.shared)


def _propagation_cost(stats: BurstStatistics) -> float:
    """Cost of propagating the shared expressions through the burst (paid once)."""
    return stats.burst_size * (
        _log2(stats.graphlet_size) + stats.events_in_window * max(1, stats.snapshots_propagated)
    )


def _maintenance_cost(stats: BurstStatistics, expected_snapshots: float) -> float:
    """Per-query cost of maintaining the snapshots it needs in a shared graphlet."""
    snapshots = stats.graphlet_snapshots_needed + expected_snapshots
    return snapshots * stats.graphlet_size * stats.predecessor_types


def _reprocess_cost(stats: BurstStatistics) -> float:
    """Per-query cost of processing the burst separately (non-shared)."""
    return stats.burst_size * (_log2(stats.graphlet_size) + stats.events_in_window)


def plan_cost(stats: BurstStatistics, shared: frozenset[str]) -> float:
    """Cost of the plan that shares ``shared`` and processes the rest separately."""
    profiles = stats.profile_map()
    cost = 0.0
    if len(shared) >= 2:
        cost += _propagation_cost(stats)
        cost += sum(_maintenance_cost(stats, profiles[name].expected_snapshots) for name in shared)
    else:
        # A "shared" group of zero or one query degenerates to separate processing.
        cost += len(shared) * _reprocess_cost(stats)
    cost += (stats.query_count - len(shared)) * _reprocess_cost(stats)
    return cost


def choose_query_set(stats: BurstStatistics) -> QuerySetChoice:
    """Select the subset of candidate queries that should share the burst.

    Queries introducing no snapshots are always shared (Theorem 4.1); each
    snapshot-introducing query is shared exactly when its snapshot
    maintenance is cheaper than re-processing the burst for it (Theorem 4.2).
    """
    reprocess = _reprocess_cost(stats)
    # Margin of sharing a query: its snapshot-maintenance cost minus the cost
    # of re-processing the burst for it.  Queries that introduce no snapshots
    # only pay for the graphlet-level snapshot, which is why they are
    # (almost) always shared — Theorem 4.1; queries with expected event-level
    # snapshots are classified by the sign of the margin — Theorem 4.2.
    margins = {
        profile.query_name: _maintenance_cost(
            stats, profile.expected_snapshots if profile.introduces_snapshots else 0.0
        )
        - reprocess
        for profile in stats.profiles
    }
    beneficial = {name for name, margin in margins.items() if margin <= 0}
    candidate = set(beneficial)
    if len(candidate) < 2 and stats.query_count >= 2:
        # Sharing needs two participants; top the group up with the least
        # harmful queries so the comparison against the all-non-shared plan
        # considers the best possible sharing plan.
        remaining = sorted(
            (name for name in margins if name not in candidate), key=lambda name: margins[name]
        )
        candidate.update(remaining[: 2 - len(candidate)])
    best_sharing = frozenset(candidate) if len(candidate) >= 2 else frozenset()
    options = [frozenset(), best_sharing]
    shared_frozen = min(options, key=lambda shared: plan_cost(stats, shared))
    non_shared = frozenset(p.query_name for p in stats.profiles) - shared_frozen
    return QuerySetChoice(
        shared=shared_frozen,
        non_shared=non_shared,
        total_cost=plan_cost(stats, shared_frozen),
    )


def exhaustive_best_plan(stats: BurstStatistics) -> QuerySetChoice:
    """Enumerate every sharing plan and return the cheapest.

    Exponential in the number of candidate queries; intended for validating
    :func:`choose_query_set` on small workloads.
    """
    names = [profile.query_name for profile in stats.profiles]
    best: QuerySetChoice | None = None
    for size in range(len(names) + 1):
        for subset in combinations(names, size):
            shared = frozenset(subset)
            candidate = QuerySetChoice(
                shared=shared,
                non_shared=frozenset(names) - shared,
                total_cost=plan_cost(stats, shared),
            )
            if best is None or candidate.total_cost < best.total_cost - 1e-9:
                best = candidate
    assert best is not None
    return best
