"""Per-burst statistics handed from the executor to the sharing optimizer.

The optimizer's decisions are light-weight precisely because every quantity
in the cost model (Definition 12) is locally available at the time a burst
completes: the burst size ``b``, the events matched so far in the window
``n``, the size of the (candidate) shared graphlet ``g``, the number of
sharing queries ``k``, the number of predecessor types per type ``p``, and
the snapshot counts ``sc`` (to be created) and ``sp`` (currently propagated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.events.event import EventType

#: Identity of one decision stream: ``(event type, candidate query set)``.
PlanKey = tuple[EventType, frozenset[str]]


@dataclass(frozen=True)
class QueryBurstProfile:
    """Per-query properties of a burst that drive the query-set choice."""

    query_name: str
    #: True if sharing this query's processing of the burst is expected to
    #: require event-level snapshots (it has predicates or negation
    #: constraints that apply to the burst's event type).  Queries with
    #: ``False`` are always worth sharing (Theorem 4.1).
    introduces_snapshots: bool
    #: Expected number of event-level snapshots this query would add to the
    #: shared graphlet for this burst (an estimate based on recent history).
    expected_snapshots: float = 0.0
    #: Number of predecessor types of the burst type for this query (``p``).
    predecessor_types: int = 1


@dataclass(frozen=True)
class BurstStatistics:
    """Everything the optimizer needs to decide one burst."""

    event_type: EventType
    #: Number of events in the burst (``b``).
    burst_size: int
    #: Number of events matched so far in the window/partition (``n``).
    events_in_window: int
    #: Number of events in the candidate shared graphlet (``g``) — the active
    #: shared graphlet's size if it would be continued, else the burst size.
    graphlet_size: int
    #: Number of snapshots currently propagated through the candidate shared
    #: graphlet (``sp``), excluding the ones this burst would create.
    snapshots_propagated: int
    #: Number of graphlet-level snapshots that must be created to share this
    #: burst (1 when a merge / new shared graphlet is needed, else 0).
    graphlet_snapshots_needed: int
    #: Per-query profiles for the queries that could share this burst.
    profiles: tuple[QueryBurstProfile, ...] = ()
    #: Number of event types per query (``t`` in the cost model).
    types_per_query: int = 2

    @property
    def query_count(self) -> int:
        """Number of candidate sharing queries (``k``)."""
        return len(self.profiles)

    @property
    def plan_key(self) -> PlanKey:
        """Identity of the decision stream these statistics belong to.

        Optimizers track continuity (merge/split counting, fixed static
        plans) per *candidate set*, not per event type alone: one burst may
        trigger several independent decisions for the same type — e.g. the
        multi-window runtime consults the optimizer once per query class —
        and decisions of different candidate sets must not clobber each
        other's previous-decision state.
        """
        return (self.event_type, frozenset(p.query_name for p in self.profiles))

    @property
    def predecessor_types(self) -> int:
        """Average number of predecessor types per query (``p``), at least 1."""
        if not self.profiles:
            return 1
        return max(1, round(sum(p.predecessor_types for p in self.profiles) / len(self.profiles)))

    @property
    def snapshots_created(self) -> float:
        """Estimated snapshots created when sharing the whole burst (``sc``)."""
        return self.graphlet_snapshots_needed + sum(
            profile.expected_snapshots for profile in self.profiles
        )

    def profile_map(self) -> Mapping[str, QueryBurstProfile]:
        """Profiles keyed by query name."""
        return {profile.query_name: profile for profile in self.profiles}

    def restrict(self, query_names: frozenset[str]) -> "BurstStatistics":
        """Statistics restricted to a subset of the candidate queries."""
        return BurstStatistics(
            event_type=self.event_type,
            burst_size=self.burst_size,
            events_in_window=self.events_in_window,
            graphlet_size=self.graphlet_size,
            snapshots_propagated=self.snapshots_propagated,
            graphlet_snapshots_needed=self.graphlet_snapshots_needed,
            profiles=tuple(p for p in self.profiles if p.query_name in query_names),
            types_per_query=self.types_per_query,
        )
