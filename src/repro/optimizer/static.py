"""Static sharing optimizers.

The paper's Figures 12 and 13 compare HAMLET's dynamic per-burst decisions
against a *static* optimizer that fixes the sharing plan at compile time and
never revisits it while the stream fluctuates.  Three static policies are
provided:

* :class:`AlwaysShareOptimizer` — share every burst among all candidate
  queries (the plan a static optimizer picks when sharing looks beneficial
  on the compile-time statistics);
* :class:`NeverShareOptimizer` — never share (equivalent to running GRETA
  per query inside the HAMLET executor);
* :class:`StaticPlanOptimizer` — decide once, on the first burst, using the
  benefit model, and stick with that plan for the rest of the stream.
"""

from __future__ import annotations

from repro.optimizer.cost_model import CostModel
from repro.optimizer.decisions import SharingDecision, SharingOptimizer
from repro.optimizer.statistics import BurstStatistics, PlanKey


class AlwaysShareOptimizer(SharingOptimizer):
    """Share every burst among all candidate queries."""

    def _decide(self, stats: BurstStatistics) -> SharingDecision:
        candidates = frozenset(profile.query_name for profile in stats.profiles)
        if len(candidates) < 2:
            return SharingDecision(False, frozenset(), candidates, 0.0, "single candidate query")
        return SharingDecision(True, candidates, frozenset(), 0.0, "static plan: always share")


class NeverShareOptimizer(SharingOptimizer):
    """Process every burst per query (non-shared)."""

    def _decide(self, stats: BurstStatistics) -> SharingDecision:
        candidates = frozenset(profile.query_name for profile in stats.profiles)
        return SharingDecision(False, frozenset(), candidates, 0.0, "static plan: never share")


class StaticPlanOptimizer(SharingOptimizer):
    """Evaluate the benefit model once and keep that plan forever."""

    def __init__(self, cost_model: CostModel | None = None) -> None:
        super().__init__()
        self.cost_model = cost_model or CostModel()
        #: Fixed decisions per plan key ``(event type, candidate set)``; a
        #: type shared by several independent candidate sets (e.g. several
        #: query classes of the multi-window runtime) fixes one plan each.
        self._plan: dict[PlanKey, SharingDecision] = {}

    def _decide(self, stats: BurstStatistics) -> SharingDecision:
        if stats.plan_key in self._plan:
            fixed = self._plan[stats.plan_key]
            # Re-emit the fixed plan, restricted to the current candidates.
            candidates = frozenset(profile.query_name for profile in stats.profiles)
            shared = fixed.shared_queries & candidates
            if fixed.share and len(shared) >= 2:
                return SharingDecision(True, shared, candidates - shared, fixed.estimated_benefit,
                                       "static plan (fixed at first burst)")
            return SharingDecision(False, frozenset(), candidates, fixed.estimated_benefit,
                                   "static plan (fixed at first burst)")
        candidates = frozenset(profile.query_name for profile in stats.profiles)
        if len(candidates) < 2:
            decision = SharingDecision(False, frozenset(), candidates, 0.0, "single candidate query")
        else:
            estimated = self.cost_model.benefit(stats)
            if estimated > 0:
                decision = SharingDecision(True, candidates, frozenset(), estimated,
                                           "static plan: benefit positive at compile time")
            else:
                decision = SharingDecision(False, frozenset(), candidates, estimated,
                                           "static plan: benefit negative at compile time")
        self._plan[stats.plan_key] = decision
        return decision
