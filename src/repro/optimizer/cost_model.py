"""The sharing cost model (Section 4.1).

Window-level costs (Equations 4 and 6)::

    NonShared(Q) = k * n^2
    Shared(Q)    = n^2 * s + s * k * g * t

Per-burst costs.  The paper gives two variants of the burst-level model:

* **Definition 11 (Equation 7)** — the variant used by the worked examples of
  Section 4.2 (Equations 9–11)::

      Shared(G_E, Q_E)    = b * n * sp  +  sc * k * g * t
      NonShared(G_E, Q_E) = k * b * n

* **Definition 12 (Equation 8)** — the refined variant with lookup terms::

      Shared(G_E, Q_E)    = sc * k * g * p  +  b * (log2(g) + n * sp)
      NonShared(G_E, Q_E) = k * b * (log2(g) + n)

``Benefit = NonShared - Shared`` in both; sharing a burst is beneficial when
the benefit is positive.  The unit tests reproduce Equations 9–11 verbatim
against the simple variant, pinning the arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from repro.errors import SharingError
from repro.optimizer.statistics import BurstStatistics

#: Which burst-level cost variant to use.
CostVariant = Literal["simple", "refined"]


def _log2(value: float) -> float:
    """``log2`` clamped below at 0 (the paper treats log2 of small g as 0)."""
    if value <= 1:
        return 0.0
    return math.log2(value)


def _check(burst_size: int, queries: int) -> None:
    if burst_size < 0 or queries < 0:
        raise SharingError("burst size and query count must be non-negative")


# ---------------------------------------------------------------------- #
# Window-level model (Equations 4 and 6)
# ---------------------------------------------------------------------- #
def window_non_shared_cost(queries: int, events: int) -> float:
    """Equation 4: cost of processing a window without sharing."""
    return float(queries) * float(events) ** 2


def window_shared_cost(
    queries: int, events: int, snapshots: int, graphlet_size: int, types_per_query: int
) -> float:
    """Equation 6: cost of processing a window with sharing."""
    return (
        float(events) ** 2 * snapshots
        + float(snapshots) * queries * graphlet_size * types_per_query
    )


# ---------------------------------------------------------------------- #
# Per-burst model
# ---------------------------------------------------------------------- #
def shared_cost(
    burst_size: int,
    events_in_window: int,
    graphlet_size: int,
    queries: int,
    snapshots_created: float,
    snapshots_propagated: int,
    types_per_query: int = 2,
    predecessor_types: int = 1,
    variant: CostVariant = "simple",
) -> float:
    """Cost of sharing a burst among ``queries`` queries."""
    _check(burst_size, queries)
    propagated = max(1, snapshots_propagated)
    if variant == "simple":
        # Definition 11 / Equation 7.
        return (
            burst_size * events_in_window * propagated
            + snapshots_created * queries * graphlet_size * types_per_query
        )
    # Definition 12 / Equation 8.
    maintenance = snapshots_created * queries * graphlet_size * predecessor_types
    propagation = burst_size * (_log2(graphlet_size) + events_in_window * propagated)
    return maintenance + propagation


def non_shared_cost(
    burst_size: int,
    events_in_window: int,
    graphlet_size: int,
    queries: int,
    variant: CostVariant = "simple",
) -> float:
    """Cost of processing a burst once per query without sharing."""
    _check(burst_size, queries)
    if variant == "simple":
        return queries * burst_size * events_in_window
    return queries * burst_size * (_log2(graphlet_size) + events_in_window)


def benefit(
    burst_size: int,
    events_in_window: int,
    graphlet_size: int,
    queries: int,
    snapshots_created: float,
    snapshots_propagated: int,
    types_per_query: int = 2,
    predecessor_types: int = 1,
    variant: CostVariant = "simple",
) -> float:
    """Sharing benefit of a burst (positive means sharing wins)."""
    return non_shared_cost(
        burst_size, events_in_window, graphlet_size, queries, variant
    ) - shared_cost(
        burst_size,
        events_in_window,
        graphlet_size,
        queries,
        snapshots_created,
        snapshots_propagated,
        types_per_query,
        predecessor_types,
        variant,
    )


@dataclass(frozen=True)
class CostModel:
    """Evaluates the per-burst model on :class:`BurstStatistics`."""

    variant: CostVariant = "simple"

    def shared(
        self,
        stats: BurstStatistics,
        query_count: int | None = None,
        snapshots_created: float | None = None,
    ) -> float:
        """Shared cost of the burst for ``query_count`` sharing queries."""
        return shared_cost(
            burst_size=stats.burst_size,
            events_in_window=stats.events_in_window,
            graphlet_size=stats.graphlet_size,
            queries=stats.query_count if query_count is None else query_count,
            snapshots_created=(
                stats.snapshots_created if snapshots_created is None else snapshots_created
            ),
            snapshots_propagated=stats.snapshots_propagated,
            types_per_query=stats.types_per_query,
            predecessor_types=stats.predecessor_types,
            variant=self.variant,
        )

    def non_shared(self, stats: BurstStatistics, query_count: int | None = None) -> float:
        """Non-shared cost of the burst for ``query_count`` queries."""
        return non_shared_cost(
            burst_size=stats.burst_size,
            events_in_window=stats.events_in_window,
            graphlet_size=stats.graphlet_size,
            queries=stats.query_count if query_count is None else query_count,
            variant=self.variant,
        )

    def benefit(self, stats: BurstStatistics) -> float:
        """Benefit of sharing the burst among all candidate queries."""
        return self.non_shared(stats) - self.shared(stats)
