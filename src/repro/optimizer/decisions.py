"""Per-burst sharing decisions (Section 4.2).

The dynamic optimizer is consulted by the HAMLET executor once per completed
burst.  It plugs the burst statistics into the benefit model, chooses the
query subset worth sharing, and returns a :class:`SharingDecision`.  The
executor then merges graphlets (start or continue a shared graphlet) or
splits them (fall back to per-query processing) accordingly.

The optimizer also keeps the bookkeeping the paper reports in Section 6.2:
how many decisions were made, how many bursts were shared, and how much time
the decisions themselves took (they must stay a negligible fraction of the
total latency).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.optimizer.cost_model import CostModel
from repro.optimizer.query_set import QuerySetChoice, choose_query_set
from repro.optimizer.statistics import BurstStatistics, PlanKey


@dataclass(frozen=True)
class SharingDecision:
    """Outcome of one per-burst decision."""

    #: True if the burst should be processed in a shared graphlet.
    share: bool
    #: Queries that share the graphlet (empty when ``share`` is False).
    shared_queries: frozenset[str]
    #: Queries processed separately for this burst.
    non_shared_queries: frozenset[str]
    #: Estimated benefit of the selected plan over all-non-shared execution.
    estimated_benefit: float
    #: Human-readable reason, for logs and tests.
    reason: str = ""


@dataclass
class OptimizerStatistics:
    """Counters reported by the benchmarks (Section 6.2)."""

    decisions: int = 0
    shared_bursts: int = 0
    non_shared_bursts: int = 0
    merges: int = 0
    splits: int = 0
    decision_seconds: float = 0.0

    @property
    def shared_fraction(self) -> float:
        """Fraction of bursts the optimizer decided to share."""
        total = self.shared_bursts + self.non_shared_bursts
        return self.shared_bursts / total if total else 0.0

    def merge(self, other: "OptimizerStatistics") -> None:
        """Fold another optimizer's counters into this one.

        The streaming executor runs a pool of engines (one per active window
        instance), each with its own optimizer; run-level statistics are the
        sum over the pool.
        """
        self.decisions += other.decisions
        self.shared_bursts += other.shared_bursts
        self.non_shared_bursts += other.non_shared_bursts
        self.merges += other.merges
        self.splits += other.splits
        self.decision_seconds += other.decision_seconds


class SharingOptimizer:
    """Base class: subclasses implement :meth:`decide`."""

    def __init__(self) -> None:
        self.statistics = OptimizerStatistics()
        #: Previous decision per plan key ``(event type, candidate set)`` —
        #: not per event type alone: one burst may carry independent
        #: decisions for several query classes of the same type, whose
        #: continuity must not clobber each other (see
        #: :attr:`BurstStatistics.plan_key`).
        self._previous_share: dict[PlanKey, bool] = {}

    def begin_partition(self) -> None:
        """Reset the merge/split continuity tracking for a fresh partition.

        The engine calls this from ``start()``: merge/split counters compare
        each decision against the *previous decision for the same plan key*,
        and that continuity only exists within one partition.  Without the
        reset, the first burst of every new window instance was compared
        against the previous partition's last decision and miscounted as a
        merge or split.
        """
        self._previous_share.clear()

    def decide(self, stats: BurstStatistics) -> SharingDecision:
        """Decide whether (and with which queries) to share one burst."""
        start = time.perf_counter()
        decision = self._decide(stats)
        elapsed = time.perf_counter() - start
        self._record(stats, decision, elapsed)
        return decision

    def _decide(self, stats: BurstStatistics) -> SharingDecision:
        raise NotImplementedError

    def _record(self, stats: BurstStatistics, decision: SharingDecision, elapsed: float) -> None:
        self.statistics.decisions += 1
        self.statistics.decision_seconds += elapsed
        if decision.share:
            self.statistics.shared_bursts += 1
        else:
            self.statistics.non_shared_bursts += 1
        plan_key = stats.plan_key
        previous = self._previous_share.get(plan_key)
        if previous is not None and previous != decision.share:
            if decision.share:
                self.statistics.merges += 1
            else:
                self.statistics.splits += 1
        self._previous_share[plan_key] = decision.share


class DynamicSharingOptimizer(SharingOptimizer):
    """The HAMLET optimizer: benefit-driven decision per burst."""

    def __init__(self, cost_model: CostModel | None = None) -> None:
        super().__init__()
        self.cost_model = cost_model or CostModel()

    def _decide(self, stats: BurstStatistics) -> SharingDecision:
        if stats.query_count < 2:
            return SharingDecision(
                share=False,
                shared_queries=frozenset(),
                non_shared_queries=frozenset(p.query_name for p in stats.profiles),
                estimated_benefit=0.0,
                reason="fewer than two candidate queries",
            )
        choice: QuerySetChoice = choose_query_set(stats)
        if choice.share_count < 2:
            return SharingDecision(
                share=False,
                shared_queries=frozenset(),
                non_shared_queries=frozenset(p.query_name for p in stats.profiles),
                estimated_benefit=0.0,
                reason="no query subset with positive sharing benefit",
            )
        restricted = stats.restrict(choice.shared)
        estimated_benefit = self.cost_model.benefit(restricted)
        if estimated_benefit <= 0:
            return SharingDecision(
                share=False,
                shared_queries=frozenset(),
                non_shared_queries=frozenset(p.query_name for p in stats.profiles),
                estimated_benefit=estimated_benefit,
                reason="snapshot maintenance outweighs the sharing benefit",
            )
        return SharingDecision(
            share=True,
            shared_queries=choice.shared,
            non_shared_queries=choice.non_shared,
            estimated_benefit=estimated_benefit,
            reason="positive sharing benefit",
        )
