"""Named sharing-optimizer policies and their resolution.

The runtime layers (streaming executor, sharded driver, CLI, benchmarks)
select a per-burst sharing policy by name so that a policy choice can cross
a process boundary as a plain string — shard workers rebuild their own
optimizer instances from the name, which keeps the spawn start method
picklable and the per-shard decision state independent:

* ``"dynamic"`` — the HAMLET optimizer: benefit-model decision per burst;
* ``"always"`` — static plan that shares every burst (Figures 12–13's
  *static overhead* comparison point);
* ``"never"`` — static plan that never shares (per-query processing);
* ``"static"`` — decide once, on the first burst, and keep that plan.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.errors import SharingError
from repro.optimizer.decisions import DynamicSharingOptimizer, SharingOptimizer
from repro.optimizer.static import (
    AlwaysShareOptimizer,
    NeverShareOptimizer,
    StaticPlanOptimizer,
)

__all__ = ["OPTIMIZER_POLICIES", "OptimizerSpec", "resolve_optimizer_factory"]

#: Zero-argument factories keyed by policy name.
OPTIMIZER_POLICIES: dict[str, Callable[[], SharingOptimizer]] = {
    "dynamic": DynamicSharingOptimizer,
    "always": AlwaysShareOptimizer,
    "never": NeverShareOptimizer,
    "static": StaticPlanOptimizer,
}

#: What callers may pass: nothing, a policy name, or a custom factory.
OptimizerSpec = Union[None, str, Callable[[], SharingOptimizer]]


def resolve_optimizer_factory(
    spec: OptimizerSpec,
) -> Optional[Callable[[], SharingOptimizer]]:
    """Resolve an optimizer spec to a zero-argument factory (or ``None``).

    ``None`` means *no adaptive decisions*: the runtime keeps its static
    compile-time plan and pays no burst-segmentation overhead.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        try:
            return OPTIMIZER_POLICIES[spec]
        except KeyError:
            raise SharingError(
                f"unknown sharing optimizer {spec!r}; choose one of "
                f"{', '.join(sorted(OPTIMIZER_POLICIES))}"
            ) from None
    if callable(spec):
        return spec
    raise SharingError(
        f"optimizer must be None, a policy name or a factory, got {spec!r}"
    )
