"""The HAMLET sharing optimizer (Section 4).

* :mod:`repro.optimizer.cost_model` — the shared / non-shared cost functions
  and the sharing benefit (Definitions 11 and 12, Equations 4, 6, 7 and 8).
* :mod:`repro.optimizer.statistics` — the per-burst statistics the executor
  hands to the optimizer.
* :mod:`repro.optimizer.query_set` — choice of the query subset that shares a
  burst, with the snapshot-driven and benefit-driven pruning principles
  (Theorems 4.1 and 4.2) plus an exhaustive search used to validate them.
* :mod:`repro.optimizer.decisions` — the dynamic optimizer: one light-weight
  share / not-share decision per burst (split and merge of graphlets).
* :mod:`repro.optimizer.static` — static optimizers (always share / never
  share / decide once) used as the comparison points of Figures 12 and 13.
"""

from repro.optimizer.cost_model import (
    CostModel,
    benefit,
    non_shared_cost,
    shared_cost,
)
from repro.optimizer.decisions import (
    DynamicSharingOptimizer,
    OptimizerStatistics,
    SharingDecision,
    SharingOptimizer,
)
from repro.optimizer.query_set import choose_query_set, exhaustive_best_plan
from repro.optimizer.registry import OPTIMIZER_POLICIES, resolve_optimizer_factory
from repro.optimizer.static import AlwaysShareOptimizer, NeverShareOptimizer, StaticPlanOptimizer
from repro.optimizer.statistics import BurstStatistics, QueryBurstProfile

__all__ = [
    "AlwaysShareOptimizer",
    "BurstStatistics",
    "CostModel",
    "DynamicSharingOptimizer",
    "NeverShareOptimizer",
    "OPTIMIZER_POLICIES",
    "OptimizerStatistics",
    "QueryBurstProfile",
    "SharingDecision",
    "SharingOptimizer",
    "StaticPlanOptimizer",
    "resolve_optimizer_factory",
    "benefit",
    "choose_query_set",
    "exhaustive_best_plan",
    "non_shared_cost",
    "shared_cost",
]
