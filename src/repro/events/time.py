"""Time helpers.

The paper models time as a linearly ordered set of non-negative rationals.
In this implementation timestamps are floats (seconds).  Windows, slides and
panes are expressed in the same unit.

The only non-trivial helper is :func:`gcd_of_intervals`, used by the pane
partitioner: the pane size is the greatest common divisor of all window sizes
and slides of a set of sharable queries (Section 3.1 of the paper).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import WindowError

#: Type alias used throughout the library for event timestamps (seconds).
Timestamp = float

#: Resolution, in seconds, used when computing gcd over float intervals.
#: Intervals are scaled to integers at this resolution before taking the gcd.
_GCD_RESOLUTION = 1e-3


def gcd_of_intervals(intervals: Iterable[float]) -> float:
    """Return the greatest common divisor of a collection of time intervals.

    Intervals are given in seconds and may be fractional.  They are scaled to
    millisecond resolution before the integer gcd is computed, which matches
    the granularity used by the dataset simulators.

    Raises:
        WindowError: if the collection is empty or contains a non-positive
            interval.
    """
    scaled: list[int] = []
    for interval in intervals:
        if interval <= 0:
            raise WindowError(f"intervals must be positive, got {interval!r}")
        scaled.append(int(round(interval / _GCD_RESOLUTION)))
    if not scaled:
        raise WindowError("cannot compute gcd of an empty interval collection")
    result = scaled[0]
    for value in scaled[1:]:
        result = math.gcd(result, value)
    return result * _GCD_RESOLUTION


def pane_index(timestamp: Timestamp, pane_size: float) -> int:
    """Return the index of the pane containing ``timestamp``.

    Panes are half-open intervals ``[i * pane_size, (i + 1) * pane_size)``.
    """
    if pane_size <= 0:
        raise WindowError(f"pane size must be positive, got {pane_size!r}")
    return int(timestamp // pane_size)


def pane_bounds(index: int, pane_size: float) -> tuple[float, float]:
    """Return the ``[start, end)`` bounds of the pane with the given index."""
    if pane_size <= 0:
        raise WindowError(f"pane size must be positive, got {pane_size!r}")
    return index * pane_size, (index + 1) * pane_size
