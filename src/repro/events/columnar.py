"""Versioned wire framing and the fixed-dtype columnar batch codec.

Every byte-level batch (:meth:`repro.events.batch.EventBatch.to_bytes`, the
shared-memory slab transport) starts with a four-byte magic and a codec id,
so the two codecs coexist on the wire and a mismatched or corrupt buffer
fails with a clear :class:`~repro.errors.ExecutionError` instead of an
unpickling crash:

* ``CODEC_PICKLE`` — the legacy representation: the batch's interned tables
  and rows as one pickle blob.  Compact and zero-maintenance, but decode
  rebuilds every row tuple before a single event exists.
* ``CODEC_COLUMNAR`` — fixed-dtype columns: times as f64, sequences as i64,
  event types and payload key tuples interned into tables, and one typed
  column per (key shape, attribute).  A payload column whose values are not
  uniformly ``float``/``int``-in-i64/``bool`` falls back to a pickled object
  column, so arbitrary payloads (big ints, ``None``, nested tuples, strings)
  round-trip exactly — the homogeneous numeric columns the simulators emit
  just travel as raw arrays.

Columns use the stdlib :mod:`array` machine formats, normalized to
little-endian on the (rare) big-endian host, so encode/decode of numeric
data is a C-speed ``frombytes``/``tobytes`` instead of a per-value loop.
:func:`decode_columnar_events` additionally assembles :class:`Event` objects
straight from the columns (skipping row tuples and the dataclass ``__init__``
re-validation — values were validated when the events were first created),
which is what makes the shared-memory receive path cheap.

Type preservation contract (pinned by the codec fuzz suite): decoding is
exact — ``type(value)`` survives for every payload value, ``time`` and
``sequence`` round-trip bit-identically, and payload **key order** is
preserved (key tuples are interned, never sorted).
"""

from __future__ import annotations

import pickle
import struct
import sys
from array import array
from typing import Any, Iterable, Sequence, Union

from repro.errors import ExecutionError
from repro.events.event import Event, EventType
from repro.events.time import Timestamp

#: Anything the decoders accept: raw bytes or a (shared-memory) view.
Buffer = Union[bytes, bytearray, memoryview]

#: The interned row form: ``(type_code, time, sequence, key_code, values)``.
Row = tuple[int, Timestamp, int, int, tuple[Any, ...]]

__all__ = [
    "CODEC_COLUMNAR",
    "CODEC_PICKLE",
    "MAGIC",
    "decode_columnar_body",
    "decode_columnar_events",
    "encode_columnar_body",
    "frame",
    "parse_frame",
]

#: Wire magic of every framed batch ("RePro Event Batch").
MAGIC = b"RPEB"
#: Codec ids (the byte after the magic).
CODEC_PICKLE = 1
CODEC_COLUMNAR = 2

_KNOWN_CODECS = frozenset({CODEC_PICKLE, CODEC_COLUMNAR})
_BIG_ENDIAN = sys.byteorder == "big"

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


# ---------------------------------------------------------------------- #
# Framing
# ---------------------------------------------------------------------- #
def frame(codec: int, body: bytes) -> bytes:
    """Prepend the versioned header to a codec body."""
    return MAGIC + _U8.pack(codec) + body


def parse_frame(data: Buffer) -> tuple[int, memoryview]:
    """Split a framed buffer into ``(codec, body)``.

    Raises:
        ExecutionError: if the buffer is truncated, carries the wrong magic
            (e.g. a legacy unframed pickle blob) or an unknown codec id.
    """
    view = memoryview(data)
    if len(view) < 5:
        raise ExecutionError(
            f"batch buffer too short for the wire header ({len(view)} bytes); "
            "expected RPEB magic + codec byte"
        )
    magic = bytes(view[:4])
    if magic != MAGIC:
        raise ExecutionError(
            f"batch buffer does not start with the {MAGIC!r} magic (got "
            f"{magic!r}); refusing to unpickle an unframed or foreign blob"
        )
    codec = view[4]
    if codec not in _KNOWN_CODECS:
        raise ExecutionError(
            f"unknown batch codec id {codec}; this build understands "
            f"{sorted(_KNOWN_CODECS)} (pickle, columnar)"
        )
    return codec, view[5:]


# ---------------------------------------------------------------------- #
# Column primitives
# ---------------------------------------------------------------------- #
def _encode_column(values: Sequence[Any], out: bytearray) -> None:
    """Append one typed column: tag byte, payload length, payload.

    The dtype is chosen by exact-type scan so decoding restores ``type(v)``
    for every value: ``float`` -> f64, ``int`` within i64 -> i64, ``bool`` ->
    bytes, anything else (or a mixed column) -> a pickled object column.
    """
    tag = 0
    for value in values:
        kind = type(value)
        if kind is float:
            code = 1
        elif kind is int:
            code = 2 if _I64_MIN <= value <= _I64_MAX else 4
        elif kind is bool:
            code = 3
        else:
            code = 4
        if tag == 0:
            tag = code
        elif tag != code:
            tag = 4
        if tag == 4:
            break
    if tag in (0, 1):  # empty columns encode as (empty) f64
        f64s = array("d", values)
        if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
            f64s.byteswap()
        payload = f64s.tobytes()
        out += b"d"
    elif tag == 2:
        i64s = array("q", values)
        if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
            i64s.byteswap()
        payload = i64s.tobytes()
        out += b"q"
    elif tag == 3:
        payload = bytes(values)
        out += b"b"
    else:
        payload = pickle.dumps(list(values), protocol=pickle.HIGHEST_PROTOCOL)
        out += b"O"
    out += _U32.pack(len(payload))
    out += payload


def _decode_column(view: memoryview, offset: int, count: int) -> tuple[list[Any], int]:
    """Decode one column at ``offset``; return ``(values, next_offset)``."""
    values: list[Any]
    try:
        tag = view[offset : offset + 1].tobytes()
        (nbytes,) = _U32.unpack_from(view, offset + 1)
        payload = view[offset + 5 : offset + 5 + nbytes]
        if len(payload) != nbytes:
            raise ExecutionError(
                f"columnar batch truncated: column payload of {nbytes} bytes "
                f"exceeds the remaining buffer"
            )
        if tag == b"d":
            f64s = array("d")
            f64s.frombytes(payload)
            if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
                f64s.byteswap()
            values = f64s.tolist()
        elif tag == b"q":
            i64s = array("q")
            i64s.frombytes(payload)
            if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
                i64s.byteswap()
            values = i64s.tolist()
        elif tag == b"b":
            values = [byte == 1 for byte in payload.tobytes()]
        elif tag == b"O":
            values = pickle.loads(payload)
        else:
            raise ExecutionError(f"columnar batch corrupt: unknown column tag {tag!r}")
    except struct.error as error:
        raise ExecutionError(f"columnar batch truncated: {error}") from None
    if len(values) != count:
        raise ExecutionError(
            f"columnar batch corrupt: column holds {len(values)} values, "
            f"expected {count}"
        )
    return values, offset + 5 + nbytes


def _encode_string(text: str, out: bytearray) -> None:
    data = text.encode("utf-8")
    out += _U32.pack(len(data))
    out += data


def _decode_string(view: memoryview, offset: int) -> tuple[str, int]:
    (length,) = _U32.unpack_from(view, offset)
    data = view[offset + 4 : offset + 4 + length]
    if len(data) != length:
        raise ExecutionError("columnar batch truncated inside a string table")
    return data.tobytes().decode("utf-8"), offset + 4 + length


def _decode_codes(
    view: memoryview, offset: int, count: int, table: int
) -> tuple["array[int]", int]:
    (nbytes,) = _U32.unpack_from(view, offset)
    payload = view[offset + 4 : offset + 4 + nbytes]
    if len(payload) != nbytes:
        raise ExecutionError("columnar batch truncated inside a code column")
    codes = array("I")
    codes.frombytes(payload)
    if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
        codes.byteswap()
    if len(codes) != count:
        raise ExecutionError(
            f"columnar batch corrupt: {len(codes)} interning codes for "
            f"{count} events"
        )
    for code in codes:
        if code >= table:
            raise ExecutionError(
                f"columnar batch corrupt: interning code {code} outside its "
                f"table of {table} entries"
            )
    return codes, offset + 4 + nbytes


# ---------------------------------------------------------------------- #
# Body codec (interned rows <-> columns)
# ---------------------------------------------------------------------- #
def encode_columnar_body(
    type_table: Sequence[EventType],
    key_table: Sequence[tuple[str, ...]],
    rows: Sequence[Row],
) -> bytes:
    """Encode a batch's interned representation into the columnar body.

    ``rows`` is the :class:`EventBatch` row form:
    ``(type_code, time, sequence, key_code, values)``.
    """
    out = bytearray()
    count = len(rows)
    out += _U32.pack(count)
    _encode_column([row[1] for row in rows], out)  # times
    _encode_column([row[2] for row in rows], out)  # sequences
    out += _U32.pack(len(type_table))
    for name in type_table:
        _encode_string(name, out)
    type_codes = array("I", [row[0] for row in rows])
    if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
        type_codes.byteswap()
    packed = type_codes.tobytes()
    out += _U32.pack(len(packed))
    out += packed
    out += _U32.pack(len(key_table))
    for keys in key_table:
        out += _U16.pack(len(keys))
        for key in keys:
            _encode_string(key, out)
    key_codes = array("I", [row[3] for row in rows])
    if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts only
        key_codes.byteswap()
    packed = key_codes.tobytes()
    out += _U32.pack(len(packed))
    out += packed
    # One typed column per (key shape, attribute position), holding the
    # values of that shape's events in stream order.
    values_by_shape: list[list[tuple[Any, ...]]] = [[] for _ in key_table]
    for row in rows:
        values_by_shape[row[3]].append(row[4])
    for shape_index, keys in enumerate(key_table):
        shape_rows = values_by_shape[shape_index]
        for position in range(len(keys)):
            _encode_column([values[position] for values in shape_rows], out)
    return bytes(out)


class _ParsedColumns:
    """The decoded column set, shared by both assemblers."""

    __slots__ = (
        "count",
        "times",
        "sequences",
        "type_table",
        "type_codes",
        "key_table",
        "key_codes",
        "shape_columns",
    )

    count: int
    times: list[Any]
    sequences: list[Any]
    type_table: list[str]
    type_codes: "array[int]"
    key_table: list[tuple[str, ...]]
    key_codes: "array[int]"
    shape_columns: list[list[list[Any]]]


def _parse_columns(buffer: Buffer) -> _ParsedColumns:
    view = memoryview(buffer)
    parsed = _ParsedColumns()
    try:
        (count,) = _U32.unpack_from(view, 0)
        offset = 4
        parsed.count = count
        parsed.times, offset = _decode_column(view, offset, count)
        parsed.sequences, offset = _decode_column(view, offset, count)
        (type_count,) = _U32.unpack_from(view, offset)
        offset += 4
        type_table: list[str] = []
        for _ in range(type_count):
            name, offset = _decode_string(view, offset)
            type_table.append(name)
        parsed.type_table = type_table
        parsed.type_codes, offset = _decode_codes(view, offset, count, type_count)
        (shape_count,) = _U32.unpack_from(view, offset)
        offset += 4
        key_table: list[tuple[str, ...]] = []
        for _ in range(shape_count):
            (key_count,) = _U16.unpack_from(view, offset)
            offset += 2
            keys: list[str] = []
            for _ in range(key_count):
                key, offset = _decode_string(view, offset)
                keys.append(key)
            key_table.append(tuple(keys))
        parsed.key_table = key_table
        parsed.key_codes, offset = _decode_codes(view, offset, count, shape_count)
        occupancy = [0] * shape_count
        for code in parsed.key_codes:
            occupancy[code] += 1
        shape_columns: list[list[list[Any]]] = []
        for shape_index, keys in enumerate(key_table):
            columns: list[list[Any]] = []
            for _ in range(len(keys)):
                column, offset = _decode_column(view, offset, occupancy[shape_index])
                columns.append(column)
            shape_columns.append(columns)
        parsed.shape_columns = shape_columns
    except struct.error as error:
        raise ExecutionError(f"columnar batch truncated: {error}") from None
    except ExecutionError:
        raise
    except Exception as error:
        raise ExecutionError(f"columnar batch corrupt: {error}") from None
    return parsed


def decode_columnar_body(
    buffer: Buffer,
) -> tuple[tuple[EventType, ...], tuple[tuple[str, ...], ...], tuple[Row, ...]]:
    """Decode a columnar body back into the batch's interned row form."""
    parsed = _parse_columns(buffer)
    cursors = [0] * len(parsed.key_table)
    shape_columns = parsed.shape_columns
    rows: list[Row] = []
    for index in range(parsed.count):
        key_code = parsed.key_codes[index]
        cursor = cursors[key_code]
        cursors[key_code] = cursor + 1
        values = tuple(column[cursor] for column in shape_columns[key_code])
        rows.append(
            (
                parsed.type_codes[index],
                parsed.times[index],
                parsed.sequences[index],
                key_code,
                values,
            )
        )
    return tuple(parsed.type_table), tuple(parsed.key_table), tuple(rows)


# ---------------------------------------------------------------------- #
# Fast event assembly (the shared-memory receive path)
# ---------------------------------------------------------------------- #
_event_new = Event.__new__
_event_set = object.__setattr__


def build_event(
    event_type: EventType, time: Timestamp, payload: dict[str, Any], sequence: int
) -> Event:
    """Assemble an :class:`Event` without re-running dataclass validation.

    Decoded values were validated when the events were first created, so the
    receive path skips ``__init__``/``__post_init__`` (and the sequence
    counter) entirely.
    """
    event = _event_new(Event)
    _event_set(event, "event_type", event_type)
    _event_set(event, "time", time)
    _event_set(event, "payload", payload)
    _event_set(event, "sequence", sequence)
    return event


def decode_columnar_events(buffer: Buffer) -> list[Event]:
    """Decode a columnar body straight into events (no intermediate rows)."""
    parsed = _parse_columns(buffer)
    type_table = parsed.type_table
    key_table = parsed.key_table
    times = parsed.times
    sequences = parsed.sequences
    type_codes = parsed.type_codes
    key_codes = parsed.key_codes
    shape_columns = parsed.shape_columns
    cursors = [0] * len(key_table)
    events: list[Event] = []
    append = events.append
    for index in range(parsed.count):
        key_code = key_codes[index]
        cursor = cursors[key_code]
        cursors[key_code] = cursor + 1
        keys = key_table[key_code]
        columns = shape_columns[key_code]
        payload = {keys[j]: columns[j][cursor] for j in range(len(keys))}
        append(
            build_event(
                type_table[type_codes[index]], times[index], payload, sequences[index]
            )
        )
    return events


def encode_events(events: Iterable[Event], codec: int) -> bytes:
    """Encode a chunk of events into a framed buffer with ``codec``."""
    from repro.events.batch import EventBatch

    return EventBatch.from_events(events).to_bytes(
        codec="columnar" if codec == CODEC_COLUMNAR else "pickle"
    )


def decode_events(data: Buffer) -> list[Event]:
    """Decode any framed buffer into events, dispatching on its codec."""
    codec, body = parse_frame(data)
    if codec == CODEC_COLUMNAR:
        return decode_columnar_events(body)
    from repro.events.batch import EventBatch

    return EventBatch.from_bytes(data).events()
