"""Columnar in-memory event blocks: the hot path's native batch format.

:class:`EventBlock` keeps a chunk of in-order events in exactly the layout
the columnar wire codec (:mod:`repro.events.columnar`) already uses on the
wire — times and sequences as flat columns, event types and payload key
tuples interned into tables, and one value column per (key shape, attribute
position).  That makes the block the *native* unit of work end to end:

* a shared-memory slab or a framed byte buffer becomes a block with one
  column parse (:meth:`EventBlock.from_bytes`) — no per-event assembly;
* the sharded router partitions a block by hashing each distinct group key
  once over the payload columns instead of once per event;
* the streaming executor computes window-instance coverage and kernel-run
  segmentation over the raw time/type columns and feeds the fold backends
  directly.

Per-row :class:`~repro.events.event.Event` views are created lazily and only
at API edges (:meth:`event_at`, iteration, the per-event compatibility
paths).  Slicing with a unit step is **zero-copy**: the child block shares
every column with its parent and only narrows the ``[start, stop)`` row
range — which is why the column accessors return the *root* containers and
must be indexed with absolute positions from :attr:`start` to :attr:`stop`.

Type preservation matches the codec contract pinned by the codec fuzz
suite: payload values are stored as the original Python objects (the dtype
selection of :func:`repro.events.columnar._encode_column` happens only when
a block is serialized), so ``type(value)``, ``time`` and ``sequence``
survive a round-trip bit-identically and payload key order is never sorted.
"""

from __future__ import annotations

import bisect
import pickle
from array import array
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from repro.errors import ExecutionError, SchemaError
from repro.events import columnar
from repro.events import event as _event_module
from repro.events.columnar import Buffer, build_event
from repro.events.event import Event, EventType
from repro.events.time import Timestamp

__all__ = ["EventBlock", "EventBlockBuilder"]

#: Per-shape value columns: ``shape_columns[key_code][position][slot]``.
ShapeColumns = list[list[list[Any]]]


class EventBlock:
    """An immutable columnar chunk of events with zero-copy slicing.

    Blocks are constructed through the classmethods (:meth:`from_events`,
    :meth:`from_bytes`, :meth:`empty`) or an :class:`EventBlockBuilder`;
    the ``__init__`` signature is an internal detail shared with slicing.
    """

    __slots__ = (
        "_times",
        "_sequences",
        "_type_table",
        "_type_codes",
        "_key_table",
        "_key_codes",
        "_row_slots",
        "_shape_columns",
        "_start",
        "_stop",
        "_key_positions",
        "_column_cache",
        "_group_cache",
    )

    def __init__(
        self,
        times: list[Timestamp],
        sequences: list[int],
        type_table: tuple[EventType, ...],
        type_codes: "array[int]",
        key_table: tuple[tuple[str, ...], ...],
        key_codes: "array[int]",
        row_slots: "array[int]",
        shape_columns: ShapeColumns,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        self._times = times
        self._sequences = sequences
        self._type_table = type_table
        self._type_codes = type_codes
        self._key_table = key_table
        self._key_codes = key_codes
        #: Absolute position of each row inside its shape's columns, so a
        #: zero-copy slice keeps O(1) payload access without re-cursoring.
        self._row_slots = row_slots
        self._shape_columns = shape_columns
        self._start = start
        self._stop = len(times) if stop is None else stop
        self._key_positions: Optional[list[dict[str, int]]] = None
        self._column_cache: dict[str, list[Any]] = {}
        self._group_cache: dict[tuple[str, ...], list[tuple[Any, ...]]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "EventBlock":
        """An empty block (no rows, no interned tables)."""
        return cls([], [], (), array("I"), (), array("I"), array("I"), [])

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "EventBlock":
        """Encode ``events`` (in stream order) into a block."""
        builder = EventBlockBuilder()
        for event in events:
            builder.append(event)
        return builder.finish()

    @classmethod
    def from_rows(
        cls,
        type_table: Sequence[EventType],
        key_table: Sequence[tuple[str, ...]],
        rows: Sequence[columnar.Row],
    ) -> "EventBlock":
        """Build a block from the interned row form shared with ``EventBatch``."""
        times: list[Timestamp] = []
        sequences: list[int] = []
        type_codes = array("I")
        key_codes = array("I")
        row_slots = array("I")
        shape_columns: ShapeColumns = [
            [[] for _ in keys] for keys in key_table
        ]
        occupancy = [0] * len(key_table)
        for type_code, time, sequence, key_code, values in rows:
            times.append(time)
            sequences.append(sequence)
            type_codes.append(type_code)
            key_codes.append(key_code)
            row_slots.append(occupancy[key_code])
            occupancy[key_code] += 1
            columns = shape_columns[key_code]
            for position, value in enumerate(values):
                columns[position].append(value)
        return cls(
            times,
            sequences,
            tuple(type_table),
            type_codes,
            tuple(key_table),
            key_codes,
            row_slots,
            shape_columns,
        )

    @classmethod
    def from_parsed_columns(cls, parsed: "columnar._ParsedColumns") -> "EventBlock":
        """Wrap a decoded column set without touching the payload columns."""
        row_slots = array("I")
        occupancy = [0] * len(parsed.key_table)
        for code in parsed.key_codes:
            row_slots.append(occupancy[code])
            occupancy[code] += 1
        return cls(
            parsed.times,
            parsed.sequences,
            tuple(parsed.type_table),
            parsed.type_codes,
            tuple(parsed.key_table),
            parsed.key_codes,
            row_slots,
            parsed.shape_columns,
        )

    @classmethod
    def from_bytes(cls, data: Buffer) -> "EventBlock":
        """Decode any framed batch buffer into a block.

        The columnar codec is the fast path: one column parse, the payload
        columns are adopted as-is.  The legacy pickle codec round-trips
        through the interned row form — still no per-event objects.
        """
        codec, body = columnar.parse_frame(data)
        if codec == columnar.CODEC_COLUMNAR:
            return cls.from_parsed_columns(columnar._parse_columns(body))
        try:
            state = pickle.loads(body)
        except Exception as error:
            raise ExecutionError(f"pickle batch body corrupt: {error}") from None
        type_table, key_table, rows = state
        return cls.from_rows(type_table, key_table, rows)

    # ------------------------------------------------------------------ #
    # Size and range
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._stop - self._start

    def __bool__(self) -> bool:
        return self._stop > self._start

    @property
    def start(self) -> int:
        """First absolute row index of this block's range."""
        return self._start

    @property
    def stop(self) -> int:
        """One past the last absolute row index of this block's range."""
        return self._stop

    # ------------------------------------------------------------------ #
    # Raw columns (absolute indexing: ``start`` .. ``stop``)
    # ------------------------------------------------------------------ #
    @property
    def times(self) -> list[Timestamp]:
        """The root time column (index with absolute positions)."""
        return self._times

    @property
    def sequences(self) -> list[int]:
        """The root sequence column (index with absolute positions)."""
        return self._sequences

    @property
    def type_codes(self) -> "array[int]":
        """The root interned type-code column (absolute positions)."""
        return self._type_codes

    @property
    def type_table(self) -> tuple[EventType, ...]:
        """The interned event-type table (first-appearance order)."""
        return self._type_table

    @property
    def key_codes(self) -> "array[int]":
        """The root payload-shape code column (absolute positions)."""
        return self._key_codes

    @property
    def key_table(self) -> tuple[tuple[str, ...], ...]:
        """The interned payload key-tuple table."""
        return self._key_table

    @property
    def row_slots(self) -> "array[int]":
        """Per-row slot inside its shape's columns (absolute positions)."""
        return self._row_slots

    @property
    def shape_columns(self) -> ShapeColumns:
        """The per-shape payload value columns (indexed by row slot)."""
        return self._shape_columns

    @property
    def event_types(self) -> tuple[EventType, ...]:
        """Distinct event types present in the *root* block's table."""
        return self._type_table

    # ------------------------------------------------------------------ #
    # Per-row access (lazy Event views only at the API edge)
    # ------------------------------------------------------------------ #
    def _absolute(self, index: int) -> int:
        length = self._stop - self._start
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"block index {index} out of range for {length} rows")
        return self._start + index

    def time_at(self, index: int) -> Timestamp:
        """Timestamp of row ``index`` (block-relative)."""
        return self._times[self._absolute(index)]

    def sequence_at(self, index: int) -> int:
        """Sequence number of row ``index`` (block-relative)."""
        return self._sequences[self._absolute(index)]

    def type_at(self, index: int) -> EventType:
        """Event type of row ``index`` (block-relative)."""
        return self._type_table[self._type_codes[self._absolute(index)]]

    def payload_at(self, index: int) -> dict[str, Any]:
        """Payload dict of row ``index`` (block-relative), freshly built."""
        position = self._absolute(index)
        key_code = self._key_codes[position]
        keys = self._key_table[key_code]
        columns = self._shape_columns[key_code]
        slot = self._row_slots[position]
        return {keys[j]: columns[j][slot] for j in range(len(keys))}

    def event_at(self, index: int) -> Event:
        """Materialize the lazy :class:`Event` view of row ``index``."""
        position = self._absolute(index)
        key_code = self._key_codes[position]
        keys = self._key_table[key_code]
        columns = self._shape_columns[key_code]
        slot = self._row_slots[position]
        payload = {keys[j]: columns[j][slot] for j in range(len(keys))}
        return build_event(
            self._type_table[self._type_codes[position]],
            self._times[position],
            payload,
            self._sequences[position],
        )

    def __iter__(self) -> Iterator[Event]:
        for index in range(self._stop - self._start):
            yield self.event_at(index)

    def to_events(self) -> list[Event]:
        """Materialize every row as an :class:`Event` (the API edge)."""
        return [self.event_at(index) for index in range(self._stop - self._start)]

    def __getitem__(self, index: Union[int, slice]) -> "Event | EventBlock":
        if isinstance(index, slice):
            start, stop, step = index.indices(self._stop - self._start)
            if step == 1:
                return self.slice(start, stop)
            return self.select(range(start, stop, step))
        return self.event_at(index)

    # ------------------------------------------------------------------ #
    # Slicing and selection
    # ------------------------------------------------------------------ #
    def slice(self, start: int, stop: int) -> "EventBlock":
        """Zero-copy sub-block of block-relative rows ``[start, stop)``.

        The child shares every column with this block (aliasing is pinned
        by the block test suite); only the row range narrows.
        """
        length = self._stop - self._start
        start = max(0, min(start, length))
        stop = max(start, min(stop, length))
        return EventBlock(
            self._times,
            self._sequences,
            self._type_table,
            self._type_codes,
            self._key_table,
            self._key_codes,
            self._row_slots,
            self._shape_columns,
            self._start + start,
            self._start + stop,
        )

    def select(self, indices: Iterable[int]) -> "EventBlock":
        """Gather block-relative ``indices`` into a new compact block.

        The interned tables are shared; value columns are copied for the
        selected rows only (this is what the sharded router ships).
        """
        times: list[Timestamp] = []
        sequences: list[int] = []
        type_codes = array("I")
        key_codes = array("I")
        row_slots = array("I")
        shape_columns: ShapeColumns = [
            [[] for _ in keys] for keys in self._key_table
        ]
        occupancy = [0] * len(self._key_table)
        src_times = self._times
        src_sequences = self._sequences
        src_type_codes = self._type_codes
        src_key_codes = self._key_codes
        src_row_slots = self._row_slots
        src_shapes = self._shape_columns
        base = self._start
        length = self._stop - base
        for index in indices:
            if not 0 <= index < length:
                raise IndexError(
                    f"block index {index} out of range for {length} rows"
                )
            position = base + index
            key_code = src_key_codes[position]
            slot = src_row_slots[position]
            times.append(src_times[position])
            sequences.append(src_sequences[position])
            type_codes.append(src_type_codes[position])
            key_codes.append(key_code)
            row_slots.append(occupancy[key_code])
            occupancy[key_code] += 1
            source_columns = src_shapes[key_code]
            target_columns = shape_columns[key_code]
            for j in range(len(source_columns)):
                target_columns[j].append(source_columns[j][slot])
        return EventBlock(
            times,
            sequences,
            self._type_table,
            type_codes,
            self._key_table,
            key_codes,
            row_slots,
            shape_columns,
        )

    def slice_time(
        self, start: Optional[Timestamp] = None, end: Optional[Timestamp] = None
    ) -> "EventBlock":
        """Zero-copy sub-block covering the half-open time slice ``[start, end)``.

        The cut points come from binary search over the (sorted) time
        column — the block analogue of :func:`repro.events.stream.slice_stream`.
        """
        times = self._times
        lo = (
            bisect.bisect_left(times, start, self._start, self._stop) - self._start
            if start is not None
            else 0
        )
        hi = (
            bisect.bisect_left(times, end, self._start, self._stop) - self._start
            if end is not None
            else self._stop - self._start
        )
        return self.slice(lo, hi)

    # ------------------------------------------------------------------ #
    # Columnar payload access
    # ------------------------------------------------------------------ #
    def _positions(self) -> list[dict[str, int]]:
        positions = self._key_positions
        if positions is None:
            positions = [
                {key: j for j, key in enumerate(keys)} for keys in self._key_table
            ]
            self._key_positions = positions
        return positions

    def payload_column(self, key: str, default: Any = None) -> list[Any]:
        """Per-row values of payload attribute ``key`` (``default`` if absent).

        Matches :meth:`Event.get` semantics row by row; the ``default is
        None`` case is cached per block instance (it backs group-key
        computation on the routing and windowing hot paths).
        """
        if default is None:
            cached = self._column_cache.get(key)
            if cached is not None:
                return cached
        positions = self._positions()
        key_codes = self._key_codes
        row_slots = self._row_slots
        shapes = self._shape_columns
        per_shape: list[Optional[list[Any]]] = []
        for code, keys in enumerate(self._key_table):
            j = positions[code].get(key)
            per_shape.append(None if j is None else shapes[code][j])
        if len(per_shape) == 1:
            # Single payload shape: row slots are the identity, so the
            # column *is* the answer — one C-level slice copy.
            column = per_shape[0]
            if column is None:
                out = [default] * (self._stop - self._start)
            else:
                out = column[self._start : self._stop]
        else:
            out = []
            append = out.append
            for position in range(self._start, self._stop):
                column = per_shape[key_codes[position]]
                append(default if column is None else column[row_slots[position]])
        if default is None:
            self._column_cache[key] = out
        return out

    def group_keys(self, attributes: tuple[str, ...]) -> list[tuple[Any, ...]]:
        """Per-row group-key tuples for ``attributes`` (cached per block).

        Equivalent to ``tuple(event.get(a) for a in attributes)`` row by
        row — the exact :meth:`PartitionSpec.group_key` contract.
        """
        cached = self._group_cache.get(attributes)
        if cached is not None:
            return cached
        columns = [self.payload_column(attribute) for attribute in attributes]
        if not columns:
            keys: list[tuple[Any, ...]] = [()] * (self._stop - self._start)
        elif len(columns) == 1:
            keys = [(value,) for value in columns[0]]
        else:
            keys = list(zip(*columns))
        self._group_cache[attributes] = keys
        return keys

    # ------------------------------------------------------------------ #
    # Serialization (shared wire framing with EventBatch)
    # ------------------------------------------------------------------ #
    def _rows(self) -> tuple[columnar.Row, ...]:
        rows: list[columnar.Row] = []
        times = self._times
        sequences = self._sequences
        type_codes = self._type_codes
        key_codes = self._key_codes
        row_slots = self._row_slots
        shapes = self._shape_columns
        for position in range(self._start, self._stop):
            key_code = key_codes[position]
            slot = row_slots[position]
            values = tuple(column[slot] for column in shapes[key_code])
            rows.append(
                (
                    type_codes[position],
                    times[position],
                    sequences[position],
                    key_code,
                    values,
                )
            )
        return tuple(rows)

    def to_bytes(self, codec: str = "columnar") -> bytes:
        """Serialize this block's rows to a framed buffer.

        The output interoperates with ``EventBatch.from_bytes`` and
        :meth:`EventBlock.from_bytes` — same magic, same codecs.
        """
        if codec == "columnar":
            body = columnar.encode_columnar_body(
                self._type_table, self._key_table, self._rows()
            )
            return columnar.frame(columnar.CODEC_COLUMNAR, body)
        if codec == "pickle":
            blob = pickle.dumps(
                (self._type_table, self._key_table, self._rows()),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            return columnar.frame(columnar.CODEC_PICKLE, blob)
        raise ExecutionError(
            f"unknown block codec {codec!r}; choose 'pickle' or 'columnar'"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventBlock({self._stop - self._start} events, "
            f"{len(self._type_table)} types)"
        )


class EventBlockBuilder:
    """Incrementally build an :class:`EventBlock` without per-row events.

    Dataset simulators append raw ``(type, time, payload)`` rows
    (:meth:`append_row`); compatibility paths append existing events
    (:meth:`append`).  Rows must arrive in non-decreasing time order —
    the same contract :class:`~repro.events.stream.EventStream` enforces.
    """

    __slots__ = (
        "_times",
        "_sequences",
        "_type_table",
        "_type_codes",
        "_type_map",
        "_key_table",
        "_key_codes",
        "_key_map",
        "_row_slots",
        "_shape_columns",
        "_occupancy",
    )

    def __init__(self) -> None:
        self._times: list[Timestamp] = []
        self._sequences: list[int] = []
        self._type_table: list[EventType] = []
        self._type_codes: "array[int]" = array("I")
        self._type_map: dict[EventType, int] = {}
        self._key_table: list[tuple[str, ...]] = []
        self._key_codes: "array[int]" = array("I")
        self._key_map: dict[tuple[str, ...], int] = {}
        self._row_slots: "array[int]" = array("I")
        self._shape_columns: ShapeColumns = []
        self._occupancy: list[int] = []

    def __len__(self) -> int:
        return len(self._times)

    def append_row(
        self,
        event_type: EventType,
        time: Timestamp,
        payload: dict[str, Any],
        sequence: Optional[int] = None,
    ) -> None:
        """Append one row; draws the global sequence counter if unset."""
        if time < 0:
            raise SchemaError(f"event time must be non-negative, got {time!r}")
        if sequence is None:
            sequence = next(_event_module._sequence_counter)
        type_code = self._type_map.get(event_type)
        if type_code is None:
            type_code = self._type_map[event_type] = len(self._type_table)
            self._type_table.append(event_type)
        keys = tuple(payload)
        key_code = self._key_map.get(keys)
        if key_code is None:
            key_code = self._key_map[keys] = len(self._key_table)
            self._key_table.append(keys)
            self._shape_columns.append([[] for _ in keys])
            self._occupancy.append(0)
        self._times.append(time)
        self._sequences.append(sequence)
        self._type_codes.append(type_code)
        self._key_codes.append(key_code)
        self._row_slots.append(self._occupancy[key_code])
        self._occupancy[key_code] += 1
        columns = self._shape_columns[key_code]
        for position, value in enumerate(payload.values()):
            columns[position].append(value)

    def append(self, event: Event) -> None:
        """Append an existing event (keeps its sequence number)."""
        self.append_row(event.event_type, event.time, dict(event.payload), event.sequence)

    def finish(self) -> EventBlock:
        """Freeze the builder into an immutable block."""
        return EventBlock(
            self._times,
            self._sequences,
            tuple(self._type_table),
            self._type_codes,
            tuple(self._key_table),
            self._key_codes,
            self._row_slots,
            self._shape_columns,
        )
