"""Event model and stream abstractions.

This package provides the substrate every engine in the library is built on:

* :class:`~repro.events.event.Event` — an immutable timestamped tuple of a
  particular event type.
* :class:`~repro.events.schema.Attribute` / :class:`~repro.events.schema.Schema`
  — attribute declarations and validation for event types.
* :class:`~repro.events.stream.EventStream` — an ordered, replayable sequence
  of events with helpers for slicing, merging and rate statistics.
* :class:`~repro.events.batch.EventBatch` — a compact, picklable chunk of
  events for cross-process transport (the sharded runtime's wire format).
* :class:`~repro.events.block.EventBlock` — the columnar in-memory batch the
  hot path consumes natively (zero-copy slices, lazy per-row event views).
* :mod:`~repro.events.time` — time-stamp helpers shared by windows and panes.
"""

from repro.events.batch import EventBatch
from repro.events.block import EventBlock, EventBlockBuilder
from repro.events.event import Event, EventType
from repro.events.schema import Attribute, AttributeKind, Schema
from repro.events.stream import EventStream, StreamStatistics, merge_streams
from repro.events.time import Timestamp, gcd_of_intervals

__all__ = [
    "Attribute",
    "AttributeKind",
    "Event",
    "EventBatch",
    "EventBlock",
    "EventBlockBuilder",
    "EventStream",
    "EventType",
    "Schema",
    "StreamStatistics",
    "Timestamp",
    "gcd_of_intervals",
    "merge_streams",
]
