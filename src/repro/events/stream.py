"""Event streams.

An :class:`EventStream` is an ordered, replayable, in-memory sequence of
events.  The runtime executor consumes streams event by event; the dataset
simulators produce them; benchmarks slice and merge them.

Streams enforce the paper's in-order arrival assumption: appending an event
that regresses behind the last appended event in ``(time, sequence)`` order
raises :class:`~repro.errors.StreamError` (equal times with non-decreasing
sequence numbers are fine — that is the total event order every consumer
downstream relies on).  Disordered feeds belong in plain event lists or
blocks, ingested through an executor with ``allowed_lateness`` set.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Sequence, overload

from repro.errors import StreamError
from repro.events.event import Event, EventType
from repro.events.time import Timestamp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.events.block import EventBlock


@dataclass(frozen=True, slots=True)
class StreamStatistics:
    """Summary statistics of a stream used by benchmarks and the optimizer."""

    count: int
    duration: float
    events_per_second: float
    events_per_type: dict[EventType, int]

    @property
    def events_per_minute(self) -> float:
        """Average arrival rate expressed per minute (the paper's unit)."""
        return self.events_per_second * 60.0


class EventStream:
    """An ordered, replayable sequence of events.

    The class behaves like an immutable sequence once handed to an engine but
    supports efficient appends while a simulator is producing it.
    """

    __slots__ = ("name", "_events", "_times", "_by_type")

    def __init__(self, events: Iterable[Event] = (), *, name: str = "stream") -> None:
        self.name = name
        self._events: list[Event] = []
        #: Timestamp array kept in lock-step with ``_events`` so time-based
        #: slicing (``between``, the streaming executor's pane bounds) never
        #: rebuilds the full list per call.
        self._times: list[Timestamp] = []
        #: Per-type index kept in lock-step with ``_events`` so type-based
        #: selection (``of_type``/``of_types``, the executors' per-unit
        #: relevant-type filtering) never re-scans the full stream.
        self._by_type: dict[EventType, list[Event]] = {}
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def append(self, event: Event) -> None:
        """Append ``event``; arrivals must not regress in ``(time, sequence)``.

        Time alone is not enough: equal-time events with a regressing
        sequence number would pass a time-only check here only to be
        rejected later by the shared-window engines' strict order guard —
        the boundary enforces the same total order.
        """
        if self._events:
            last = self._events[-1]
            if event.time < last.time or (
                event.time == last.time and event.sequence < last.sequence
            ):
                raise StreamError(
                    f"out-of-order append: event time={event.time!r} "
                    f"seq={event.sequence} arrived after time={last.time!r} "
                    f"seq={last.sequence} and would precede it in stream order"
                )
        self._events.append(event)
        self._times.append(event.time)
        per_type = self._by_type.get(event.event_type)
        if per_type is None:
            per_type = self._by_type[event.event_type] = []
        per_type.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        """Append every event in ``events`` in order."""
        for event in events:
            self.append(event)

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @overload
    def __getitem__(self, index: int) -> Event: ...

    @overload
    def __getitem__(self, index: slice) -> "EventStream": ...

    def __getitem__(self, index: int | slice) -> "Event | EventStream":
        if isinstance(index, slice):
            return EventStream(self._events[index], name=self.name)
        return self._events[index]

    def __bool__(self) -> bool:
        return bool(self._events)

    @property
    def events(self) -> Sequence[Event]:
        """The underlying events as an immutable view."""
        return tuple(self._events)

    def to_block(self) -> "EventBlock":
        """Encode the stream into a columnar :class:`EventBlock`.

        The block is the hot path's native batch format; executors ingest
        it without materializing per-event objects.
        """
        from repro.events.block import EventBlock

        return EventBlock.from_events(self._events)

    # ------------------------------------------------------------------ #
    # Time-based access
    # ------------------------------------------------------------------ #
    @property
    def start_time(self) -> Optional[Timestamp]:
        """Timestamp of the first event, or None for an empty stream."""
        return self._events[0].time if self._events else None

    @property
    def end_time(self) -> Optional[Timestamp]:
        """Timestamp of the last event, or None for an empty stream."""
        return self._events[-1].time if self._events else None

    @property
    def times(self) -> Sequence[Timestamp]:
        """The event timestamps as a sorted array (kept in step with appends)."""
        return self._times

    def index_at(self, timestamp: Timestamp) -> int:
        """Index of the first event with ``time >= timestamp`` (binary search)."""
        return bisect.bisect_left(self._times, timestamp)

    def between(self, start: Timestamp, end: Timestamp) -> "EventStream":
        """Return the sub-stream with timestamps in the half-open ``[start, end)``."""
        return EventStream(
            self._events[self.index_at(start) : self.index_at(end)], name=self.name
        )

    def filter(self, predicate: Callable[[Event], bool]) -> "EventStream":
        """Return the sub-stream of events satisfying ``predicate``."""
        return EventStream(
            (event for event in self._events if predicate(event)), name=self.name
        )

    @property
    def by_type(self) -> dict[EventType, Sequence[Event]]:
        """The per-type event lists (each in stream order), built on append."""
        return {event_type: tuple(events) for event_type, events in self._by_type.items()}

    def events_of_type(self, event_type: EventType) -> Sequence[Event]:
        """The events of one type in stream order (an immutable view)."""
        return tuple(self._by_type.get(event_type, ()))

    def of_types(self, event_types: Iterable[EventType]) -> list[Event]:
        """Events whose type is in ``event_types``, in stream order.

        Uses the per-type index: the per-type lists are merged by the total
        event order ``(time, sequence)`` instead of re-scanning the whole
        stream, so the cost scales with the *selected* events (plus the
        merge), not the stream length — this is what the executors use to
        cut each execution unit's sub-stream.
        """
        # dict.fromkeys dedups while keeping the caller's order — iterating
        # a set here would make the (order-insensitive) merge input depend
        # on the hash seed for no benefit.
        selected: list[list[Event]] = [
            self._by_type[event_type]
            for event_type in dict.fromkeys(event_types)
            if event_type in self._by_type
        ]
        if not selected:
            return []
        if len(selected) == 1:
            return list(selected[0])
        merged = [event for events in selected for event in events]
        merged.sort(key=lambda event: (event.time, event.sequence))
        return merged

    def of_type(self, *event_types: EventType) -> "EventStream":
        """Return the sub-stream of events whose type is in ``event_types``."""
        return EventStream(self.of_types(event_types), name=self.name)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> StreamStatistics:
        """Compute summary statistics for the stream."""
        per_type: dict[EventType, int] = {}
        for event in self._events:
            per_type[event.event_type] = per_type.get(event.event_type, 0) + 1
        if not self._events:
            return StreamStatistics(0, 0.0, 0.0, per_type)
        duration = self._events[-1].time - self._events[0].time
        rate = len(self._events) / duration if duration > 0 else float(len(self._events))
        return StreamStatistics(
            count=len(self._events),
            duration=duration,
            events_per_second=rate,
            events_per_type=per_type,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventStream({self.name!r}, {len(self._events)} events)"


def slice_stream(
    stream: "EventStream | Iterable[Event]",
    start: Optional[Timestamp] = None,
    end: Optional[Timestamp] = None,
) -> "EventStream | Iterable[Event]":
    """Cut ``stream`` to the half-open time slice ``[start, end)``.

    With both bounds ``None`` the stream is returned untouched (no copy).
    Otherwise the input is indexed as an :class:`EventStream` (if it is not
    one already) and the slice is cut with the cached timestamp array —
    binary search, no scan.  Both executors' ``run(start=, end=)`` replay
    windows go through this one helper so their slice semantics cannot
    drift apart.
    """
    if start is None and end is None:
        return stream
    if not isinstance(stream, EventStream):
        stream = EventStream(stream)
    # Event times are validated non-negative, so -inf is equivalent to 0.0
    # here — but it states the actual semantics: no lower bound.
    return stream.between(
        start if start is not None else float("-inf"),
        end if end is not None else float("inf"),
    )


def merge_streams(*streams: EventStream, name: str = "merged") -> EventStream:
    """Merge streams into a single stream ordered by ``(time, sequence)``.

    The merge is stable with respect to the total order on events and is used
    by dataset simulators that generate each event type independently.
    """
    merged = sorted(
        (event for stream in streams for event in stream),
        key=lambda event: (event.time, event.sequence),
    )
    return EventStream(merged, name=name)
