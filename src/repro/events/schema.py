"""Event type schemas.

Every event type (``Request``, ``Travel``, ``Trade`` ...) is described by a
:class:`Schema`: a named set of attributes with declared kinds.  Schemas are
used by the dataset simulators to generate well-formed events and by the
query layer to validate predicate and aggregate references at compile time
rather than during stream processing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import SchemaError


class AttributeKind(enum.Enum):
    """Kind of an event attribute."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    def validates(self, value: Any) -> bool:
        """Return True if ``value`` is acceptable for this kind."""
        if self is AttributeKind.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeKind.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is AttributeKind.STRING:
            return isinstance(value, str)
        return isinstance(value, bool)


@dataclass(frozen=True, slots=True)
class Attribute:
    """A single attribute declaration of an event type."""

    name: str
    kind: AttributeKind = AttributeKind.FLOAT
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"attribute name must be an identifier, got {self.name!r}")


@dataclass(frozen=True, slots=True)
class Schema:
    """Schema of an event type: the set of attributes events of it carry.

    The reserved attributes ``time`` and ``type`` are implicit on every event
    and must not be redeclared.
    """

    event_type: str
    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    _RESERVED = ("time", "type")

    def __post_init__(self) -> None:
        if not self.event_type or not self.event_type.isidentifier():
            raise SchemaError(
                f"event type name must be an identifier, got {self.event_type!r}"
            )
        seen: set[str] = set()
        for attribute in self.attributes:
            if attribute.name in self._RESERVED:
                raise SchemaError(
                    f"attribute {attribute.name!r} is reserved on type {self.event_type}"
                )
            if attribute.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} on type {self.event_type}"
                )
            seen.add(attribute.name)

    @classmethod
    def of(cls, event_type: str, **attribute_kinds: AttributeKind) -> "Schema":
        """Convenience constructor: ``Schema.of("Trade", price=FLOAT)``."""
        attributes = tuple(
            Attribute(name=name, kind=kind) for name, kind in attribute_kinds.items()
        )
        return cls(event_type=event_type, attributes=attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of the declared attributes, in declaration order."""
        return tuple(attribute.name for attribute in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute declaration for ``name``.

        Raises:
            SchemaError: if the attribute is not declared.
        """
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"type {self.event_type} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        """Return True if the schema declares ``name``."""
        return any(attribute.name == name for attribute in self.attributes)

    def validate(self, payload: Mapping[str, Any]) -> None:
        """Validate an event payload against this schema.

        Every declared attribute must be present with a value of the declared
        kind; unknown attributes are rejected.

        Raises:
            SchemaError: on any mismatch.
        """
        for attribute in self.attributes:
            if attribute.name not in payload:
                raise SchemaError(
                    f"event of type {self.event_type} is missing attribute "
                    f"{attribute.name!r}"
                )
            value = payload[attribute.name]
            if not attribute.kind.validates(value):
                raise SchemaError(
                    f"attribute {attribute.name!r} of type {self.event_type} expects "
                    f"{attribute.kind.value}, got {value!r}"
                )
        unknown = set(payload) - set(self.attribute_names)
        if unknown:
            raise SchemaError(
                f"unknown attributes {sorted(unknown)} for type {self.event_type}"
            )


class SchemaRegistry:
    """A named collection of schemas, one per event type.

    Dataset simulators publish their schemas through a registry so that the
    query layer can validate attribute references.
    """

    __slots__ = ("_schemas",)

    def __init__(self, schemas: Iterable[Schema] = ()) -> None:
        self._schemas: dict[str, Schema] = {}
        for schema in schemas:
            self.register(schema)

    def register(self, schema: Schema) -> None:
        """Register ``schema``, replacing any previous schema of the same type."""
        self._schemas[schema.event_type] = schema

    def get(self, event_type: str) -> Schema:
        """Return the schema for ``event_type``.

        Raises:
            SchemaError: if no schema is registered for the type.
        """
        try:
            return self._schemas[event_type]
        except KeyError:
            raise SchemaError(f"no schema registered for event type {event_type!r}") from None

    def __contains__(self, event_type: str) -> bool:
        return event_type in self._schemas

    def __iter__(self) -> Iterator[Schema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    @property
    def event_types(self) -> tuple[str, ...]:
        """Registered event type names, sorted."""
        return tuple(sorted(self._schemas))
