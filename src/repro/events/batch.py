"""Compact, picklable event batches for cross-process transport.

The sharded runtime (:mod:`repro.runtime.sharding`) moves events between the
router process and its shard workers.  Pickling :class:`~repro.events.event.
Event` objects one by one would spend most of the transport budget on
per-object pickle framing (class reference, field names, a payload dict per
event).  :class:`EventBatch` is the amortized alternative: a chunk of events
is encoded once into a columnar, interned representation —

* event *types* are interned into a per-batch string table (streams have a
  handful of types, so each event carries a small integer);
* payload *key tuples* are interned the same way (events of one type share
  their attribute names, so the names cross the boundary once per batch, not
  once per event);
* times, sequence numbers and payload values travel as flat per-event rows.

Decoding rebuilds events that compare equal to the originals — including the
``sequence`` tie-breaker, which the runtime's total event order
``(time, sequence)`` depends on, so routing a stream through a batch never
perturbs determinism.

The batch pickles through its slots (one tuple of flat containers), which is
what :mod:`multiprocessing` queues serialize; :meth:`to_bytes` /
:meth:`from_bytes` expose explicit byte codecs for transports that want raw
bytes.  Byte buffers are *framed*: a four-byte magic plus a codec id (see
:mod:`repro.events.columnar`) so the legacy pickle codec and the columnar
shared-memory codec coexist on the wire, and a corrupt or foreign buffer
fails with an :class:`~repro.errors.ExecutionError` instead of an
unpickling crash.
"""

from __future__ import annotations

import pickle
from typing import Iterable, Iterator, Sequence

from repro.errors import ExecutionError
from repro.events import columnar
from repro.events.event import Event, EventType

__all__ = ["EventBatch"]

#: The pickled slot state: ``(type_table, key_table, rows)``.
_BatchState = tuple[
    tuple[EventType, ...], tuple[tuple[str, ...], ...], tuple[columnar.Row, ...]
]


class EventBatch:
    """An immutable, compactly-encoded chunk of in-order events."""

    __slots__ = ("_type_table", "_key_table", "_rows")

    def __init__(
        self,
        type_table: tuple[EventType, ...],
        key_table: tuple[tuple[str, ...], ...],
        rows: tuple[columnar.Row, ...],
    ) -> None:
        self._type_table = type_table
        self._key_table = key_table
        #: One row per event: ``(type_code, time, sequence, key_code, values)``.
        self._rows = rows

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "EventBatch":
        """Encode ``events`` (in stream order) into a batch."""
        type_table: list[EventType] = []
        type_codes: dict[EventType, int] = {}
        key_table: list[tuple[str, ...]] = []
        key_codes: dict[tuple[str, ...], int] = {}
        rows: list[columnar.Row] = []
        for event in events:
            type_code = type_codes.get(event.event_type)
            if type_code is None:
                type_code = type_codes[event.event_type] = len(type_table)
                type_table.append(event.event_type)
            keys = tuple(event.payload)
            key_code = key_codes.get(keys)
            if key_code is None:
                key_code = key_codes[keys] = len(key_table)
                key_table.append(keys)
            rows.append(
                (type_code, event.time, event.sequence, key_code, tuple(event.payload.values()))
            )
        return cls(tuple(type_table), tuple(key_table), tuple(rows))

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Event]:
        type_table = self._type_table
        key_table = self._key_table
        for type_code, time, sequence, key_code, values in self._rows:
            yield Event(
                event_type=type_table[type_code],
                time=time,
                payload=dict(zip(key_table[key_code], values)),
                sequence=sequence,
            )

    def events(self) -> list[Event]:
        """Decode the batch back into a list of events."""
        return list(self)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def event_types(self) -> Sequence[EventType]:
        """The distinct event types present, in first-appearance order."""
        return self._type_table

    # ------------------------------------------------------------------ #
    # Explicit byte codec (multiprocessing pickles the slots directly)
    # ------------------------------------------------------------------ #
    def to_bytes(self, codec: str = "pickle") -> bytes:
        """Serialize the batch to a framed buffer.

        ``codec`` selects the body representation: ``"pickle"`` (the legacy
        blob — compact, zero-maintenance) or ``"columnar"`` (fixed-dtype
        columns, the shared-memory transport's format).  Both are preceded
        by the versioned wire header so :meth:`from_bytes` dispatches
        without guessing.
        """
        if codec == "pickle":
            body = pickle.dumps(
                (self._type_table, self._key_table, self._rows),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            return columnar.frame(columnar.CODEC_PICKLE, body)
        if codec == "columnar":
            body = columnar.encode_columnar_body(
                self._type_table, self._key_table, self._rows
            )
            return columnar.frame(columnar.CODEC_COLUMNAR, body)
        raise ExecutionError(
            f"unknown batch codec {codec!r}; choose 'pickle' or 'columnar'"
        )

    @classmethod
    def from_bytes(cls, data: columnar.Buffer) -> "EventBatch":
        """Deserialize a framed buffer produced by :meth:`to_bytes`.

        Accepts ``bytes`` or any buffer (e.g. a shared-memory
        ``memoryview``).  Raises :class:`~repro.errors.ExecutionError` on a
        missing/foreign magic, an unknown codec id or a truncated body.
        """
        codec_id, body = columnar.parse_frame(data)
        if codec_id == columnar.CODEC_PICKLE:
            try:
                state = pickle.loads(body)
            except Exception as error:
                raise ExecutionError(f"pickle batch body corrupt: {error}") from None
            return cls(*state)
        return cls(*columnar.decode_columnar_body(body))

    def __getstate__(self) -> _BatchState:
        return (self._type_table, self._key_table, self._rows)

    def __setstate__(self, state: _BatchState) -> None:
        self._type_table, self._key_table, self._rows = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventBatch({len(self._rows)} events, {len(self._type_table)} types)"
