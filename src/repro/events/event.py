"""The :class:`Event` data type.

An event is an immutable, timestamped tuple of a particular event type with a
payload of named attributes.  Events are hashable and totally ordered by
``(time, sequence_number)`` so that streams with simultaneous events still
have a deterministic order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import SchemaError
from repro.events.schema import Schema
from repro.events.time import Timestamp

#: Alias used in type hints: event types are plain strings (e.g. ``"Travel"``).
EventType = str

_sequence_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Event:
    """A single event.

    Attributes:
        event_type: Name of the event type (``e.type`` in the paper).
        time: Timestamp in seconds assigned by the event source.
        payload: Mapping of attribute name to value.
        sequence: Monotonically increasing tie-breaker assigned at creation
            time; guarantees a deterministic total order for events that share
            a timestamp.
    """

    event_type: EventType
    time: Timestamp
    payload: Mapping[str, Any] = field(default_factory=dict)
    sequence: int = field(default_factory=lambda: next(_sequence_counter))

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SchemaError(f"event time must be non-negative, got {self.time!r}")

    # ------------------------------------------------------------------ #
    # Attribute access
    # ------------------------------------------------------------------ #
    def __getitem__(self, attribute: str) -> Any:
        """Return the value of ``attribute``.

        Raises:
            KeyError: if the attribute is absent from the payload.
        """
        return self.payload[attribute]

    def get(self, attribute: str, default: Any = None) -> Any:
        """Return the value of ``attribute`` or ``default`` if absent."""
        return self.payload.get(attribute, default)

    def has(self, attribute: str) -> bool:
        """Return True if the payload carries ``attribute``."""
        return attribute in self.payload

    # ------------------------------------------------------------------ #
    # Ordering and identity
    # ------------------------------------------------------------------ #
    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __le__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence <= other.sequence

    def __hash__(self) -> int:
        return hash((self.event_type, self.time, self.sequence))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.time == other.time
            and self.sequence == other.sequence
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = ", ".join(f"{key}={value!r}" for key, value in sorted(self.payload.items()))
        return f"Event({self.event_type}@{self.time:g}{', ' + attrs if attrs else ''})"

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        event_type: EventType,
        time: Timestamp,
        schema: Optional[Schema] = None,
        **payload: Any,
    ) -> "Event":
        """Create an event, optionally validating the payload against ``schema``."""
        if schema is not None:
            if schema.event_type != event_type:
                raise SchemaError(
                    f"schema is for type {schema.event_type!r}, event is {event_type!r}"
                )
            schema.validate(payload)
        return cls(event_type=event_type, time=time, payload=dict(payload))

    def with_payload(self, **updates: Any) -> "Event":
        """Return a copy of this event with payload entries added/overridden."""
        payload = dict(self.payload)
        payload.update(updates)
        return Event(event_type=self.event_type, time=self.time, payload=payload)
