"""Workload analysis: grouping queries into sets of sharable queries.

Definition 4 (shareable Kleene sub-pattern): ``E+`` is shareable if it
appears in more than one query of the workload.

Definition 5 (sharable queries): two queries are sharable if

* their patterns contain at least one shareable Kleene sub-pattern,
* their aggregation functions can be shared,
* their windows overlap, and
* their grouping attributes are the same.

This compile-time analysis (the left half of Figure 2) produces
:class:`SharableGroup` objects — each with its merged template — plus the
list of queries that end up alone in their group and are therefore always
executed non-shared (GRETA-style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.events.event import EventType
from repro.events.time import gcd_of_intervals
from repro.query.query import Query
from repro.query.workload import Workload
from repro.template.decompose import DecomposedQuery, decomposable, decompose_query
from repro.template.merged import MergedTemplate


@dataclass
class SharableGroup:
    """A maximal set of pairwise-sharable queries.

    Attributes:
        queries: The member queries.
        shared_kleene_types: Event types whose Kleene sub-pattern is shared by
            at least two member queries.
        merged_template: The HAMLET merged query template for the group.
        pane_size: gcd of all member window sizes and slides, i.e. the pane
            length used to slice the stream for this group (Section 3.1).
    """

    queries: tuple[Query, ...]
    shared_kleene_types: frozenset[EventType]
    merged_template: MergedTemplate
    pane_size: float

    @property
    def is_shared(self) -> bool:
        """True if the group actually has something to share."""
        return len(self.queries) > 1 and bool(self.shared_kleene_types)

    def group_by(self) -> tuple[str, ...]:
        """The (common) grouping attributes of the member queries."""
        return self.queries[0].group_by if self.queries else ()


@dataclass
class WorkloadAnalysis:
    """Result of analysing a workload."""

    workload: Workload
    groups: list[SharableGroup] = field(default_factory=list)
    #: Original-query name -> its decomposition, for OR/AND queries that were
    #: split into sub-queries before grouping (Section 5).
    decompositions: dict[str, "DecomposedQuery"] = field(default_factory=dict)

    @property
    def shared_groups(self) -> list[SharableGroup]:
        """Groups with genuine sharing opportunities."""
        return [group for group in self.groups if group.is_shared]

    @property
    def singleton_groups(self) -> list[SharableGroup]:
        """Groups containing a single query (always executed non-shared)."""
        return [group for group in self.groups if len(group.queries) == 1]

    def group_of(self, query: Query) -> SharableGroup:
        """Return the group containing ``query``."""
        for group in self.groups:
            if query in group.queries:
                return group
        raise KeyError(f"query {query.name!r} not found in any group")


def _sharable(query_a: Query, query_b: Query) -> bool:
    """Definition 5: can these two queries share execution?"""
    common_kleene = query_a.kleene_types() & query_b.kleene_types()
    if not common_kleene:
        return False
    if not query_a.aggregate.sharable_with(query_b.aggregate):
        return False
    if query_a.group_by != query_b.group_by:
        return False
    if not query_a.window.overlaps(query_b.window):
        return False
    return True


def analyze_workload(workload: Workload | Iterable[Query]) -> WorkloadAnalysis:
    """Group a workload into maximal sets of sharable queries.

    Grouping is computed as connected components of the "is sharable with"
    relation: if q1 shares with q2 and q2 with q3, all three land in one
    group even if q1 and q3 are not directly sharable — the merged template
    still exposes every pairwise sharing opportunity and the runtime
    optimizer picks the beneficial subsets per burst.

    Queries whose pattern contains disjunction or conjunction are decomposed
    (Section 5) before grouping; the decomposition bookkeeping is preserved
    on the group's merged template via the sub-query names.
    """
    if not isinstance(workload, Workload):
        workload = Workload(workload)
    workload.validate()

    expanded: list[Query] = []
    decompositions: dict[str, DecomposedQuery] = {}
    for query in workload:
        if decomposable(query):
            decomposition = decompose_query(query)
            decompositions[query.name] = decomposition
            expanded.extend(decomposition.sub_queries)
        else:
            expanded.append(query)

    # Union-find over the sharable relation.
    parent = {query.name: query.name for query in expanded}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    def union(name_a: str, name_b: str) -> None:
        root_a, root_b = find(name_a), find(name_b)
        if root_a != root_b:
            parent[root_b] = root_a

    for i, query_a in enumerate(expanded):
        for query_b in expanded[i + 1:]:
            if _sharable(query_a, query_b):
                union(query_a.name, query_b.name)

    members: dict[str, list[Query]] = {}
    for query in expanded:
        members.setdefault(find(query.name), []).append(query)

    analysis = WorkloadAnalysis(workload=workload, decompositions=decompositions)
    for group_queries in members.values():
        merged = MergedTemplate.from_queries(group_queries)
        shared_types = merged.shared_kleene_types() if len(group_queries) > 1 else frozenset()
        intervals = [q.window.size for q in group_queries] + [q.window.slide for q in group_queries]
        pane_size = gcd_of_intervals(intervals)
        analysis.groups.append(
            SharableGroup(
                queries=tuple(group_queries),
                shared_kleene_types=frozenset(shared_types),
                merged_template=merged,
                pane_size=pane_size,
            )
        )
    # Deterministic order: groups sorted by their first query's name.
    analysis.groups.sort(key=lambda group: group.queries[0].name)
    return analysis
