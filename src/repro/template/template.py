"""Compilation of a single query pattern into a query template.

The template is the finite-state-automaton view used by all engines:

* **states** are the event types occurring in the pattern,
* a **transition** ``E1 -> E2`` means events of type ``E1`` may immediately
  precede events of type ``E2`` in a trend (``E1 ∈ pt(E2, q)``),
* **start types** begin trends, **end types** finish them.

Supported pattern fragments for template compilation are event types, SEQ,
Kleene plus (including nested Kleene such as ``(SEQ(A, B+))+``) and NOT
inside a SEQ.  Disjunction and conjunction are *not* compiled into a single
template; they are decomposed per Section 5 of the paper by
:mod:`repro.template.decompose`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import TemplateError
from repro.events.event import EventType
from repro.query.pattern import (
    Conjunction,
    Disjunction,
    EventTypePattern,
    Kleene,
    Negation,
    Pattern,
    Sequence,
)


@dataclass(frozen=True)
class NegationConstraint:
    """A ``SEQ(P1, NOT N, P2)`` constraint.

    An edge from an event of a type in ``before_types`` to an event of a type
    in ``after_types`` is invalid if an event of type ``negated_type``
    (matched by the query) arrived strictly between the two.
    """

    before_types: frozenset[EventType]
    negated_type: EventType
    after_types: frozenset[EventType]


@dataclass
class _Fragment:
    """Intermediate compilation result for a sub-pattern."""

    start_types: set[EventType] = field(default_factory=set)
    end_types: set[EventType] = field(default_factory=set)
    edges: set[tuple[EventType, EventType]] = field(default_factory=set)
    event_types: set[EventType] = field(default_factory=set)
    negations: list[NegationConstraint] = field(default_factory=list)
    kleene_types: set[EventType] = field(default_factory=set)
    negated_types: set[EventType] = field(default_factory=set)


class QueryTemplate:
    """The compiled template of one query pattern."""

    def __init__(
        self,
        event_types: Iterable[EventType],
        edges: Iterable[tuple[EventType, EventType]],
        start_types: Iterable[EventType],
        end_types: Iterable[EventType],
        kleene_types: Iterable[EventType] = (),
        negations: Iterable[NegationConstraint] = (),
        negated_types: Iterable[EventType] = (),
    ) -> None:
        self._event_types = frozenset(event_types)
        self._edges = frozenset(edges)
        self._start_types = frozenset(start_types)
        self._end_types = frozenset(end_types)
        self._kleene_types = frozenset(kleene_types)
        self._negations = tuple(negations)
        self._negated_types = frozenset(negated_types)
        # Sorted tuples, not frozensets: the engines iterate these sets
        # when summing predecessor aggregates, and frozenset order follows
        # hash randomization — float sums would differ in their last ulps
        # from process to process.  A sorted order keeps every fold's
        # summation order (and hence bit pattern) machine-stable.
        self._predecessors: dict[EventType, tuple[EventType, ...]] = {}
        for event_type in self._event_types:
            self._predecessors[event_type] = tuple(
                sorted(
                    source for source, target in self._edges if target == event_type
                )
            )

    # ------------------------------------------------------------------ #
    # Accessors (paper notation)
    # ------------------------------------------------------------------ #
    @property
    def event_types(self) -> frozenset[EventType]:
        """All positive event types in the pattern (the template states)."""
        return self._event_types

    @property
    def start_types(self) -> frozenset[EventType]:
        """``start(q)`` — types whose events may begin a trend."""
        return self._start_types

    @property
    def end_types(self) -> frozenset[EventType]:
        """``end(q)`` — types whose events may finish a trend."""
        return self._end_types

    @property
    def edges(self) -> frozenset[tuple[EventType, EventType]]:
        """The transition relation as ``(from_type, to_type)`` pairs."""
        return self._edges

    @property
    def kleene_types(self) -> frozenset[EventType]:
        """Types appearing under a Kleene plus."""
        return self._kleene_types

    @property
    def negations(self) -> tuple[NegationConstraint, ...]:
        """Negation constraints of the pattern."""
        return self._negations

    @property
    def negated_types(self) -> frozenset[EventType]:
        """Event types that appear only under NOT (never matched positively)."""
        return self._negated_types

    def predecessor_types(self, event_type: EventType) -> tuple[EventType, ...]:
        """``pt(E, q)`` — types whose events may immediately precede ``E`` events.

        Sorted, so iterating (and summing over) the predecessors is
        deterministic across processes regardless of hash randomization.
        """
        return self._predecessors.get(event_type, ())

    def successor_types(self, event_type: EventType) -> frozenset[EventType]:
        """Types whose events may immediately follow ``E`` events."""
        return frozenset(target for source, target in self._edges if source == event_type)

    def is_start(self, event_type: EventType) -> bool:
        """True if events of ``event_type`` can start a trend."""
        return event_type in self._start_types

    def is_end(self, event_type: EventType) -> bool:
        """True if events of ``event_type`` can finish a trend."""
        return event_type in self._end_types

    def is_relevant(self, event_type: EventType) -> bool:
        """True if the type is matched positively or negatively by the query."""
        return event_type in self._event_types or event_type in self._negated_types

    def has_self_loop(self, event_type: EventType) -> bool:
        """True if ``E -> E`` is a transition (the Kleene self-loop)."""
        return (event_type, event_type) in self._edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = ", ".join(f"{a}->{b}" for a, b in sorted(self._edges))
        return (
            f"QueryTemplate(types={sorted(self._event_types)}, start={sorted(self._start_types)}, "
            f"end={sorted(self._end_types)}, edges=[{edges}])"
        )


# ---------------------------------------------------------------------- #
# Compilation
# ---------------------------------------------------------------------- #
def compile_pattern(pattern: Pattern) -> QueryTemplate:
    """Compile ``pattern`` into a :class:`QueryTemplate`.

    Raises:
        TemplateError: if the pattern contains disjunction or conjunction
            (those are decomposed before compilation, see
            :mod:`repro.template.decompose`) or is otherwise unsupported.
    """
    fragment = _compile(pattern)
    if not fragment.event_types:
        raise TemplateError("pattern contains no positive event types")
    return QueryTemplate(
        event_types=fragment.event_types,
        edges=fragment.edges,
        start_types=fragment.start_types,
        end_types=fragment.end_types,
        kleene_types=fragment.kleene_types,
        negations=fragment.negations,
        negated_types=fragment.negated_types - fragment.event_types,
    )


def _compile(pattern: Pattern) -> _Fragment:
    if isinstance(pattern, EventTypePattern):
        return _Fragment(
            start_types={pattern.event_type},
            end_types={pattern.event_type},
            event_types={pattern.event_type},
        )
    if isinstance(pattern, Kleene):
        return _compile_kleene(pattern)
    if isinstance(pattern, Sequence):
        return _compile_sequence(pattern)
    if isinstance(pattern, Negation):
        raise TemplateError("NOT may only appear directly inside a SEQ")
    if isinstance(pattern, (Disjunction, Conjunction)):
        raise TemplateError(
            "disjunction/conjunction must be decomposed before template compilation"
        )
    raise TemplateError(f"unsupported pattern node {type(pattern).__name__}")


def _compile_kleene(pattern: Kleene) -> _Fragment:
    inner = _compile(pattern.sub_pattern)
    if inner.negated_types & inner.event_types or (
        inner.negations and isinstance(pattern.sub_pattern, Sequence)
    ):
        # A negation inside a Kleene body would need per-iteration scoping;
        # the paper does not consider this combination either.
        if inner.negations:
            raise TemplateError("NOT inside a Kleene plus body is not supported")
    fragment = _Fragment(
        start_types=set(inner.start_types),
        end_types=set(inner.end_types),
        edges=set(inner.edges),
        event_types=set(inner.event_types),
        negations=list(inner.negations),
        kleene_types=set(inner.kleene_types),
        negated_types=set(inner.negated_types),
    )
    # Loop back: the end of one iteration may be followed by the start of the
    # next iteration (Section 5, nested Kleene).
    for end_type in inner.end_types:
        for start_type in inner.start_types:
            fragment.edges.add((end_type, start_type))
    fragment.kleene_types |= inner.event_types
    return fragment


def _compile_sequence(pattern: Sequence) -> _Fragment:
    fragment = _Fragment()
    previous_ends: set[EventType] = set()
    pending_negated: list[EventType] = []
    first_positive = True
    for part in pattern.parts:
        if isinstance(part, Negation):
            negated = _extract_negated_type(part)
            fragment.negated_types.add(negated)
            pending_negated.append(negated)
            continue
        inner = _compile(part)
        fragment.event_types |= inner.event_types
        fragment.edges |= inner.edges
        fragment.kleene_types |= inner.kleene_types
        fragment.negations.extend(inner.negations)
        fragment.negated_types |= inner.negated_types
        if first_positive:
            fragment.start_types |= inner.start_types
            first_positive = False
        else:
            for end_type in previous_ends:
                for start_type in inner.start_types:
                    fragment.edges.add((end_type, start_type))
            for negated in pending_negated:
                fragment.negations.append(
                    NegationConstraint(
                        before_types=frozenset(previous_ends),
                        negated_type=negated,
                        after_types=frozenset(inner.start_types),
                    )
                )
        pending_negated = []
        previous_ends = set(inner.end_types)
    if first_positive:
        raise TemplateError("SEQ needs at least one positive sub-pattern")
    if pending_negated:
        # Trailing NOT (e.g. SEQ(R, T+, NOT P)): trends must not be followed
        # by the negated type before the window closes.  Modelled as a
        # constraint with an empty after-set; engines interpret it as "a
        # negated event after a trend's last event invalidates nothing at
        # graph level" — the paper treats this at result-validation time.
        for negated in pending_negated:
            fragment.negations.append(
                NegationConstraint(
                    before_types=frozenset(previous_ends),
                    negated_type=negated,
                    after_types=frozenset(),
                )
            )
    fragment.end_types = set(previous_ends)
    return fragment


def _extract_negated_type(part: Negation) -> EventType:
    if not isinstance(part.sub_pattern, EventTypePattern):
        raise TemplateError("NOT is only supported over a single event type")
    return part.sub_pattern.event_type
