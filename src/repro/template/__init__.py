"""Finite-state-automaton-based query templates (Section 3.1 of the paper).

A :class:`~repro.template.template.QueryTemplate` compiles a single query's
pattern into states (event types) and transitions (predecessor-type
relations).  A :class:`~repro.template.merged.MergedTemplate` overlays the
templates of all sharable queries, labelling every transition with the set of
queries it holds for — this is the paper's "HAMLET query template".
:mod:`repro.template.analysis` groups a workload into sets of sharable
queries (Definitions 4 and 5).
"""

from repro.template.analysis import SharableGroup, WorkloadAnalysis, analyze_workload
from repro.template.merged import MergedTemplate
from repro.template.template import NegationConstraint, QueryTemplate, compile_pattern

__all__ = [
    "MergedTemplate",
    "NegationConstraint",
    "QueryTemplate",
    "SharableGroup",
    "WorkloadAnalysis",
    "analyze_workload",
    "compile_pattern",
]
