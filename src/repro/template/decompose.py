"""Decomposition of disjunctive and conjunctive patterns (Section 5).

A disjunctive or conjunctive pattern ``P`` with sub-patterns ``P1`` and
``P2`` imposes no time order between trends of ``P1`` and ``P2``, so
``COUNT(P)`` can be computed from ``COUNT(P1)``, ``COUNT(P2)`` and
``COUNT(P1,2)`` (trends matched by both):

* ``COUNT(P1 OR P2)  = C1 + C2 + C1,2``
* ``COUNT(P1 AND P2) = C1*C2 + C1*C1,2 + C2*C1,2 + C(C1,2, 2)``

where ``C1 = COUNT(P1) - C1,2`` and ``C2 = COUNT(P2) - C1,2``.

This implementation supports the common case where the sub-patterns range
over disjoint event-type sets, in which case ``C1,2 = 0`` and the formulas
reduce to ``C1 + C2`` and ``C1 * C2``.  Overlapping sub-patterns would
require evaluating the intersection pattern ``P1,2``; the paper does not
detail its construction and we reject that case explicitly rather than
produce wrong counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.errors import TemplateError
from repro.query.aggregates import AggregateKind
from repro.query.pattern import Conjunction, Disjunction, Pattern
from repro.query.query import Query


@dataclass(frozen=True)
class DecomposedQuery:
    """A query whose top-level OR/AND was decomposed into sub-queries."""

    original: Query
    sub_queries: tuple[Query, ...]
    operator: str  # "or" | "and"

    def combine(self, sub_results: Mapping[str, float]) -> float:
        """Combine per-sub-query counts into the original query's count.

        Args:
            sub_results: mapping from sub-query name to its COUNT(*) result.
        """
        counts = [float(sub_results.get(sub.name, 0.0)) for sub in self.sub_queries]
        both = 0.0  # C1,2 — zero because sub-patterns are type-disjoint.
        exclusive = [count - both for count in counts]
        if self.operator == "or":
            return sum(exclusive) + both
        # Conjunction of two sub-patterns.
        c1, c2 = exclusive[0], exclusive[1]
        return c1 * c2 + c1 * both + c2 * both + math.comb(int(both), 2)


def decomposable(query: Query) -> bool:
    """True if the query's pattern has a top-level disjunction or conjunction."""
    return isinstance(query.pattern, (Disjunction, Conjunction))


def decompose_query(query: Query) -> DecomposedQuery:
    """Split a top-level OR/AND query into two sub-queries.

    Raises:
        TemplateError: if the aggregate is not COUNT(*), the sub-patterns
            share event types, or a sub-pattern itself contains OR/AND.
    """
    pattern = query.pattern
    if not isinstance(pattern, (Disjunction, Conjunction)):
        raise TemplateError("query pattern has no top-level disjunction/conjunction")
    if query.aggregate.kind is not AggregateKind.COUNT_TRENDS:
        raise TemplateError(
            "decomposition of OR/AND patterns is only supported for COUNT(*) queries"
        )
    left, right = pattern.left, pattern.right
    _reject_nested(left)
    _reject_nested(right)
    if left.event_types() & right.event_types():
        raise TemplateError(
            "decomposition requires the OR/AND sub-patterns to use disjoint event types"
        )
    operator = "or" if isinstance(pattern, Disjunction) else "and"
    sub_queries = (
        Query(
            pattern=left,
            aggregate=query.aggregate,
            predicates=query.predicates,
            group_by=query.group_by,
            window=query.window,
            name=f"{query.name}#L",
        ),
        Query(
            pattern=right,
            aggregate=query.aggregate,
            predicates=query.predicates,
            group_by=query.group_by,
            window=query.window,
            name=f"{query.name}#R",
        ),
    )
    return DecomposedQuery(original=query, sub_queries=sub_queries, operator=operator)


def _reject_nested(pattern: Pattern) -> None:
    if any(isinstance(node, (Disjunction, Conjunction)) for node in pattern.walk()):
        raise TemplateError("nested disjunction/conjunction is not supported")
