"""The merged (HAMLET) query template.

The merged template overlays the per-query templates of a set of sharable
queries: every event type is represented once and every transition is
labelled with the set of queries for which it holds (Example 3 / Figure 3(b)
of the paper).  The HAMLET executor consults the merged template to decide,
for a new event of type ``E`` and query ``q``, which predecessor types
``pt(E, q)`` feed the event's intermediate aggregate.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import TemplateError
from repro.events.event import EventType
from repro.query.query import Query
from repro.template.template import QueryTemplate, compile_pattern


class MergedTemplate:
    """Merged template over a set of sharable queries."""

    def __init__(self, templates: Mapping[Query, QueryTemplate]) -> None:
        if not templates:
            raise TemplateError("a merged template needs at least one query")
        self._templates: dict[Query, QueryTemplate] = dict(templates)
        self._event_types: set[EventType] = set()
        self._transition_queries: dict[tuple[EventType, EventType], set[Query]] = {}
        self._queries_per_type: dict[EventType, set[Query]] = {}
        for query, template in self._templates.items():
            self._event_types |= template.event_types
            for edge in template.edges:
                self._transition_queries.setdefault(edge, set()).add(query)
            for event_type in template.event_types | template.negated_types:
                self._queries_per_type.setdefault(event_type, set()).add(query)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_queries(cls, queries: Iterable[Query]) -> "MergedTemplate":
        """Compile each query's pattern and merge the resulting templates."""
        templates = {query: compile_pattern(query.pattern) for query in queries}
        return cls(templates)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def queries(self) -> tuple[Query, ...]:
        """The queries participating in this merged template."""
        return tuple(self._templates)

    @property
    def event_types(self) -> frozenset[EventType]:
        """All event types appearing in any participating query."""
        return frozenset(self._event_types)

    def template(self, query: Query) -> QueryTemplate:
        """The per-query template of ``query``."""
        try:
            return self._templates[query]
        except KeyError:
            raise TemplateError(f"query {query.name!r} is not part of this template") from None

    def transition_label(self, source: EventType, target: EventType) -> frozenset[Query]:
        """Queries for which the transition ``source -> target`` holds."""
        return frozenset(self._transition_queries.get((source, target), ()))

    def queries_matching_type(self, event_type: EventType) -> frozenset[Query]:
        """Queries whose pattern references ``event_type`` (positively or negatively)."""
        return frozenset(self._queries_per_type.get(event_type, ()))

    def predecessor_types(self, event_type: EventType, query: Query) -> tuple[EventType, ...]:
        """``pt(E, q)`` within this merged template (sorted, see QueryTemplate)."""
        return self.template(query).predecessor_types(event_type)

    def queries_sharing_kleene(self, event_type: EventType) -> frozenset[Query]:
        """Queries whose pattern contains the Kleene sub-pattern ``event_type+``.

        These are the queries that may share a graphlet of ``event_type``
        events (Definition 7).
        """
        return frozenset(
            query
            for query, template in self._templates.items()
            if event_type in template.kleene_types
        )

    def shared_kleene_types(self) -> frozenset[EventType]:
        """Event types whose Kleene sub-pattern is shared by more than one query."""
        return frozenset(
            event_type
            for event_type in self._event_types
            if len(self.queries_sharing_kleene(event_type)) > 1
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MergedTemplate({len(self._templates)} queries, "
            f"types={sorted(self._event_types)})"
        )
