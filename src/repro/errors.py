"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers
can distinguish library failures from programming errors with a single
``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the repro library."""


class SchemaError(ReproError):
    """An event does not conform to its declared schema."""


class StreamError(ReproError):
    """A stream violates an invariant (e.g. events arrive out of order)."""


class PatternError(ReproError):
    """A pattern expression is malformed or unsupported."""


class QueryParseError(PatternError):
    """The textual query could not be parsed."""


class PredicateError(ReproError):
    """A predicate references an unknown attribute or is malformed."""


class WindowError(ReproError):
    """A window specification is invalid (e.g. non-positive size)."""


class TemplateError(ReproError):
    """A query cannot be compiled into a finite-state template."""


class SharingError(ReproError):
    """An invalid sharing configuration was requested."""


class ExecutionError(ReproError):
    """The runtime executor hit an unrecoverable condition."""


class WorkloadError(ReproError):
    """A workload of queries is invalid (e.g. empty or inconsistent)."""


class DatasetError(ReproError):
    """A dataset generator received invalid configuration."""


class BenchmarkError(ReproError):
    """A benchmark harness was configured incorrectly."""
