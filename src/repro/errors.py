"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers
can distinguish library failures from programming errors with a single
``except`` clause.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all exceptions raised by the repro library."""


class SchemaError(ReproError):
    """An event does not conform to its declared schema."""


class StreamError(ReproError):
    """A stream violates an invariant (e.g. events arrive out of order)."""


class PatternError(ReproError):
    """A pattern expression is malformed or unsupported."""


class QueryParseError(PatternError):
    """The textual query could not be parsed."""


class PredicateError(ReproError):
    """A predicate references an unknown attribute or is malformed."""


class WindowError(ReproError):
    """A window specification is invalid (e.g. non-positive size)."""


class TemplateError(ReproError):
    """A query cannot be compiled into a finite-state template."""


class SharingError(ReproError):
    """An invalid sharing configuration was requested."""


class ExecutionError(ReproError):
    """The runtime executor hit an unrecoverable condition."""


class WorkerCrashError(ExecutionError):
    """A shard worker process died without delivering its report.

    Raised by the sharded driver when exit-code classification says the
    worker cannot report anymore (``os._exit``, a signal such as
    ``SIGKILL``) and recovery is disabled or exhausted.  Distinguishes
    "worker dead" from "worker slow": a slow worker keeps its process
    alive and the driver keeps waiting, while a dead one surfaces here
    with everything the driver knows about the death attached.
    """

    def __init__(
        self,
        message: str,
        *,
        shard_id: int,
        exit_code: Optional[int] = None,
        last_acked_slab: Optional[int] = None,
        worker_traceback: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        #: Shard whose worker died.
        self.shard_id = shard_id
        #: ``Process.exitcode`` (negative: killed by that signal number).
        self.exit_code = exit_code
        #: Shm transport only: last slab index the worker acked before
        #: dying — localizes the death relative to the in-flight batches.
        self.last_acked_slab = last_acked_slab
        #: The worker's formatted traceback when one surfaced before death.
        self.worker_traceback = worker_traceback


class OutOfOrderError(StreamError, ExecutionError):
    """An event violated the arrival-order contract of its consumer.

    Historically the same condition raised :class:`StreamError` at the
    stream boundary and :class:`ExecutionError` inside the executors and
    shared-window engines; this type unifies them (multiple inheritance
    keeps every existing ``except`` clause working) so callers can handle
    "your stream is disordered" as one condition wherever it surfaces.
    Raised by the order guards in :mod:`repro.runtime.reorder` and — when
    an event falls behind the allowed-lateness watermark under the
    ``"raise"`` policy — by the reorder buffer itself.
    """


class CheckpointError(ExecutionError):
    """A checkpoint could not be written, read or restored.

    Covers container-level corruption (bad magic, version or checksum)
    and restore-time mismatches (a snapshot taken for a different
    workload or executor configuration).
    """


class WorkloadError(ReproError):
    """A workload of queries is invalid (e.g. empty or inconsistent)."""


class DatasetError(ReproError):
    """A dataset generator received invalid configuration."""


class BenchmarkError(ReproError):
    """A benchmark harness was configured incorrectly."""
