"""Stock trade stream simulator (EODData-like shape).

The real sample used by the paper ("2 million transaction records of 220
companies for 8 hours; each event carries a time stamp in minutes, company
identifier, price, and volume", Section 6.1) is not redistributable.  The
simulator produces per-company random-walk prices with up-tick / down-tick /
trade event types, grouping by company.  The Figures 12–13 workloads (dynamic
versus static sharing) run on this stream.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.datasets.base import BurstModel, StreamGenerator
from repro.events.event import EventType
from repro.events.schema import AttributeKind, Schema, SchemaRegistry

STOCK_TYPES: tuple[EventType, ...] = ("Trade", "UpTick", "DownTick", "Quote", "Halt")


def stock_schemas() -> SchemaRegistry:
    """Schema registry for the stock stream."""
    registry = SchemaRegistry()
    for event_type in STOCK_TYPES:
        registry.register(
            Schema.of(
                event_type,
                company=AttributeKind.INT,
                sector=AttributeKind.INT,
                price=AttributeKind.FLOAT,
                volume=AttributeKind.INT,
                change=AttributeKind.FLOAT,
            )
        )
    return registry


class StockGenerator(StreamGenerator):
    """Simulated stock transaction stream with random-walk prices."""

    name = "stock"

    def __init__(
        self,
        *,
        events_per_minute: float = 4_500.0,
        seed: int = 17,
        burst_model: BurstModel | None = None,
        companies: int = 220,
        sectors: int = 12,
        initial_price: float = 100.0,
    ) -> None:
        super().__init__(
            events_per_minute=events_per_minute,
            seed=seed,
            burst_model=burst_model or BurstModel(mean_burst_length=15.0),
        )
        self.companies = companies
        self.sectors = sectors
        self.initial_price = initial_price
        self.schemas = stock_schemas()
        self._prices: dict[int, float] = {}

    def event_types(self) -> Sequence[EventType]:
        return STOCK_TYPES

    def type_weight(self, event_type: EventType) -> float:
        weights = {"Trade": 35.0, "UpTick": 12.0, "DownTick": 12.0, "Quote": 8.0, "Halt": 0.5}
        return weights.get(event_type, 1.0)

    def build_payload(self, event_type: EventType, time: float, rng: random.Random) -> dict:
        company = rng.randrange(self.companies)
        previous = self._prices.get(company, self.initial_price)
        drift = rng.gauss(0.0, 0.4)
        if event_type == "UpTick":
            drift = abs(drift)
        elif event_type == "DownTick":
            drift = -abs(drift)
        price = max(1.0, previous + drift)
        self._prices[company] = price
        return {
            "company": company,
            "sector": company % self.sectors,
            "price": round(price, 2),
            "volume": rng.randint(1, 5_000),
            "change": round(price - previous, 3),
        }
