"""Common machinery for the dataset simulators.

All generators share the same structure: a target arrival rate (events per
minute), a *burst model* controlling how strongly arrivals cluster into
bursts of same-type events (the stream property HAMLET's dynamic optimizer
reacts to), and a deterministic pseudo-random source.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import DatasetError
from repro.events.block import EventBlock, EventBlockBuilder
from repro.events.event import Event, EventType
from repro.events.stream import EventStream


@dataclass(frozen=True)
class BurstModel:
    """Controls how events cluster into bursts of the same type.

    Attributes:
        mean_burst_length: Average number of consecutive events of the same
            type.  A value of 1 produces an i.i.d. type sequence; larger
            values produce the bursty streams of the paper's motivation.
        burstiness: Probability in ``[0, 1]`` of continuing the current burst
            beyond the geometric draw — a convenience knob used by benchmarks
            to sweep from smooth to very bursty streams.
    """

    mean_burst_length: float = 8.0
    burstiness: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_burst_length < 1:
            raise DatasetError("mean_burst_length must be at least 1")
        if not 0.0 <= self.burstiness <= 1.0:
            raise DatasetError("burstiness must be within [0, 1]")

    def draw_burst_length(self, rng: random.Random) -> int:
        """Draw the length of the next burst."""
        length = 1 + int(rng.expovariate(1.0 / max(self.mean_burst_length - 1, 1e-9)))
        while rng.random() < self.burstiness:
            length += 1
        return max(1, length)


class StreamGenerator:
    """Base class of all simulators."""

    #: Name used in benchmark reports.
    name: str = "stream"

    def __init__(
        self,
        *,
        events_per_minute: float,
        seed: int = 7,
        burst_model: BurstModel | None = None,
    ) -> None:
        if events_per_minute <= 0:
            raise DatasetError("events_per_minute must be positive")
        self.events_per_minute = events_per_minute
        self.seed = seed
        self.burst_model = burst_model or BurstModel()

    # ------------------------------------------------------------------ #
    # Hooks implemented by concrete simulators
    # ------------------------------------------------------------------ #
    def event_types(self) -> Sequence[EventType]:
        """Event types produced by the simulator (weights via :meth:`type_weight`)."""
        raise NotImplementedError

    def type_weight(self, event_type: EventType) -> float:
        """Relative frequency of ``event_type`` (default: uniform)."""
        return 1.0

    def build_payload(self, event_type: EventType, time: float, rng: random.Random) -> dict:
        """Payload for one event of ``event_type`` at ``time``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def _generate_rows(
        self,
        duration_seconds: float,
        emit: Callable[[EventType, float, dict], None],
    ) -> None:
        """Drive one simulation, handing each raw row to ``emit``.

        Both output formats (:meth:`generate`, :meth:`generate_block`) share
        this loop, so they consume the pseudo-random source identically and
        describe the same stream.
        """
        if duration_seconds <= 0:
            raise DatasetError("duration_seconds must be positive")
        rng = random.Random(self.seed)
        total_events = max(1, int(self.events_per_minute * duration_seconds / 60.0))
        spacing = duration_seconds / total_events
        types = list(self.event_types())
        weights = [self.type_weight(event_type) for event_type in types]
        produced = 0
        time = 0.0
        while produced < total_events:
            event_type = rng.choices(types, weights=weights, k=1)[0]
            burst_length = min(
                self.burst_model.draw_burst_length(rng), total_events - produced
            )
            for _ in range(burst_length):
                payload = self.build_payload(event_type, time, rng)
                emit(event_type, time, payload)
                produced += 1
                time += spacing * rng.uniform(0.5, 1.5)

    def generate(self, duration_seconds: float) -> EventStream:
        """Generate a stream spanning ``duration_seconds`` of simulated time."""
        stream = EventStream(name=self.name)

        def emit(event_type: EventType, time: float, payload: dict) -> None:
            stream.append(Event(event_type=event_type, time=time, payload=payload))

        self._generate_rows(duration_seconds, emit)
        return stream

    def generate_block(self, duration_seconds: float) -> EventBlock:
        """Generate the same stream as :meth:`generate`, as a columnar block.

        No per-event objects are materialized: rows go straight into an
        :class:`~repro.events.block.EventBlockBuilder`, which is what the
        block-ingest executors consume natively.
        """
        builder = EventBlockBuilder()
        self._generate_rows(duration_seconds, builder.append_row)
        return builder.finish()

    def generate_events(self, count: int) -> EventStream:
        """Generate a stream containing approximately ``count`` events."""
        if count <= 0:
            raise DatasetError("count must be positive")
        duration = count / self.events_per_minute * 60.0
        return self.generate(duration)
