"""Ridesharing stream simulator (the paper's own synthetic generator).

"Ridesharing data set was created by our stream generator to control the
rate and distribution of events of different types in the stream.  This
stream contains events of 20 event types such as request, pickup, travel,
dropoff, cancel, etc.  Each event carries a time stamp in seconds, driver and
rider ids, request type, district, duration, and price." (Section 6.1)

Travel events dominate the stream (they are the events matched by the shared
``Travel+`` Kleene sub-pattern of queries q1–q3 in Figure 1), which is what
produces the long bursts HAMLET exploits.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.datasets.base import BurstModel, StreamGenerator
from repro.events.event import EventType
from repro.events.schema import AttributeKind, Schema, SchemaRegistry

#: The 20 event types of the ridesharing stream.
RIDESHARING_TYPES: tuple[EventType, ...] = (
    "Request",
    "Accept",
    "Travel",
    "Pickup",
    "Dropoff",
    "Cancel",
    "Pool",
    "Rate",
    "Tip",
    "Payment",
    "Surge",
    "Reassign",
    "Idle",
    "Arrive",
    "Depart",
    "Breakdown",
    "Refuel",
    "Shift",
    "Promo",
    "Support",
)


def ridesharing_schemas() -> SchemaRegistry:
    """Schema registry for every ridesharing event type."""
    registry = SchemaRegistry()
    for event_type in RIDESHARING_TYPES:
        registry.register(
            Schema.of(
                event_type,
                driver=AttributeKind.INT,
                rider=AttributeKind.INT,
                district=AttributeKind.INT,
                kind=AttributeKind.STRING,
                duration=AttributeKind.FLOAT,
                price=AttributeKind.FLOAT,
                speed=AttributeKind.FLOAT,
            )
        )
    return registry


class RidesharingGenerator(StreamGenerator):
    """Synthetic ridesharing stream with controllable rate and burstiness."""

    name = "ridesharing"

    def __init__(
        self,
        *,
        events_per_minute: float = 10_000.0,
        seed: int = 7,
        burst_model: BurstModel | None = None,
        districts: int = 10,
        drivers: int = 200,
        riders: int = 400,
        pool_fraction: float = 0.3,
        slow_traffic_fraction: float = 0.4,
    ) -> None:
        """Create the generator.

        Args:
            events_per_minute: Average arrival rate (paper default: 10K).
            seed: Random seed.
            burst_model: Burstiness of the type sequence.
            districts: Number of districts (the GROUP BY attribute).
            drivers: Number of distinct driver identifiers.
            riders: Number of distinct rider identifiers.
            pool_fraction: Fraction of requests that are Pool requests.
            slow_traffic_fraction: Fraction of Travel events with speed below
                10 mph — the predicate of query q3 in Figure 1, and one of the
                stream properties that flips the sharing benefit at runtime.
        """
        super().__init__(
            events_per_minute=events_per_minute,
            seed=seed,
            burst_model=burst_model or BurstModel(mean_burst_length=12.0),
        )
        self.districts = districts
        self.drivers = drivers
        self.riders = riders
        self.pool_fraction = pool_fraction
        self.slow_traffic_fraction = slow_traffic_fraction
        self.schemas = ridesharing_schemas()

    def event_types(self) -> Sequence[EventType]:
        return RIDESHARING_TYPES

    def type_weight(self, event_type: EventType) -> float:
        weights = {
            "Travel": 30.0,
            "Request": 6.0,
            "Accept": 5.0,
            "Pickup": 5.0,
            "Dropoff": 5.0,
            "Pool": 4.0,
            "Cancel": 2.0,
        }
        return weights.get(event_type, 1.0)

    def build_payload(self, event_type: EventType, time: float, rng: random.Random) -> dict:
        slow = rng.random() < self.slow_traffic_fraction
        return {
            "driver": rng.randrange(self.drivers),
            "rider": rng.randrange(self.riders),
            "district": rng.randrange(self.districts),
            "kind": "Pool" if rng.random() < self.pool_fraction else "Solo",
            "duration": round(rng.uniform(0.5, 30.0), 2),
            "price": round(rng.uniform(3.0, 80.0), 2),
            "speed": round(rng.uniform(2.0, 9.5) if slow else rng.uniform(10.0, 65.0), 2),
        }
