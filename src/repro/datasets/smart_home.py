"""Smart-home measurement stream simulator (DEBS 2014 grand challenge shape).

The real data set ("4055 million measurements for 2125 plugs in 40 houses;
each event carries a timestamp in seconds, measurement, house identifiers,
and voltage measurement value", Section 6.1) is not available offline.  The
simulator emits load and work measurements per plug with house/household
identifiers and a day/night load pattern, producing the long runs of
same-type measurement events that make the smart-home workload the paper's
highest-rate setting (20K events per minute).
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.datasets.base import BurstModel, StreamGenerator
from repro.events.event import EventType
from repro.events.schema import AttributeKind, Schema, SchemaRegistry

SMART_HOME_TYPES: tuple[EventType, ...] = ("Load", "Work", "PlugOn", "PlugOff", "Voltage")


def smart_home_schemas() -> SchemaRegistry:
    """Schema registry for the smart-home stream."""
    registry = SchemaRegistry()
    for event_type in SMART_HOME_TYPES:
        registry.register(
            Schema.of(
                event_type,
                house=AttributeKind.INT,
                household=AttributeKind.INT,
                plug=AttributeKind.INT,
                value=AttributeKind.FLOAT,
                voltage=AttributeKind.FLOAT,
            )
        )
    return registry


class SmartHomeGenerator(StreamGenerator):
    """Simulated smart-plug measurement stream."""

    name = "smart-home"

    def __init__(
        self,
        *,
        events_per_minute: float = 20_000.0,
        seed: int = 13,
        burst_model: BurstModel | None = None,
        houses: int = 40,
        plugs_per_house: int = 50,
    ) -> None:
        super().__init__(
            events_per_minute=events_per_minute,
            seed=seed,
            burst_model=burst_model or BurstModel(mean_burst_length=20.0),
        )
        self.houses = houses
        self.plugs_per_house = plugs_per_house
        self.schemas = smart_home_schemas()

    def event_types(self) -> Sequence[EventType]:
        return SMART_HOME_TYPES

    def type_weight(self, event_type: EventType) -> float:
        weights = {"Load": 40.0, "Work": 30.0, "Voltage": 6.0, "PlugOn": 2.0, "PlugOff": 2.0}
        return weights.get(event_type, 1.0)

    def build_payload(self, event_type: EventType, time: float, rng: random.Random) -> dict:
        # A mild diurnal pattern so the load values fluctuate over a window.
        daily = 0.5 + 0.5 * math.sin(2.0 * math.pi * (time % 86_400.0) / 86_400.0)
        return {
            "house": rng.randrange(self.houses),
            "household": rng.randrange(4),
            "plug": rng.randrange(self.plugs_per_house),
            "value": round(rng.uniform(0.0, 150.0) * (0.5 + daily), 3),
            "voltage": round(rng.gauss(230.0, 3.0), 2),
        }
