"""Synthetic dataset simulators.

The paper evaluates HAMLET on four data sets (Section 6.1): the NYC
taxi/Uber trips, the DEBS 2014 smart-home measurements, an EODData stock
history sample, and the authors' own ridesharing stream generator.  The real
data sets are not redistributable / not available offline, so this package
provides simulators that generate streams with the same schemas, event types
and burstiness characteristics — the properties the HAMLET code paths
actually depend on (see the substitution table in DESIGN.md).

Every generator is deterministic given its ``seed``.
"""

from repro.datasets.base import BurstModel, StreamGenerator
from repro.datasets.nyc_taxi import NycTaxiGenerator
from repro.datasets.ridesharing import RidesharingGenerator
from repro.datasets.smart_home import SmartHomeGenerator
from repro.datasets.stock import StockGenerator

__all__ = [
    "BurstModel",
    "NycTaxiGenerator",
    "RidesharingGenerator",
    "SmartHomeGenerator",
    "StockGenerator",
    "StreamGenerator",
]
