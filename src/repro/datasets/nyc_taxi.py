"""NYC taxi / Uber trip stream simulator.

The real data set ("2.63 billion taxi and Uber trips in New York City in
2014–2015; each event carries a time stamp in seconds, driver and rider
identifiers, pick-up and drop-off locations, number of passengers, and
price", Section 6.1) is not redistributable.  This simulator produces a
stream with the same schema and a trip life-cycle type sequence (Request →
Enroute* → Pickup → Travel* → Dropoff) so that the Figure 11 workloads
exercise the same code paths: grouping by pickup zone, Kleene closure over
the Travel-like types, predicates on trip attributes.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.datasets.base import BurstModel, StreamGenerator
from repro.events.event import EventType
from repro.events.schema import AttributeKind, Schema, SchemaRegistry

NYC_TAXI_TYPES: tuple[EventType, ...] = (
    "Request",
    "Enroute",
    "Pickup",
    "Travel",
    "Dropoff",
    "Payment",
    "Rating",
)


def nyc_taxi_schemas() -> SchemaRegistry:
    """Schema registry for the NYC-taxi-like stream."""
    registry = SchemaRegistry()
    for event_type in NYC_TAXI_TYPES:
        registry.register(
            Schema.of(
                event_type,
                driver=AttributeKind.INT,
                rider=AttributeKind.INT,
                pickup_zone=AttributeKind.INT,
                dropoff_zone=AttributeKind.INT,
                passengers=AttributeKind.INT,
                price=AttributeKind.FLOAT,
                distance=AttributeKind.FLOAT,
                speed=AttributeKind.FLOAT,
            )
        )
    return registry


class NycTaxiGenerator(StreamGenerator):
    """Simulated NYC taxi/Uber trip event stream."""

    name = "nyc-taxi"

    def __init__(
        self,
        *,
        events_per_minute: float = 200.0,
        seed: int = 11,
        burst_model: BurstModel | None = None,
        zones: int = 20,
        drivers: int = 500,
        riders: int = 1_000,
    ) -> None:
        super().__init__(
            events_per_minute=events_per_minute,
            seed=seed,
            burst_model=burst_model or BurstModel(mean_burst_length=10.0),
        )
        self.zones = zones
        self.drivers = drivers
        self.riders = riders
        self.schemas = nyc_taxi_schemas()

    def event_types(self) -> Sequence[EventType]:
        return NYC_TAXI_TYPES

    def type_weight(self, event_type: EventType) -> float:
        weights = {
            "Travel": 25.0,
            "Enroute": 8.0,
            "Request": 4.0,
            "Pickup": 3.0,
            "Dropoff": 3.0,
            "Payment": 2.0,
            "Rating": 1.0,
        }
        return weights.get(event_type, 1.0)

    def build_payload(self, event_type: EventType, time: float, rng: random.Random) -> dict:
        return {
            "driver": rng.randrange(self.drivers),
            "rider": rng.randrange(self.riders),
            "pickup_zone": rng.randrange(self.zones),
            "dropoff_zone": rng.randrange(self.zones),
            "passengers": rng.randint(1, 4),
            "price": round(rng.uniform(5.0, 90.0), 2),
            "distance": round(rng.uniform(0.3, 25.0), 2),
            "speed": round(rng.uniform(3.0, 60.0), 2),
        }
