"""Predicates on events and on trend adjacency.

Two flavours of predicates appear in trend aggregation queries:

* **Local predicates** restrict single events (e.g. ``T.speed < 10`` in query
  q3 of the paper).  They act as filters: an event that fails a local
  predicate of query ``q`` is simply not matched by ``q``.
* **Edge predicates** restrict which previously matched event ``e'`` may be
  adjacent to a new event ``e`` in a trend (e.g. "same driver and rider",
  written ``[driver, rider]`` in SASE).  Edge predicates are what forces
  HAMLET to introduce event-level snapshots when queries sharing a graphlet
  disagree on an edge (Definition 9).

Predicates expose a :meth:`Predicate.signature` used by the workload analysis
to decide whether two queries place *identical* constraints on a shared
Kleene sub-pattern (part of Definition 5).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import PredicateError
from repro.events.event import Event, EventType

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class Predicate:
    """Base class of all predicates."""

    #: Event type this predicate is scoped to, or None for "any type".
    event_type: Optional[EventType] = None

    def signature(self) -> tuple[Any, ...]:
        """A hashable, comparable identity of the predicate.

        Two predicates with equal signatures impose exactly the same
        constraint; the workload analyser relies on this to detect sharable
        queries.
        """
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())


class LocalPredicate(Predicate):
    """Predicate over a single event."""

    def evaluate(self, event: Event) -> bool:
        """Return True if ``event`` satisfies the predicate."""
        raise NotImplementedError

    def applies_to(self, event: Event) -> bool:
        """Return True if the predicate is scoped to this event's type."""
        return self.event_type is None or event.event_type == self.event_type


class EdgePredicate(Predicate):
    """Predicate over a pair of adjacent events ``(previous, current)``."""

    def evaluate(self, previous: Event, current: Event) -> bool:
        """Return True if the edge ``previous -> current`` is allowed."""
        raise NotImplementedError


# ---------------------------------------------------------------------- #
# Local predicates
# ---------------------------------------------------------------------- #
@dataclass(frozen=True, eq=False)
class AttributeComparison(LocalPredicate):
    """``E.attr <op> constant`` — compare an event attribute with a constant."""

    attribute: str
    op: str
    value: Any
    event_type: Optional[EventType] = None

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise PredicateError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, event: Event) -> bool:
        if not event.has(self.attribute):
            raise PredicateError(
                f"event of type {event.event_type} has no attribute {self.attribute!r}"
            )
        return _OPERATORS[self.op](event[self.attribute], self.value)

    def signature(self) -> tuple[Any, ...]:
        return ("attr_cmp", self.event_type, self.attribute, self.op, self.value)

    def __repr__(self) -> str:
        scope = f"{self.event_type}." if self.event_type else ""
        return f"{scope}{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True, eq=False)
class AttributeInSet(LocalPredicate):
    """``E.attr IN {v1, v2, ...}`` — attribute value membership."""

    attribute: str
    values: frozenset[Any]
    event_type: Optional[EventType] = None

    def evaluate(self, event: Event) -> bool:
        if not event.has(self.attribute):
            raise PredicateError(
                f"event of type {event.event_type} has no attribute {self.attribute!r}"
            )
        return event[self.attribute] in self.values

    def signature(self) -> tuple[Any, ...]:
        return ("attr_in", self.event_type, self.attribute, tuple(sorted(map(repr, self.values))))

    def __repr__(self) -> str:
        scope = f"{self.event_type}." if self.event_type else ""
        return f"{scope}{self.attribute} IN {set(self.values)!r}"


@dataclass(frozen=True, eq=False)
class LambdaPredicate(LocalPredicate):
    """Escape hatch: arbitrary boolean function of an event.

    A ``label`` must be supplied; it is the predicate's identity for sharing
    analysis, so two lambda predicates with the same label are assumed to be
    the same constraint.
    """

    label: str
    function: Callable[[Event], bool] = field(compare=False)
    event_type: Optional[EventType] = None

    def evaluate(self, event: Event) -> bool:
        return bool(self.function(event))

    def signature(self) -> tuple[Any, ...]:
        return ("lambda", self.event_type, self.label)

    def __repr__(self) -> str:
        return f"<{self.label}>"


# ---------------------------------------------------------------------- #
# Edge predicates
# ---------------------------------------------------------------------- #
@dataclass(frozen=True, eq=False)
class EqualAttributes(EdgePredicate):
    """SASE-style ``[attr1, attr2, ...]``: adjacent events agree on attributes.

    Attributes missing on either event are treated as satisfied, which lets
    the same predicate apply across heterogeneous event types (e.g. Request
    and Travel events both carry ``driver``/``rider`` but a district event may
    not).
    """

    attributes: tuple[str, ...]
    event_type: Optional[EventType] = None

    def evaluate(self, previous: Event, current: Event) -> bool:
        for attribute in self.attributes:
            if previous.has(attribute) and current.has(attribute):
                if previous[attribute] != current[attribute]:
                    return False
        return True

    def signature(self) -> tuple[Any, ...]:
        return ("equal_attrs", self.event_type, tuple(sorted(self.attributes)))

    def __repr__(self) -> str:
        return "[" + ", ".join(self.attributes) + "]"


@dataclass(frozen=True, eq=False)
class AdjacentComparison(EdgePredicate):
    """``previous.attr <op> current.attr`` — compare adjacent events' attributes.

    Used e.g. for monotone trends ("each Travel event slower than the
    previous one").  Missing attributes on either side make the edge fail.
    """

    previous_attribute: str
    op: str
    current_attribute: str
    event_type: Optional[EventType] = None

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise PredicateError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, previous: Event, current: Event) -> bool:
        if not previous.has(self.previous_attribute) or not current.has(self.current_attribute):
            return False
        return _OPERATORS[self.op](
            previous[self.previous_attribute], current[self.current_attribute]
        )

    def signature(self) -> tuple[Any, ...]:
        return (
            "adjacent_cmp",
            self.event_type,
            self.previous_attribute,
            self.op,
            self.current_attribute,
        )

    def __repr__(self) -> str:
        return f"prev.{self.previous_attribute} {self.op} curr.{self.current_attribute}"


@dataclass(frozen=True, eq=False)
class EdgeLambdaPredicate(EdgePredicate):
    """Escape hatch: arbitrary boolean function of an adjacent event pair."""

    label: str
    function: Callable[[Event, Event], bool] = field(compare=False)
    event_type: Optional[EventType] = None

    def evaluate(self, previous: Event, current: Event) -> bool:
        return bool(self.function(previous, current))

    def signature(self) -> tuple[Any, ...]:
        return ("edge_lambda", self.event_type, self.label)

    def __repr__(self) -> str:
        return f"<edge:{self.label}>"


# ---------------------------------------------------------------------- #
# Composition
# ---------------------------------------------------------------------- #
class CompositePredicate:
    """Conjunction of local and edge predicates attached to one query.

    The composite keeps local and edge predicates separate because the
    engines apply them at different moments: local predicates when an event
    is matched, edge predicates when a predecessor edge is considered.
    """

    def __init__(self, predicates: Iterable[Predicate] = ()) -> None:
        self._local: list[LocalPredicate] = []
        self._edge: list[EdgePredicate] = []
        for predicate in predicates:
            self.add(predicate)

    def add(self, predicate: Predicate) -> None:
        """Add one predicate to the conjunction."""
        if isinstance(predicate, LocalPredicate):
            self._local.append(predicate)
        elif isinstance(predicate, EdgePredicate):
            self._edge.append(predicate)
        else:
            raise PredicateError(f"unsupported predicate object {predicate!r}")

    @property
    def local_predicates(self) -> Sequence[LocalPredicate]:
        """Local predicates in insertion order."""
        return tuple(self._local)

    @property
    def edge_predicates(self) -> Sequence[EdgePredicate]:
        """Edge predicates in insertion order."""
        return tuple(self._edge)

    def accepts_event(self, event: Event) -> bool:
        """Return True if ``event`` passes every applicable local predicate."""
        return all(
            predicate.evaluate(event)
            for predicate in self._local
            if predicate.applies_to(event)
        )

    def has_edge_predicates_for(self, event_type: EventType) -> bool:
        """True if any edge predicate constrains edges *into* ``event_type``.

        Mirrors the scoping rule of :meth:`accepts_edge`: a predicate applies
        when the current (target) event is of the predicate's type, or the
        predicate is unscoped.  The engines' sharing analysis and fast-path
        selection must use this helper so the rule lives in one place.
        """
        return any(
            predicate.event_type in (None, event_type) for predicate in self._edge
        )

    def accepts_edge(self, previous: Event, current: Event) -> bool:
        """Return True if the edge passes every applicable edge predicate.

        Edge predicates scoped to an event type apply only when the *current*
        event is of that type.
        """
        for predicate in self._edge:
            if predicate.event_type is not None and current.event_type != predicate.event_type:
                continue
            if not predicate.evaluate(previous, current):
                return False
        return True

    def signature(self) -> tuple[Any, ...]:
        """Order-insensitive identity of the whole conjunction."""
        return (
            tuple(sorted(predicate.signature() for predicate in self._local)),
            tuple(sorted(predicate.signature() for predicate in self._edge)),
        )

    def signature_for_type(self, event_type: EventType) -> tuple[Any, ...]:
        """Identity of the constraints this composite places on ``event_type``.

        Used by the sharing analysis: two queries may share a Kleene
        sub-pattern ``E+`` only if they constrain events of type ``E``
        identically *or* the engine compensates via event-level snapshots.
        """
        local = tuple(
            sorted(
                predicate.signature()
                for predicate in self._local
                if predicate.event_type in (None, event_type)
            )
        )
        edge = tuple(
            sorted(
                predicate.signature()
                for predicate in self._edge
                if predicate.event_type in (None, event_type)
            )
        )
        return (local, edge)

    def is_empty(self) -> bool:
        """Return True if no predicates were attached."""
        return not self._local and not self._edge

    def __len__(self) -> int:
        return len(self._local) + len(self._edge)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [repr(p) for p in self._local] + [repr(p) for p in self._edge]
        return " AND ".join(parts) if parts else "TRUE"


# ---------------------------------------------------------------------- #
# Convenience constructors
# ---------------------------------------------------------------------- #
def attr_less(attribute: str, value: Any, event_type: Optional[str] = None) -> AttributeComparison:
    """``attribute < value`` local predicate."""
    return AttributeComparison(attribute, "<", value, event_type)


def attr_greater(attribute: str, value: Any, event_type: Optional[str] = None) -> AttributeComparison:
    """``attribute > value`` local predicate."""
    return AttributeComparison(attribute, ">", value, event_type)


def attr_equals(attribute: str, value: Any, event_type: Optional[str] = None) -> AttributeComparison:
    """``attribute == value`` local predicate."""
    return AttributeComparison(attribute, "==", value, event_type)


def attr_between(
    attribute: str, low: Any, high: Any, event_type: Optional[str] = None
) -> LambdaPredicate:
    """``low <= attribute <= high`` local predicate."""
    return LambdaPredicate(
        label=f"{event_type or '*'}.{attribute} in [{low!r}, {high!r}]",
        function=lambda event: low <= event[attribute] <= high,
        event_type=event_type,
    )


def same_attributes(*attributes: str, event_type: Optional[str] = None) -> EqualAttributes:
    """SASE ``[attr, ...]`` edge predicate: adjacent events agree on attributes."""
    if not attributes:
        raise PredicateError("same_attributes requires at least one attribute")
    return EqualAttributes(tuple(attributes), event_type)
