"""Aggregate functions over event trends.

The paper supports distributive (COUNT, MIN, MAX, SUM) and algebraic (AVG)
aggregation functions because they can be computed incrementally
(Section 2.1).  An :class:`AggregateFunction` names the function and, when it
ranges over events of a particular type, the event type and attribute it
reads.

Sharability (Definition 5): queries computing COUNT(*), MIN or MAX can only
share with queries computing the *same* aggregate; AVG decomposes into
SUM / COUNT and therefore shares with SUM and COUNT(E).  The helper
:meth:`AggregateFunction.sharable_with` encodes these rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import PatternError
from repro.events.event import Event, EventType


class AggregateKind(enum.Enum):
    """Supported aggregation functions."""

    COUNT_TRENDS = "COUNT(*)"
    COUNT_EVENTS = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"

    @property
    def is_linear(self) -> bool:
        """True for aggregates whose trend propagation is linear.

        Linear aggregates (counts, sums, and AVG which decomposes into both)
        can be propagated through shared graphlets as snapshot expressions.
        MIN/MAX propagation is not linear and is only shared when no
        event-level snapshots are required.
        """
        return self in (
            AggregateKind.COUNT_TRENDS,
            AggregateKind.COUNT_EVENTS,
            AggregateKind.SUM,
            AggregateKind.AVG,
        )


@dataclass(frozen=True)
class AggregateFunction:
    """A fully specified aggregate, e.g. ``SUM(Travel.duration)``.

    Attributes:
        kind: Which aggregation function.
        event_type: The event type the aggregate ranges over.  ``None`` only
            for ``COUNT(*)``, which counts whole trends.
        attribute: The attribute read from matching events.  ``None`` for the
            two counting aggregates.
    """

    kind: AggregateKind
    event_type: Optional[EventType] = None
    attribute: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is AggregateKind.COUNT_TRENDS:
            if self.event_type is not None or self.attribute is not None:
                raise PatternError("COUNT(*) takes no event type or attribute")
        elif self.kind is AggregateKind.COUNT_EVENTS:
            if self.event_type is None:
                raise PatternError("COUNT(E) requires an event type")
            if self.attribute is not None:
                raise PatternError("COUNT(E) takes no attribute")
        else:
            if self.event_type is None or self.attribute is None:
                raise PatternError(f"{self.kind.value} requires an event type and attribute")

    # ------------------------------------------------------------------ #
    # Per-event contribution
    # ------------------------------------------------------------------ #
    def contribution(self, event: Event) -> float:
        """Value this event contributes to the aggregate of a trend it joins.

        For COUNT(*) every event contributes 0 (the trend itself is counted
        once, handled by the engines); for COUNT(E) an event of type E
        contributes 1; for SUM/AVG the attribute value; MIN/MAX use
        :meth:`candidate_value` instead.
        """
        if self.kind is AggregateKind.COUNT_TRENDS:
            return 0.0
        if event.event_type != self.event_type:
            return 0.0
        if self.kind is AggregateKind.COUNT_EVENTS:
            return 1.0
        assert self.attribute is not None  # guaranteed by __post_init__
        return float(event[self.attribute])

    def candidate_value(self, event: Event) -> Optional[float]:
        """Value of this event as a MIN/MAX candidate, or None if not applicable."""
        if self.kind not in (AggregateKind.MIN, AggregateKind.MAX):
            return None
        if event.event_type != self.event_type:
            return None
        assert self.attribute is not None  # guaranteed by __post_init__
        return float(event[self.attribute])

    # ------------------------------------------------------------------ #
    # Sharing rules (Definition 5)
    # ------------------------------------------------------------------ #
    def sharable_with(self, other: "AggregateFunction") -> bool:
        """Return True if two queries with these aggregates may share execution."""
        if self == other:
            return True
        linear = {
            AggregateKind.COUNT_TRENDS,
            AggregateKind.COUNT_EVENTS,
            AggregateKind.SUM,
            AggregateKind.AVG,
        }
        if self.kind in linear and other.kind in linear:
            # COUNT(*) only shares with COUNT(*); the event/attribute-based
            # linear aggregates share with each other since AVG = SUM / COUNT.
            if self.kind is AggregateKind.COUNT_TRENDS or other.kind is AggregateKind.COUNT_TRENDS:
                return self.kind == other.kind
            return True
        return False

    def describe(self) -> str:
        """Canonical textual form, e.g. ``AVG(Travel.speed)``."""
        if self.kind is AggregateKind.COUNT_TRENDS:
            return "COUNT(*)"
        if self.kind is AggregateKind.COUNT_EVENTS:
            return f"COUNT({self.event_type})"
        return f"{self.kind.value}({self.event_type}.{self.attribute})"

    def __repr__(self) -> str:
        return self.describe()


# ---------------------------------------------------------------------- #
# Convenience constructors
# ---------------------------------------------------------------------- #
def count_trends() -> AggregateFunction:
    """``COUNT(*)`` — the number of trends per group and window."""
    return AggregateFunction(AggregateKind.COUNT_TRENDS)


def count_events(event_type: EventType) -> AggregateFunction:
    """``COUNT(E)`` — the number of E events across all trends."""
    return AggregateFunction(AggregateKind.COUNT_EVENTS, event_type)


def sum_of(event_type: EventType, attribute: str) -> AggregateFunction:
    """``SUM(E.attr)``."""
    return AggregateFunction(AggregateKind.SUM, event_type, attribute)


def avg(event_type: EventType, attribute: str) -> AggregateFunction:
    """``AVG(E.attr)``."""
    return AggregateFunction(AggregateKind.AVG, event_type, attribute)


def min_of(event_type: EventType, attribute: str) -> AggregateFunction:
    """``MIN(E.attr)``."""
    return AggregateFunction(AggregateKind.MIN, event_type, attribute)


def max_of(event_type: EventType, attribute: str) -> AggregateFunction:
    """``MAX(E.attr)``."""
    return AggregateFunction(AggregateKind.MAX, event_type, attribute)
