"""Query model: patterns, predicates, aggregates, windows, queries, workloads.

The classes in this package describe *what* a trend aggregation query asks
for; they contain no evaluation logic.  Compilation into an executable form
happens in :mod:`repro.template` (FSA templates) and the engines consume
those templates.
"""

from repro.query.aggregates import (
    AggregateFunction,
    AggregateKind,
    avg,
    count_events,
    count_trends,
    max_of,
    min_of,
    sum_of,
)
from repro.query.parser import parse_pattern, parse_query
from repro.query.pattern import (
    Conjunction,
    Disjunction,
    EventTypePattern,
    Kleene,
    Negation,
    Pattern,
    Sequence,
    kleene,
    seq,
    typ,
)
from repro.query.predicates import (
    AttributeComparison,
    CompositePredicate,
    EdgePredicate,
    EqualAttributes,
    LocalPredicate,
    Predicate,
    attr_between,
    attr_equals,
    attr_greater,
    attr_less,
    same_attributes,
)
from repro.query.query import Query
from repro.query.windows import Window
from repro.query.workload import Workload

__all__ = [
    "AggregateFunction",
    "AggregateKind",
    "AttributeComparison",
    "CompositePredicate",
    "Conjunction",
    "Disjunction",
    "EdgePredicate",
    "EqualAttributes",
    "EventTypePattern",
    "Kleene",
    "LocalPredicate",
    "Negation",
    "Pattern",
    "Predicate",
    "Query",
    "Sequence",
    "Window",
    "Workload",
    "attr_between",
    "attr_equals",
    "attr_greater",
    "attr_less",
    "avg",
    "count_events",
    "count_trends",
    "kleene",
    "max_of",
    "min_of",
    "parse_pattern",
    "parse_query",
    "same_attributes",
    "seq",
    "sum_of",
    "typ",
]
