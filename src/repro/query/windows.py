"""Sliding window specifications (``WITHIN w SLIDE s``).

Windows are time based.  A window of size ``w`` sliding by ``s`` produces the
window instances ``[k*s, k*s + w)`` for ``k = 0, 1, 2, ...``.  Tumbling
windows are the special case ``s == w``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import WindowError
from repro.events.time import Timestamp


@dataclass(frozen=True)
class Window:
    """A sliding window specification.

    Attributes:
        size: Window length in seconds (``WITHIN``).
        slide: Slide interval in seconds (``SLIDE``); defaults to the size,
            i.e. a tumbling window.
    """

    size: float
    slide: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WindowError(f"window size must be positive, got {self.size!r}")
        if self.slide == 0.0:
            object.__setattr__(self, "slide", self.size)
        if self.slide <= 0:
            raise WindowError(f"window slide must be positive, got {self.slide!r}")
        if self.slide > self.size:
            raise WindowError(
                f"window slide ({self.slide}) must not exceed the window size ({self.size})"
            )

    @classmethod
    def minutes(cls, size: float, slide: float | None = None) -> "Window":
        """Construct a window whose size/slide are given in minutes."""
        return cls(size * 60.0, (slide * 60.0) if slide is not None else 0.0)

    @property
    def is_tumbling(self) -> bool:
        """True if consecutive window instances do not overlap."""
        return self.slide == self.size

    # ------------------------------------------------------------------ #
    # Window instance arithmetic
    # ------------------------------------------------------------------ #
    # Window instances are identified by their *integer index* ``k``: instance
    # ``k`` spans ``[k*slide, k*slide + size)``.  All membership arithmetic is
    # done on indices; ``k*slide`` floats are derived values for reporting
    # only.  Keying state by the index (not the float start) is what keeps
    # partitions of different execution units equal for fractional slides,
    # where ``k*slide`` accumulates rounding error (``3*0.1 != 0.3``).

    def _floor_index(self, value: float) -> int:
        """``floor(value / slide)``, snapped up at exact-multiple boundaries.

        Plain float division places ``0.3 / 0.1`` at ``2.9999...`` and would
        assign a boundary event to the previous instance; values within one
        part in 1e12 of the next integer are treated as exact multiples.
        ``value`` may be negative (the lower window edge ``timestamp - size``),
        where the same snap applies — e.g. ``-7e-17`` counts as multiple 0.
        """
        quotient = value / self.slide
        index = math.floor(quotient)
        if math.isclose(index + 1, quotient, rel_tol=1e-12, abs_tol=1e-12):
            index += 1
        return int(index)

    @property
    def instances_per_event(self) -> int:
        """``ceil(size / slide)`` — max window instances covering one event."""
        quotient = self.size / self.slide
        floor_q = math.floor(quotient)
        if math.isclose(floor_q, quotient, rel_tol=1e-12, abs_tol=1e-12):
            return int(floor_q)
        return int(floor_q) + 1

    def last_instance_index(self, timestamp: Timestamp) -> int:
        """Index of the youngest window instance covering ``timestamp``."""
        if timestamp < 0:
            raise WindowError(f"timestamp must be non-negative, got {timestamp!r}")
        return self._floor_index(timestamp)

    def instance_indices_covering(self, timestamp: Timestamp) -> range:
        """Indices ``k`` of every window instance containing ``timestamp``.

        A timestamp belongs to instance ``k`` when
        ``k*slide <= timestamp < k*slide + size``; at most
        :attr:`instances_per_event` indices are returned.
        """
        last = self.last_instance_index(timestamp)
        # Covered iff k*slide > timestamp - size, i.e. strictly after the
        # boundary: an instance ending exactly at ``timestamp`` (half-open)
        # does not contain it.  Both edges go through the same snapped
        # division — a raw ``timestamp < size`` test here would disagree with
        # the snapped ``last`` for timestamps a few ulps below a boundary and
        # admit one extra, mutually-exclusive instance.
        first = max(0, self._floor_index(timestamp - self.size) + 1)
        return range(first, last + 1)

    def instance_range_columns(
        self, times: "Sequence[Timestamp]", start: int = 0, stop: int | None = None
    ) -> tuple[list[int], list[int]]:
        """Covering ranges for a whole time column: ``(lows, highs)``.

        ``times[start:stop]`` must be non-decreasing (the executors' arrival
        order, which they enforce separately).  For every position the pair
        ``(lows[i], highs[i])`` equals
        ``instance_indices_covering(t).start, .stop - 1`` — the same snapped
        floor division on both edges, inlined over the column (this is the
        block-ingest hot path; per-element equality with the scalar method
        is pinned by the window tests).
        """
        if stop is None:
            stop = len(times)
        slide = self.slide
        size = self.size
        floor = math.floor
        isclose = math.isclose
        lows: list[int] = []
        highs: list[int] = []
        lows_append = lows.append
        highs_append = highs.append
        # Monotone skip: for sorted times the snapped floor indices are
        # non-decreasing, so while the quotient stays a safe margin below the
        # previous index's ceiling the previous index is provably unchanged
        # (the snap tolerance is 1e-12 relative/absolute; the 1e-6 margin
        # dominates it for any timestamp the executors see) and the
        # floor+snap work is skipped.  Whenever the margin is crossed the
        # full formula runs, so the results are bit-identical either way.
        high = 0
        high_limit = -1.0  # quotients below this keep the previous high
        low = 0
        low_limit = float("-inf")
        for position in range(start, stop):
            timestamp = times[position]
            if timestamp < 0:
                raise WindowError(
                    f"timestamp must be non-negative, got {timestamp!r}"
                )
            quotient = timestamp / slide
            if quotient >= high_limit:
                high = floor(quotient)
                if isclose(high + 1, quotient, rel_tol=1e-12, abs_tol=1e-12):
                    high += 1
                high_limit = high + 1 - 1e-6 * (1.0 + quotient)
            quotient = (timestamp - size) / slide
            if quotient >= low_limit:
                low = floor(quotient)
                if isclose(low + 1, quotient, rel_tol=1e-12, abs_tol=1e-12):
                    low += 1
                low += 1
                low_limit = low - 1e-6 * (1.0 + abs(quotient))
                if low < 0:
                    low = 0
            lows_append(low)
            highs_append(high)
        return lows, highs

    def instance_bounds(self, index: int) -> tuple[float, float]:
        """Return the ``(start, end)`` bounds of window instance ``index``."""
        start = index * self.slide
        return (start, start + self.size)

    def instances_covering(self, timestamp: Timestamp) -> Iterator[tuple[float, float]]:
        """Yield ``(start, end)`` of every window instance containing ``timestamp``."""
        for index in self.instance_indices_covering(timestamp):
            yield self.instance_bounds(index)

    def instance_starting_at(self, start: float) -> tuple[float, float]:
        """Return the ``(start, end)`` bounds of the instance starting at ``start``."""
        return (start, start + self.size)

    def overlaps(self, other: "Window") -> bool:
        """Return True if instances of this window can overlap instances of ``other``.

        Time-based sliding windows anchored at zero always overlap somewhere,
        so this is True for any pair of windows; the method exists to keep the
        Definition 5 check explicit and testable.
        """
        return True

    def describe(self) -> str:
        """Canonical textual form, e.g. ``WITHIN 600s SLIDE 300s``."""
        return f"WITHIN {self.size:g}s SLIDE {self.slide:g}s"

    def __repr__(self) -> str:
        return self.describe()
