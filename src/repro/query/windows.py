"""Sliding window specifications (``WITHIN w SLIDE s``).

Windows are time based.  A window of size ``w`` sliding by ``s`` produces the
window instances ``[k*s, k*s + w)`` for ``k = 0, 1, 2, ...``.  Tumbling
windows are the special case ``s == w``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import WindowError
from repro.events.time import Timestamp


@dataclass(frozen=True)
class Window:
    """A sliding window specification.

    Attributes:
        size: Window length in seconds (``WITHIN``).
        slide: Slide interval in seconds (``SLIDE``); defaults to the size,
            i.e. a tumbling window.
    """

    size: float
    slide: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise WindowError(f"window size must be positive, got {self.size!r}")
        if self.slide == 0.0:
            object.__setattr__(self, "slide", self.size)
        if self.slide <= 0:
            raise WindowError(f"window slide must be positive, got {self.slide!r}")
        if self.slide > self.size:
            raise WindowError(
                f"window slide ({self.slide}) must not exceed the window size ({self.size})"
            )

    @classmethod
    def minutes(cls, size: float, slide: float | None = None) -> "Window":
        """Construct a window whose size/slide are given in minutes."""
        return cls(size * 60.0, (slide * 60.0) if slide is not None else 0.0)

    @property
    def is_tumbling(self) -> bool:
        """True if consecutive window instances do not overlap."""
        return self.slide == self.size

    # ------------------------------------------------------------------ #
    # Window instance arithmetic
    # ------------------------------------------------------------------ #
    def instances_covering(self, timestamp: Timestamp) -> Iterator[tuple[float, float]]:
        """Yield ``(start, end)`` of every window instance containing ``timestamp``.

        A timestamp belongs to instance ``k`` when
        ``k*slide <= timestamp < k*slide + size``.
        """
        if timestamp < 0:
            raise WindowError(f"timestamp must be non-negative, got {timestamp!r}")
        last = int(timestamp // self.slide)
        first = int(max(0.0, timestamp - self.size) // self.slide)
        for k in range(first, last + 1):
            start = k * self.slide
            if start <= timestamp < start + self.size:
                yield (start, start + self.size)

    def instance_starting_at(self, start: float) -> tuple[float, float]:
        """Return the ``(start, end)`` bounds of the instance starting at ``start``."""
        return (start, start + self.size)

    def overlaps(self, other: "Window") -> bool:
        """Return True if instances of this window can overlap instances of ``other``.

        Time-based sliding windows anchored at zero always overlap somewhere,
        so this is True for any pair of windows; the method exists to keep the
        Definition 5 check explicit and testable.
        """
        return True

    def describe(self) -> str:
        """Canonical textual form, e.g. ``WITHIN 600s SLIDE 300s``."""
        return f"WITHIN {self.size:g}s SLIDE {self.slide:g}s"

    def __repr__(self) -> str:
        return self.describe()
