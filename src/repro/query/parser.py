"""A small SASE-like textual query language.

The textual form mirrors the queries in Figure 1 of the paper, e.g.::

    RETURN COUNT(*)
    PATTERN SEQ(Request, Travel+, NOT Pickup)
    WHERE [driver, rider] AND Travel.speed < 10
    GROUP BY district
    WITHIN 600 SLIDE 300

Grammar (informal):

* ``RETURN`` one of ``COUNT(*)``, ``COUNT(Type)``, ``SUM(Type.attr)``,
  ``AVG(Type.attr)``, ``MIN(Type.attr)``, ``MAX(Type.attr)``.
* ``PATTERN`` over ``Type``, ``Type+``, ``SEQ(p, p, ...)``, ``NOT p``,
  ``(p OR p)``, ``(p AND p)``, ``(p)+``.
* ``WHERE`` is a conjunction (``AND``) of ``[attr, attr, ...]`` equivalence
  predicates and ``Type.attr <op> constant`` / ``attr <op> constant``
  comparisons.
* ``GROUP BY`` a comma-separated attribute list.
* ``WITHIN seconds [SLIDE seconds]``.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import QueryParseError
from repro.query.aggregates import (
    AggregateFunction,
    avg,
    count_events,
    count_trends,
    max_of,
    min_of,
    sum_of,
)
from repro.query.pattern import (
    Conjunction,
    Disjunction,
    Kleene,
    Negation,
    Pattern,
    Sequence,
    typ,
)
from repro.query.predicates import (
    AttributeComparison,
    Predicate,
    same_attributes,
)
from repro.query.query import Query
from repro.query.windows import Window

_CLAUSE_RE = re.compile(
    r"RETURN\s+(?P<ret>.+?)\s+"
    r"PATTERN\s+(?P<pattern>.+?)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?"
    r"(?:\s+GROUP\s+BY\s+(?P<group>.+?))?"
    r"\s+WITHIN\s+(?P<within>[\d.]+)"
    r"(?:\s+SLIDE\s+(?P<slide>[\d.]+))?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_AGG_RE = re.compile(
    r"(?P<fn>COUNT|SUM|AVG|MIN|MAX)\s*\(\s*(?P<arg>\*|[\w.]+)\s*\)", re.IGNORECASE
)

_CMP_RE = re.compile(
    r"^(?P<ref>[\w.]+)\s*(?P<op>==|!=|<=|>=|<|>|=)\s*(?P<value>.+)$"
)


# ---------------------------------------------------------------------- #
# Pattern parsing
# ---------------------------------------------------------------------- #
class _PatternParser:
    """Recursive-descent parser for the pattern sub-language."""

    def __init__(self, text: str) -> None:
        self._tokens = self._tokenize(text)
        self._position = 0

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        raw = re.findall(r"SEQ|NOT|OR|AND|[A-Za-z_]\w*|\+|\(|\)|,", text)
        if not raw:
            raise QueryParseError(f"empty pattern expression: {text!r}")
        return raw

    def _peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryParseError("unexpected end of pattern expression")
        self._position += 1
        return token

    def _expect(self, token: str) -> None:
        actual = self._next()
        if actual != token:
            raise QueryParseError(f"expected {token!r}, got {actual!r}")

    def parse(self) -> Pattern:
        pattern = self._parse_binary()
        if self._peek() is not None:
            raise QueryParseError(f"trailing tokens in pattern: {self._tokens[self._position:]}")
        return pattern

    def _parse_binary(self) -> Pattern:
        left = self._parse_unary()
        while self._peek() in ("OR", "AND"):
            op = self._next()
            right = self._parse_unary()
            left = Disjunction(left, right) if op == "OR" else Conjunction(left, right)
        return left

    def _parse_unary(self) -> Pattern:
        token = self._peek()
        if token == "NOT":
            self._next()
            return Negation(self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Pattern:
        pattern = self._parse_primary()
        while self._peek() == "+":
            self._next()
            pattern = Kleene(pattern)
        return pattern

    def _parse_primary(self) -> Pattern:
        token = self._next()
        if token == "SEQ":
            self._expect("(")
            parts = [self._parse_binary()]
            while self._peek() == ",":
                self._next()
                parts.append(self._parse_binary())
            self._expect(")")
            if len(parts) == 1:
                return parts[0]
            return Sequence(*parts)
        if token == "(":
            inner = self._parse_binary()
            self._expect(")")
            return inner
        if re.fullmatch(r"[A-Za-z_]\w*", token):
            return typ(token)
        raise QueryParseError(f"unexpected token {token!r} in pattern")


def parse_pattern(text: str) -> Pattern:
    """Parse a pattern expression such as ``SEQ(A, B+, NOT C)``."""
    return _PatternParser(text).parse()


# ---------------------------------------------------------------------- #
# Clause parsing
# ---------------------------------------------------------------------- #
def _parse_aggregate(text: str) -> AggregateFunction:
    match = _AGG_RE.fullmatch(text.strip())
    if match is None:
        raise QueryParseError(f"cannot parse RETURN clause {text!r}")
    function = match.group("fn").upper()
    argument = match.group("arg")
    if function == "COUNT":
        if argument == "*":
            return count_trends()
        if "." in argument:
            raise QueryParseError("COUNT takes an event type or *, not an attribute")
        return count_events(argument)
    if "." not in argument:
        raise QueryParseError(f"{function} requires Type.attribute, got {argument!r}")
    event_type, attribute = argument.split(".", 1)
    constructors = {"SUM": sum_of, "AVG": avg, "MIN": min_of, "MAX": max_of}
    return constructors[function](event_type, attribute)


def _parse_value(text: str) -> str | float | bool:
    text = text.strip()
    if (text.startswith("'") and text.endswith("'")) or (
        text.startswith('"') and text.endswith('"')
    ):
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        if "." in text or "e" in lowered:
            return float(text)
        return int(text)
    except ValueError:
        return text


def _parse_where(text: str) -> list[Predicate]:
    predicates: list[Predicate] = []
    for clause in re.split(r"\s+AND\s+", text.strip(), flags=re.IGNORECASE):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("[") and clause.endswith("]"):
            attributes = [part.strip() for part in clause[1:-1].split(",") if part.strip()]
            if not attributes:
                raise QueryParseError(f"empty equivalence predicate {clause!r}")
            predicates.append(same_attributes(*attributes))
            continue
        match = _CMP_RE.match(clause)
        if match is None:
            raise QueryParseError(f"cannot parse WHERE clause {clause!r}")
        reference = match.group("ref")
        op = match.group("op")
        if op == "=":
            op = "=="
        value = _parse_value(match.group("value"))
        if "." in reference:
            event_type, attribute = reference.split(".", 1)
        else:
            event_type, attribute = None, reference
        predicates.append(AttributeComparison(attribute, op, value, event_type))
    return predicates


def parse_query(text: str, *, name: str = "") -> Query:
    """Parse a full textual query into a :class:`~repro.query.query.Query`."""
    normalized = " ".join(text.split())
    match = _CLAUSE_RE.match(normalized)
    if match is None:
        raise QueryParseError(f"cannot parse query: {text!r}")
    aggregate = _parse_aggregate(match.group("ret"))
    pattern = parse_pattern(match.group("pattern"))
    predicates = _parse_where(match.group("where")) if match.group("where") else []
    group_by = (
        tuple(part.strip() for part in match.group("group").split(",") if part.strip())
        if match.group("group")
        else ()
    )
    size = float(match.group("within"))
    slide = float(match.group("slide")) if match.group("slide") else 0.0
    return Query.build(
        pattern,
        aggregate=aggregate,
        predicates=predicates,
        group_by=group_by,
        window=Window(size, slide),
        name=name,
    )
