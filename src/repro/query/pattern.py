"""Pattern abstract syntax tree.

Definition 1 of the paper: a pattern ``P`` can be an event type ``E``, a
Kleene plus ``P1+``, a negation ``NOT P1``, an event sequence
``SEQ(P1, P2)``, a disjunction ``P1 | P2`` or a conjunction ``P1 & P2``.

Patterns are immutable trees.  Convenience constructors :func:`typ`,
:func:`seq` and :func:`kleene` plus the operators ``>>`` (sequence), ``|``
(disjunction), ``&`` (conjunction), ``~`` (negation) and ``+pattern``
(Kleene plus via :meth:`Pattern.plus`) make workload definitions concise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import PatternError
from repro.events.event import EventType


class Pattern:
    """Base class of all pattern AST nodes."""

    # ------------------------------------------------------------------ #
    # Operator sugar
    # ------------------------------------------------------------------ #
    def __rshift__(self, other: "Pattern") -> "Sequence":
        """``a >> b`` builds ``SEQ(a, b)`` (flattening nested sequences)."""
        return seq(self, other)

    def __or__(self, other: "Pattern") -> "Disjunction":
        return Disjunction(self, other)

    def __and__(self, other: "Pattern") -> "Conjunction":
        return Conjunction(self, other)

    def __invert__(self) -> "Negation":
        return Negation(self)

    def plus(self) -> "Kleene":
        """Return the Kleene plus of this pattern."""
        return Kleene(self)

    # ------------------------------------------------------------------ #
    # Introspection shared by all nodes
    # ------------------------------------------------------------------ #
    def event_types(self) -> set[EventType]:
        """Return the set of event types referenced anywhere in the pattern."""
        return {node.event_type for node in self.walk() if isinstance(node, EventTypePattern)}

    def walk(self) -> Iterator["Pattern"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Pattern", ...]:
        """Immediate sub-patterns."""
        return ()

    def contains_kleene(self) -> bool:
        """Return True if a Kleene plus appears anywhere in the pattern."""
        return any(isinstance(node, Kleene) for node in self.walk())

    def kleene_types(self) -> set[EventType]:
        """Event types ``E`` such that ``E+`` (possibly nested) appears in the pattern.

        These are the candidate shareable Kleene sub-patterns of Definition 4.
        """
        types: set[EventType] = set()
        for node in self.walk():
            if isinstance(node, Kleene):
                types |= node.sub_pattern.event_types()
        return types

    def contains_negation(self) -> bool:
        """Return True if a NOT appears anywhere in the pattern."""
        return any(isinstance(node, Negation) for node in self.walk())

    def describe(self) -> str:
        """Return a canonical textual form of the pattern (SASE-like)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.describe()


@dataclass(frozen=True, repr=False)
class EventTypePattern(Pattern):
    """A pattern matching a single event of the given type."""

    event_type: EventType

    def __post_init__(self) -> None:
        if not self.event_type or not self.event_type.isidentifier():
            raise PatternError(f"event type must be an identifier, got {self.event_type!r}")

    def describe(self) -> str:
        return self.event_type


@dataclass(frozen=True, repr=False)
class Kleene(Pattern):
    """Kleene plus ``P+``: one or more matches of the sub-pattern."""

    sub_pattern: Pattern

    def __post_init__(self) -> None:
        if isinstance(self.sub_pattern, Negation):
            raise PatternError("Kleene plus cannot be applied to a negated pattern")

    def children(self) -> tuple[Pattern, ...]:
        return (self.sub_pattern,)

    def describe(self) -> str:
        inner = self.sub_pattern.describe()
        if isinstance(self.sub_pattern, EventTypePattern):
            return f"{inner}+"
        return f"({inner})+"


@dataclass(frozen=True, repr=False)
class Sequence(Pattern):
    """Event sequence ``SEQ(P1, ..., Pn)``: temporal order over sub-patterns."""

    parts: tuple[Pattern, ...]

    def __init__(self, *parts: Pattern) -> None:
        if len(parts) < 2:
            raise PatternError("SEQ requires at least two sub-patterns")
        object.__setattr__(self, "parts", tuple(parts))

    def children(self) -> tuple[Pattern, ...]:
        return self.parts

    def describe(self) -> str:
        return "SEQ(" + ", ".join(part.describe() for part in self.parts) + ")"


@dataclass(frozen=True, repr=False)
class Negation(Pattern):
    """Negated sub-pattern ``NOT P`` (only meaningful inside a SEQ)."""

    sub_pattern: Pattern

    def children(self) -> tuple[Pattern, ...]:
        return (self.sub_pattern,)

    def describe(self) -> str:
        return f"NOT {self.sub_pattern.describe()}"


@dataclass(frozen=True, repr=False)
class Disjunction(Pattern):
    """Disjunctive pattern ``P1 OR P2``."""

    left: Pattern
    right: Pattern

    def children(self) -> tuple[Pattern, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"({self.left.describe()} OR {self.right.describe()})"


@dataclass(frozen=True, repr=False)
class Conjunction(Pattern):
    """Conjunctive pattern ``P1 AND P2``."""

    left: Pattern
    right: Pattern

    def children(self) -> tuple[Pattern, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"({self.left.describe()} AND {self.right.describe()})"


# ---------------------------------------------------------------------- #
# Convenience constructors
# ---------------------------------------------------------------------- #
def typ(event_type: EventType) -> EventTypePattern:
    """Return an event type pattern for ``event_type``."""
    return EventTypePattern(event_type)


def kleene(pattern: Pattern | EventType) -> Kleene:
    """Return the Kleene plus of ``pattern`` (a pattern or event type name)."""
    if isinstance(pattern, str):
        pattern = typ(pattern)
    return Kleene(pattern)


def seq(*parts: Pattern | EventType) -> Sequence:
    """Return ``SEQ(...)`` over the parts, flattening nested sequences.

    Parts given as strings are interpreted as event type patterns.
    """
    flattened: list[Pattern] = []
    for part in parts:
        if isinstance(part, str):
            part = typ(part)
        if isinstance(part, Sequence):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    return Sequence(*flattened)
