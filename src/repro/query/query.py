"""The :class:`Query` object — Definition 2 of the paper.

An event trend aggregation query consists of five clauses:

* aggregation result specification (RETURN),
* a Kleene pattern (PATTERN),
* optional predicates (WHERE),
* optional grouping attributes (GROUP BY),
* a window (WITHIN / SLIDE).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.errors import PatternError
from repro.events.event import Event, EventType
from repro.query.aggregates import AggregateFunction, count_trends
from repro.query.pattern import Pattern
from repro.query.predicates import CompositePredicate, Predicate
from repro.query.windows import Window

_query_counter = itertools.count(1)


@dataclass(frozen=True, eq=False)
class Query:
    """An event trend aggregation query.

    Queries are identified by ``name`` (auto-generated if omitted) and
    compared by identity: two distinct Query objects are distinct workload
    members even if all clauses coincide.
    """

    pattern: Pattern
    aggregate: AggregateFunction = field(default_factory=count_trends)
    predicates: CompositePredicate = field(default_factory=CompositePredicate)
    group_by: tuple[str, ...] = ()
    window: Window = field(default_factory=lambda: Window(600.0))
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.pattern, Pattern):
            raise PatternError(f"pattern must be a Pattern, got {type(self.pattern).__name__}")
        if not self.name:
            object.__setattr__(self, "name", f"q{next(_query_counter)}")
        if isinstance(self.group_by, list):
            object.__setattr__(self, "group_by", tuple(self.group_by))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        pattern: Pattern,
        *,
        aggregate: Optional[AggregateFunction] = None,
        predicates: Iterable[Predicate] = (),
        group_by: Sequence[str] = (),
        window: Optional[Window] = None,
        name: str = "",
    ) -> "Query":
        """Build a query from loose clause values."""
        return cls(
            pattern=pattern,
            aggregate=aggregate if aggregate is not None else count_trends(),
            predicates=CompositePredicate(predicates),
            group_by=tuple(group_by),
            window=window if window is not None else Window(600.0),
            name=name,
        )

    # ------------------------------------------------------------------ #
    # Event-level checks used by all engines
    # ------------------------------------------------------------------ #
    def event_types(self) -> set[EventType]:
        """Event types referenced by the pattern."""
        return self.pattern.event_types()

    def kleene_types(self) -> set[EventType]:
        """Event types under a Kleene plus (candidate shareable sub-patterns)."""
        return self.pattern.kleene_types()

    def accepts_event(self, event: Event) -> bool:
        """Return True if the event passes this query's local predicates.

        Type membership (whether the event type occurs in the pattern at all)
        is checked by the template, not here.
        """
        return self.predicates.accepts_event(event)

    def accepts_edge(self, previous: Event, current: Event) -> bool:
        """Return True if the adjacency ``previous -> current`` passes edge predicates."""
        return self.predicates.accepts_edge(previous, current)

    def group_key(self, event: Event) -> tuple[Any, ...]:
        """Return the grouping key of ``event`` (empty tuple when no GROUP BY)."""
        return tuple(event.get(attribute) for attribute in self.group_by)

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self.name == other.name

    def describe(self) -> str:
        """A SASE-like textual rendering of the query."""
        parts = [f"RETURN {self.aggregate.describe()}", f"PATTERN {self.pattern.describe()}"]
        if not self.predicates.is_empty():
            parts.append(f"WHERE {self.predicates!r}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        parts.append(self.window.describe())
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Query({self.name}: {self.pattern.describe()})"
