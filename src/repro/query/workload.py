"""Workloads — named collections of trend aggregation queries.

The HAMLET optimizer operates on a whole workload at once: it identifies
shareable Kleene sub-patterns (Definition 4) and groups queries into sets of
sharable queries (Definition 5).  The grouping logic itself lives in
:mod:`repro.template.analysis`; this module provides the container plus a few
workload-level conveniences used by examples and benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import WorkloadError
from repro.events.event import EventType
from repro.query.query import Query


class Workload:
    """An ordered collection of uniquely named queries."""

    def __init__(self, queries: Iterable[Query] = (), *, name: str = "workload") -> None:
        self.name = name
        self._queries: list[Query] = []
        self._by_name: dict[str, Query] = {}
        for query in queries:
            self.add(query)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def add(self, query: Query) -> None:
        """Add ``query`` to the workload.

        Raises:
            WorkloadError: if a query with the same name is already present.
        """
        if query.name in self._by_name:
            raise WorkloadError(f"duplicate query name {query.name!r} in workload {self.name!r}")
        self._queries.append(query)
        self._by_name[query.name] = query

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, query: Query | str) -> bool:
        name = query if isinstance(query, str) else query.name
        return name in self._by_name

    def __getitem__(self, name: str) -> Query:
        try:
            return self._by_name[name]
        except KeyError:
            raise WorkloadError(f"no query named {name!r} in workload {self.name!r}") from None

    @property
    def queries(self) -> tuple[Query, ...]:
        """The queries in insertion order."""
        return tuple(self._queries)

    # ------------------------------------------------------------------ #
    # Workload-level introspection
    # ------------------------------------------------------------------ #
    def event_types(self) -> set[EventType]:
        """Union of event types referenced by any query."""
        types: set[EventType] = set()
        for query in self._queries:
            types |= query.event_types()
        return types

    def kleene_types(self) -> set[EventType]:
        """Event types that appear under a Kleene plus in at least one query."""
        types: set[EventType] = set()
        for query in self._queries:
            types |= query.kleene_types()
        return types

    def shareable_kleene_types(self) -> set[EventType]:
        """Event types ``E`` whose ``E+`` appears in more than one query (Definition 4)."""
        counts: dict[EventType, int] = {}
        for query in self._queries:
            for event_type in query.kleene_types():
                counts[event_type] = counts.get(event_type, 0) + 1
        return {event_type for event_type, count in counts.items() if count > 1}

    def queries_with_kleene(self, event_type: EventType) -> tuple[Query, ...]:
        """Queries whose pattern contains ``event_type +``."""
        return tuple(q for q in self._queries if event_type in q.kleene_types())

    def validate(self) -> None:
        """Check basic workload invariants.

        Raises:
            WorkloadError: if the workload is empty.
        """
        if not self._queries:
            raise WorkloadError(f"workload {self.name!r} contains no queries")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workload({self.name!r}, {len(self._queries)} queries)"
