"""The GRETA engine: non-shared online event trend aggregation.

Each query in the workload is processed independently (Section 3.2 of the
HAMLET paper): the engine maintains one :class:`~repro.greta.graph.QueryGraph`
per query, computes the intermediate aggregate of every matched event from
its predecessor events (Equations 1–2) and sums the aggregates of end-type
events to obtain the final result (Equation 3).

Time complexity is ``O(k * n^2)`` for ``k`` queries and ``n`` matched events
per partition (Equation 4) — the ``k`` factor is what HAMLET's sharing
removes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ExecutionError
from repro.events.event import Event
from repro.greta.aggregators import (
    ExtremumTrendAggregator,
    LinearTrendAggregator,
)
from repro.greta.graph import QueryGraph
from repro.interfaces import TrendAggregationEngine
from repro.query.query import Query
from repro.template.template import compile_pattern


class GretaEngine(TrendAggregationEngine):
    """Non-shared online trend aggregation over one stream partition."""

    name = "greta"
    #: Cross-window sharing: per-query evaluation (no cross-query sharing —
    #: GRETA's defining property) over one shared event graph per group,
    #: with per-window coefficients (see runtime/shared_windows).
    shared_window_flavor = "per-query"

    def __init__(self) -> None:
        self._queries: tuple[Query, ...] = ()
        self._graphs: dict[str, QueryGraph] = {}
        self._aggregators: dict[str, LinearTrendAggregator | ExtremumTrendAggregator] = {}
        self._template_cache: dict[str, object] = {}
        self._started = False

    # ------------------------------------------------------------------ #
    # Engine interface
    # ------------------------------------------------------------------ #
    def start(self, queries: Sequence[Query]) -> None:
        """Prepare per-query graphs and aggregators."""
        if not queries:
            raise ExecutionError("GretaEngine.start requires at least one query")
        self._queries = tuple(queries)
        self._graphs = {}
        self._aggregators = {}
        for query in self._queries:
            # Template compilation is a pure function of the pattern; cache it
            # so re-starting the engine per window partition stays cheap.
            template = self._template_cache.get(query.name)
            if template is None:
                template = compile_pattern(query.pattern)
                self._template_cache[query.name] = template
            self._graphs[query.name] = QueryGraph(query, template)
            if query.aggregate.kind.is_linear:
                self._aggregators[query.name] = LinearTrendAggregator(query)
            else:
                self._aggregators[query.name] = ExtremumTrendAggregator(query)
        self._started = True

    def process(self, event: Event) -> None:
        """Route the event to every query that matches its type."""
        if not self._started:
            raise ExecutionError("GretaEngine.process called before start()")
        for query in self._queries:
            graph = self._graphs[query.name]
            if graph.is_negative_type(event.event_type):
                if query.accepts_event(event):
                    graph.add_negative_event(event)
                continue
            if not graph.is_positive_type(event.event_type):
                continue
            if not query.accepts_event(event):
                continue
            aggregator = self._aggregators[query.name]
            graph.add_event(event, aggregator.new_state)

    def results(self) -> dict[str, float]:
        """Final aggregate per query (Equation 3)."""
        if not self._started:
            raise ExecutionError("GretaEngine.results called before start()")
        results: dict[str, float] = {}
        for query in self._queries:
            graph = self._graphs[query.name]
            aggregator = self._aggregators[query.name]
            end_states = [node.state for node in graph.end_nodes()]
            results[query.name] = aggregator.finalize(end_states)
        return results

    def close(self) -> None:
        """Evict the finished partition's graphs and aggregators.

        The compiled-template cache is query-set-pure and survives, so a
        pooled engine restarts without recompiling patterns.
        """
        self._graphs = {}
        self._aggregators = {}
        self._started = False

    def memory_units(self) -> int:
        """Sum of per-query graph footprints (events are replicated per query)."""
        return sum(graph.memory_units() for graph in self._graphs.values())

    def operations(self) -> int:
        """Total predecessor accesses / state updates across all query graphs."""
        return sum(graph.operations for graph in self._graphs.values())

    # ------------------------------------------------------------------ #
    # Introspection used by tests
    # ------------------------------------------------------------------ #
    def graph_of(self, query: Query | str) -> Optional[QueryGraph]:
        """Return the graph of ``query`` (by object or name)."""
        name = query if isinstance(query, str) else query.name
        return self._graphs.get(name)
