"""GRETA-style non-shared online event trend aggregation.

GRETA [33] encodes matched events and their trend-adjacency in a per-query
graph and propagates intermediate aggregates along the edges, so trends are
aggregated without being constructed (Section 3.2 of the HAMLET paper).
HAMLET uses exactly this strategy as its *non-shared* execution path, and the
paper uses GRETA as its strongest online baseline, so this package is both a
baseline engine and a building block of :mod:`repro.core`.
"""

from repro.greta.aggregators import (
    AggregateVector,
    ExtremumTrendAggregator,
    LinearTrendAggregator,
    Measure,
    measures_for_queries,
    result_from_vector,
)
from repro.greta.engine import GretaEngine
from repro.greta.graph import QueryGraph

__all__ = [
    "AggregateVector",
    "ExtremumTrendAggregator",
    "GretaEngine",
    "LinearTrendAggregator",
    "Measure",
    "QueryGraph",
    "measures_for_queries",
    "result_from_vector",
]
