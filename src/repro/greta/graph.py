"""Per-query event graph (the GRETA graph).

The graph stores every event matched by one query together with the event's
intermediate aggregate (the state propagated along trend-adjacency edges).
Edges are never materialized: the predecessor events of a new event are
enumerated on demand from the per-type event lists, applying edge predicates
and negation constraints (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.events.event import Event, EventType
from repro.query.query import Query
from repro.template.template import NegationConstraint, QueryTemplate


@dataclass
class GraphNode:
    """A matched event together with its intermediate aggregate state."""

    event: Event
    state: object


class QueryGraph:
    """The GRETA graph of one query over one stream partition."""

    def __init__(self, query: Query, template: QueryTemplate) -> None:
        self.query = query
        self.template = template
        self._nodes_by_type: dict[EventType, list[GraphNode]] = {}
        self._negative_events: dict[EventType, list[Event]] = {}
        #: Hot-loop facts hoisted out of the per-predecessor checks.
        self._has_edge_predicates = bool(query.predicates.edge_predicates)
        self._sequence_negations = tuple(
            constraint for constraint in template.negations if constraint.after_types
        )
        #: Abstract work counter: one unit per predecessor access / state update.
        self.operations = 0

    # ------------------------------------------------------------------ #
    # Event classification
    # ------------------------------------------------------------------ #
    def is_positive_type(self, event_type: EventType) -> bool:
        """True if events of this type are matched positively by the query."""
        return event_type in self.template.event_types

    def is_negative_type(self, event_type: EventType) -> bool:
        """True if events of this type only appear under NOT in the query."""
        return event_type in self.template.negated_types

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def add_negative_event(self, event: Event) -> None:
        """Record an event matched by a negated sub-pattern."""
        self._negative_events.setdefault(event.event_type, []).append(event)

    def add_event(
        self,
        event: Event,
        compute_state: Callable[[Event, bool, list[object]], object],
    ) -> object:
        """Insert a matched event, computing its state from its predecessors.

        Args:
            event: The newly matched event (already past local predicates).
            compute_state: callback ``(event, starts_trend, predecessor_states)
                -> state`` — typically an aggregator's ``new_state``.

        Returns:
            The computed state.
        """
        starts_trend = self.template.is_start(event.event_type)
        # Stream the predecessor states instead of materializing a list; the
        # per-predecessor work unit is counted by predecessors_of itself.
        state = compute_state(
            event, starts_trend, (node.state for node in self.predecessors_of(event))
        )
        self.operations += 1
        self._nodes_by_type.setdefault(event.event_type, []).append(GraphNode(event, state))
        return state

    # ------------------------------------------------------------------ #
    # Predecessor enumeration
    # ------------------------------------------------------------------ #
    def predecessors_of(self, event: Event) -> Iterator[GraphNode]:
        """Yield the graph nodes that may immediately precede ``event`` in a trend.

        A stored node ``e'`` qualifies if its type is a predecessor type of
        the new event's type, it arrived strictly earlier, the query's edge
        predicates accept the pair, and no negation constraint invalidates
        the edge.
        """
        predecessor_types = self.template.predecessor_types(event.event_type)
        check_edges = self._has_edge_predicates
        check_negations = bool(self._sequence_negations) and bool(self._negative_events)
        for event_type in predecessor_types:
            for node in self._nodes_by_type.get(event_type, ()):
                if not node.event < event:
                    continue
                if check_edges and not self.query.accepts_edge(node.event, event):
                    continue
                if check_negations and self._negation_blocks(node.event, event):
                    continue
                self.operations += 1
                yield node

    def _negation_blocks(self, previous: Event, current: Event) -> bool:
        """True if a negation constraint invalidates the edge ``previous -> current``."""
        for constraint in self._sequence_negations:
            if previous.event_type not in constraint.before_types:
                continue
            if current.event_type not in constraint.after_types:
                continue
            if self._has_negative_between(constraint, previous, current):
                return True
        return False

    def _has_negative_between(
        self, constraint: NegationConstraint, previous: Event, current: Event
    ) -> bool:
        for negative in self._negative_events.get(constraint.negated_type, ()):
            if previous < negative < current:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def end_nodes(self) -> Iterator[GraphNode]:
        """Yield nodes of end types whose trends are not cancelled by a trailing NOT."""
        trailing = [
            constraint for constraint in self.template.negations if not constraint.after_types
        ]
        for event_type in self.template.end_types:
            for node in self._nodes_by_type.get(event_type, ()):
                if trailing and self._cancelled_by_trailing_negation(node.event, trailing):
                    continue
                yield node

    def _cancelled_by_trailing_negation(
        self, event: Event, constraints: list[NegationConstraint]
    ) -> bool:
        for constraint in constraints:
            if event.event_type not in constraint.before_types:
                continue
            for negative in self._negative_events.get(constraint.negated_type, ()):
                if event < negative:
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def node_count(self) -> int:
        """Number of stored (matched) events."""
        return sum(len(nodes) for nodes in self._nodes_by_type.values())

    def negative_count(self) -> int:
        """Number of stored negative events."""
        return sum(len(events) for events in self._negative_events.values())

    def nodes_of_type(self, event_type: EventType) -> tuple[GraphNode, ...]:
        """Stored nodes of one event type, in arrival order."""
        return tuple(self._nodes_by_type.get(event_type, ()))

    def memory_units(self) -> int:
        """Events stored plus one unit per intermediate state plus one result slot."""
        return 2 * self.node_count() + self.negative_count() + 1

    def state_of(self, event: Event) -> Optional[object]:
        """Return the stored state of ``event`` or None if it was not matched."""
        for node in self._nodes_by_type.get(event.event_type, ()):
            if node.event == event:
                return node.state
        return None
