"""Online trend-aggregate propagation.

The intermediate aggregate of an event ``e`` summarizes *all trends ending at
``e``* (Equations 1–3 of the paper, generalized beyond COUNT(*)):

* ``count(e)  = start(e) + Σ count(e')``
* ``m_i(e)    = contrib_i(e) * count(e) + Σ m_i(e')``

where the sums range over predecessor events ``e'`` and ``m_i`` is one
*measure*: the running SUM of some attribute or the running COUNT of events
of some type over all trends ending at ``e``.  COUNT(*), COUNT(E), SUM and
AVG are all derived from ``(count, measures)`` — the :class:`AggregateVector`.
This linearity is exactly what lets HAMLET propagate the same vectors as
symbolic snapshot expressions in shared graphlets.

MIN/MAX are not linear; :class:`ExtremumTrendAggregator` propagates them
per query in the non-shared path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import SharingError
from repro.events.event import Event, EventType
from repro.query.aggregates import AggregateFunction, AggregateKind
from repro.query.query import Query


# ---------------------------------------------------------------------- #
# Measures
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Measure:
    """One per-trend measure tracked alongside the trend count.

    ``attribute is None`` means "number of events of ``event_type``";
    otherwise the measure is the sum of ``event_type.attribute`` over all
    events in all trends.
    """

    event_type: EventType
    attribute: Optional[str] = None

    def contribution(self, event: Event) -> float:
        """Value contributed by ``event`` to this measure (0 if not applicable)."""
        if event.event_type != self.event_type:
            return 0.0
        if self.attribute is None:
            return 1.0
        return float(event[self.attribute])

    def __repr__(self) -> str:
        if self.attribute is None:
            return f"count({self.event_type})"
        return f"sum({self.event_type}.{self.attribute})"


def measures_for_aggregate(aggregate: AggregateFunction) -> tuple[Measure, ...]:
    """Measures needed to answer one aggregate function."""
    kind = aggregate.kind
    if kind is AggregateKind.COUNT_TRENDS:
        return ()
    if kind is AggregateKind.COUNT_EVENTS:
        return (Measure(aggregate.event_type, None),)
    if kind is AggregateKind.SUM:
        return (Measure(aggregate.event_type, aggregate.attribute),)
    if kind is AggregateKind.AVG:
        return (
            Measure(aggregate.event_type, aggregate.attribute),
            Measure(aggregate.event_type, None),
        )
    raise SharingError(f"{aggregate.describe()} has no linear measure decomposition")


def measures_for_queries(queries: Iterable[Query]) -> tuple[Measure, ...]:
    """Deduplicated measures needed by all linear aggregates of ``queries``."""
    measures: list[Measure] = []
    for query in queries:
        if not query.aggregate.kind.is_linear:
            continue
        for measure in measures_for_aggregate(query.aggregate):
            if measure not in measures:
                measures.append(measure)
    return tuple(measures)


# ---------------------------------------------------------------------- #
# Aggregate vectors
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class AggregateVector:
    """``(trend count, measure values...)`` for a set of trends."""

    count: float
    measures: tuple[float, ...] = ()

    @classmethod
    def zero(cls, dimension: int) -> "AggregateVector":
        """The zero vector with ``dimension`` measures."""
        return cls(0.0, (0.0,) * dimension)

    def add(self, other: "AggregateVector") -> "AggregateVector":
        """Component-wise sum."""
        return AggregateVector(
            self.count + other.count,
            tuple(a + b for a, b in zip(self.measures, other.measures)),
        )

    def scale(self, factor: float) -> "AggregateVector":
        """Component-wise multiplication by a scalar."""
        return AggregateVector(
            self.count * factor, tuple(value * factor for value in self.measures)
        )

    def is_zero(self) -> bool:
        """True if every component is exactly zero."""
        return self.count == 0.0 and all(value == 0.0 for value in self.measures)

    @property
    def dimension(self) -> int:
        """Number of measure components."""
        return len(self.measures)


def result_from_vector(
    query: Query, vector: AggregateVector, measures: Sequence[Measure]
) -> float:
    """Extract the final aggregate of ``query`` from a total vector.

    ``measures`` must be the measure list the vector was built with.
    """
    aggregate = query.aggregate
    kind = aggregate.kind
    if kind is AggregateKind.COUNT_TRENDS:
        return vector.count

    def measure_value(event_type: EventType, attribute: Optional[str]) -> float:
        target = Measure(event_type, attribute)
        for index, measure in enumerate(measures):
            if measure == target:
                return vector.measures[index]
        raise SharingError(f"measure {target!r} missing from vector (have {list(measures)})")

    if kind is AggregateKind.COUNT_EVENTS:
        return measure_value(aggregate.event_type, None)
    if kind is AggregateKind.SUM:
        return measure_value(aggregate.event_type, aggregate.attribute)
    if kind is AggregateKind.AVG:
        total = measure_value(aggregate.event_type, aggregate.attribute)
        count = measure_value(aggregate.event_type, None)
        return total / count if count else 0.0
    raise SharingError(f"{aggregate.describe()} cannot be extracted from a linear vector")


# ---------------------------------------------------------------------- #
# Per-query aggregators (non-shared propagation)
# ---------------------------------------------------------------------- #
class LinearTrendAggregator:
    """Non-shared propagation of an :class:`AggregateVector` for one query."""

    def __init__(self, query: Query, measures: Optional[Sequence[Measure]] = None) -> None:
        if not query.aggregate.kind.is_linear:
            raise SharingError(
                f"query {query.name} has non-linear aggregate {query.aggregate.describe()}"
            )
        self.query = query
        self.measures: tuple[Measure, ...] = (
            tuple(measures) if measures is not None else measures_for_aggregate(query.aggregate)
        )

    @property
    def dimension(self) -> int:
        """Number of measures tracked."""
        return len(self.measures)

    def new_state(
        self,
        event: Event,
        starts_trend: bool,
        predecessor_states: Iterable[AggregateVector],
    ) -> AggregateVector:
        """Intermediate vector of ``event`` given its predecessors' vectors.

        ``predecessor_states`` may be a lazy iterable; it is consumed once.
        The accumulation is kept allocation-free per predecessor (the hot
        loop of non-shared propagation).
        """
        count = 1.0 if starts_trend else 0.0
        if not self.measures:
            for state in predecessor_states:
                count += state.count
            return AggregateVector(count, ())
        measure_totals = [0.0] * len(self.measures)
        for state in predecessor_states:
            count += state.count
            for index, value in enumerate(state.measures):
                measure_totals[index] += value
        for index, measure in enumerate(self.measures):
            contribution = measure.contribution(event)
            if contribution:
                measure_totals[index] += contribution * count
        return AggregateVector(count, tuple(measure_totals))

    def finalize(self, end_states: Iterable[AggregateVector]) -> float:
        """Final aggregate from the vectors of all end-type events."""
        total = AggregateVector.zero(len(self.measures))
        for state in end_states:
            total = total.add(state)
        return result_from_vector(self.query, total, self.measures)


class ExtremumTrendAggregator:
    """Non-shared propagation of MIN/MAX for one query.

    The per-event state is the best (smallest or largest) value of the
    aggregated attribute over all trends ending at the event, or ``None`` if
    no trend ending at the event contains an event of the aggregated type.
    """

    def __init__(self, query: Query) -> None:
        kind = query.aggregate.kind
        if kind not in (AggregateKind.MIN, AggregateKind.MAX):
            raise SharingError(f"{query.aggregate.describe()} is not an extremum aggregate")
        self.query = query
        self._pick = min if kind is AggregateKind.MIN else max

    def new_state(
        self,
        event: Event,
        starts_trend: bool,
        predecessor_states: Iterable[Optional[float]],
    ) -> Optional[float]:
        """Best value over all trends ending at ``event``."""
        own = self.query.aggregate.candidate_value(event)
        candidates: list[float] = []
        if starts_trend and own is not None:
            candidates.append(own)
        for state in predecessor_states:
            if state is not None and own is not None:
                candidates.append(self._pick(state, own))
            elif state is not None:
                candidates.append(state)
            elif own is not None:
                candidates.append(own)
        if not candidates:
            return None
        return self._pick(candidates)

    def finalize(self, end_states: Iterable[Optional[float]]) -> float:
        """Final MIN/MAX over the states of all end-type events (0.0 if none)."""
        values = [state for state in end_states if state is not None]
        if not values:
            return 0.0
        return float(self._pick(values))
