"""Ridesharing trip analytics: the workload of Figure 1 over a simulated stream.

Three queries monitor ride trips per district:

* q1 — trips where the driver kept travelling but never picked the rider up
  (SEQ(Request, Travel+, NOT Pickup)),
* q2 — completed Pool trips (SEQ(Pool, Travel+, Dropoff)) with the total
  travelled duration,
* q3 — cancelled trips in slow-moving traffic
  (SEQ(Request, Travel+, Cancel) with Travel.speed < 10).

All three share the expensive Travel+ Kleene sub-pattern; HAMLET decides at
runtime, per burst of Travel events, whether sharing pays off.

Run with:  python examples/ridesharing_analytics.py
"""

from __future__ import annotations

from repro import parse_query
from repro.core import HamletEngine
from repro.datasets import RidesharingGenerator
from repro.greta import GretaEngine
from repro.runtime import WorkloadExecutor


def build_workload():
    """The Figure 1 workload expressed in the textual query language."""
    q1 = parse_query(
        """
        RETURN COUNT(*)
        PATTERN SEQ(Request, Travel+, NOT Pickup)
        WHERE [driver, rider]
        GROUP BY district
        WITHIN 300 SLIDE 300
        """,
        name="stuck-trips",
    )
    q2 = parse_query(
        """
        RETURN SUM(Travel.duration)
        PATTERN SEQ(Pool, Travel+, Dropoff)
        WHERE [driver, rider]
        GROUP BY district
        WITHIN 300 SLIDE 300
        """,
        name="pool-trip-duration",
    )
    q3 = parse_query(
        """
        RETURN COUNT(*)
        PATTERN SEQ(Request, Travel+, Cancel)
        WHERE [driver, rider] AND Travel.speed < 10
        GROUP BY district
        WITHIN 300 SLIDE 300
        """,
        name="slow-cancellations",
    )
    return [q1, q2, q3]


def main() -> None:
    workload = build_workload()
    # A small fleet (few drivers/riders) makes the [driver, rider] equivalence
    # predicates of Figure 1 actually match within the five-minute windows.
    generator = RidesharingGenerator(
        events_per_minute=600, seed=42, districts=4, drivers=5, riders=5,
        slow_traffic_fraction=0.5,
    )
    stream = generator.generate(duration_seconds=300.0)
    print(f"Generated {len(stream)} ridesharing events over 5 minutes.")

    hamlet = WorkloadExecutor(workload, HamletEngine).run(stream)
    greta = WorkloadExecutor(workload, GretaEngine).run(stream)

    print("\nPer-query aggregates (summed over districts and windows):")
    for query in workload:
        print(f"  {query.name:<22} HAMLET={hamlet.result_for(query):12.1f}  "
              f"GRETA={greta.result_for(query):12.1f}")

    print("\nExecution metrics:")
    print(f"  HAMLET: latency={hamlet.metrics.average_latency * 1e3:8.2f} ms/window, "
          f"throughput={hamlet.metrics.throughput:9.0f} events/s, "
          f"peak memory={hamlet.metrics.peak_memory_units} units")
    print(f"  GRETA : latency={greta.metrics.average_latency * 1e3:8.2f} ms/window, "
          f"throughput={greta.metrics.throughput:9.0f} events/s, "
          f"peak memory={greta.metrics.peak_memory_units} units")

    stats = hamlet.optimizer_statistics
    if stats is not None:
        print(f"\nHAMLET sharing decisions: {stats.decisions} "
              f"(shared {stats.shared_fraction:.0%} of bursts, "
              f"{stats.merges} merges, {stats.splits} splits)")


if __name__ == "__main__":
    main()
