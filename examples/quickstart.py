"""Quickstart: share two event trend aggregation queries over one stream.

This is the paper's running example (Figures 3–5): two queries, SEQ(A, B+)
and SEQ(C, B+), both counting trends.  Their Kleene sub-pattern B+ is
shareable, so HAMLET processes every burst of B events once for both queries
and keeps per-query differences in snapshots.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Event, EventStream, Query, Window, kleene, seq
from repro.core import HamletEngine
from repro.greta import GretaEngine
from repro.runtime import WorkloadExecutor


def build_queries() -> list[Query]:
    """The two sharable queries of the running example."""
    window = Window.minutes(10)
    q1 = Query.build(seq("A", kleene("B")), window=window, name="q1")
    q2 = Query.build(seq("C", kleene("B")), window=window, name="q2")
    return [q1, q2]


def build_stream() -> EventStream:
    """The Figure 4 stream: a1, a2, c1 followed by a burst of four B events."""
    return EventStream(
        [
            Event("A", 0.0),
            Event("A", 1.0),
            Event("C", 2.0),
            Event("B", 3.0),
            Event("B", 4.0),
            Event("B", 5.0),
            Event("B", 6.0),
        ],
        name="figure4",
    )


def main() -> None:
    queries = build_queries()
    stream = build_stream()

    # The executor analyses the workload (which sub-patterns are sharable),
    # partitions the stream by group/window, and runs the HAMLET engine.
    hamlet_report = WorkloadExecutor(queries, HamletEngine).run(stream)
    greta_report = WorkloadExecutor(queries, GretaEngine).run(stream)

    print("Trend counts (HAMLET, shared execution):")
    for query in queries:
        print(f"  {query.name}: {hamlet_report.result_for(query):.0f}")

    print("Trend counts (GRETA, per-query execution):")
    for query in queries:
        print(f"  {query.name}: {greta_report.result_for(query):.0f}")

    assert hamlet_report.totals == greta_report.totals, "engines must agree"

    stats = hamlet_report.optimizer_statistics
    if stats is not None:
        print(
            f"HAMLET made {stats.decisions} sharing decisions, "
            f"shared {stats.shared_fraction:.0%} of bursts."
        )
    print(
        "Peak memory (abstract units): "
        f"HAMLET={hamlet_report.metrics.peak_memory_units}, "
        f"GRETA={greta_report.metrics.peak_memory_units}"
    )


if __name__ == "__main__":
    main()
