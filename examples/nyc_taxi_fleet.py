"""Fleet monitoring over a simulated NYC taxi stream (the Figure 11 setting).

Twelve queries track trip trends per pickup zone — all sharing the Travel+
Kleene sub-pattern — at an arrival rate where the non-shared online engine
(GRETA) starts falling behind while HAMLET's shared execution keeps the
latency flat.  The example also demonstrates a mixed workload: one MAX query
is routed to the GRETA path automatically because extremum aggregates cannot
ride on shared snapshot expressions.

Run with:  python examples/nyc_taxi_fleet.py
"""

from __future__ import annotations

import math

from repro import Query, Window, kleene, max_of, seq
from repro.bench.workloads import nyc_taxi_workload
from repro.core import HamletEngine
from repro.datasets import NycTaxiGenerator
from repro.greta import GretaEngine
from repro.runtime import WorkloadExecutor


def build_workload():
    """Ten sharable COUNT(*) queries plus one MAX query over trip prices."""
    workload = nyc_taxi_workload(10, window=Window.minutes(1))
    workload.add(
        Query.build(
            seq("Pickup", kleene("Travel")),
            aggregate=max_of("Travel", "price"),
            group_by=("pickup_zone",),
            window=Window.minutes(1),
            name="max-travel-price",
        )
    )
    return workload


def main() -> None:
    workload = build_workload()
    stream = NycTaxiGenerator(events_per_minute=1000, seed=11, zones=4).generate(60.0)
    print(f"Workload: {len(workload)} queries, stream: {len(stream)} events in one minute.\n")

    hamlet = WorkloadExecutor(workload, HamletEngine).run(stream)
    greta = WorkloadExecutor(workload, GretaEngine).run(stream)

    print(f"{'engine':<8} {'latency ms/window':>18} {'throughput ev/s':>16} {'peak memory':>12}")
    for name, report in (("HAMLET", hamlet), ("GRETA", greta)):
        print(
            f"{name:<8} {report.metrics.average_latency * 1e3:>18.2f} "
            f"{report.metrics.throughput:>16.0f} {report.metrics.peak_memory_units:>12d}"
        )

    ratio = (
        greta.metrics.average_latency / hamlet.metrics.average_latency
        if hamlet.metrics.average_latency
        else float("inf")
    )
    print(f"\nHAMLET is {ratio:.1f}x faster than non-shared GRETA on this configuration.")

    print("\nSample results (summed over zones and windows):")
    for query in list(workload)[:3] + [workload["max-travel-price"]]:
        # Trend counts grow exponentially with the events per window, so the
        # engines are compared with a relative tolerance (they sum identical
        # terms in different orders).
        assert math.isclose(
            hamlet.result_for(query), greta.result_for(query), rel_tol=1e-9, abs_tol=1e-9
        )
        print(f"  {query.name:<22} {hamlet.result_for(query):14.4g}")


if __name__ == "__main__":
    main()
