"""Dynamic versus static sharing on a bursty stock stream (Figures 12–13 story).

A diverse workload of trend aggregation queries over simulated stock trades
shares the Trade+ / UpTick+ sub-patterns, but the queries disagree on
predicates, so sharing is only sometimes beneficial.  The example runs the
same workload three times — with HAMLET's dynamic per-burst decisions, with a
static "always share" plan, and with sharing disabled — and prints the
latency, throughput, memory and snapshot counts side by side.

Run with:  python examples/stock_dynamic_sharing.py
"""

from __future__ import annotations

from repro.bench.workloads import diverse_stock_workload
from repro.core import HamletEngine
from repro.datasets import StockGenerator
from repro.optimizer import AlwaysShareOptimizer, DynamicSharingOptimizer, NeverShareOptimizer
from repro.runtime import WorkloadExecutor


def run_policy(name: str, optimizer_factory, workload, stream) -> dict:
    """Run the workload with one sharing policy and collect the key numbers."""
    executor = WorkloadExecutor(workload, lambda: HamletEngine(optimizer_factory()))
    report = executor.run(stream)
    engine = executor._shared_engine
    snapshots = engine.total_snapshots_created() if isinstance(engine, HamletEngine) else 0
    stats = report.optimizer_statistics
    return {
        "policy": name,
        "latency_ms": report.metrics.average_latency * 1e3,
        "throughput": report.metrics.throughput,
        "memory": report.metrics.peak_memory_units,
        "snapshots": snapshots,
        "shared_fraction": stats.shared_fraction if stats else 0.0,
        "totals": report.totals,
    }


def main() -> None:
    workload = diverse_stock_workload(num_queries=12)
    stream = StockGenerator(events_per_minute=600, seed=17).generate(duration_seconds=120.0)
    print(f"Workload: {len(workload)} queries over {len(stream)} stock events.\n")

    runs = [
        run_policy("dynamic (HAMLET)", DynamicSharingOptimizer, workload, stream),
        run_policy("static always-share", AlwaysShareOptimizer, workload, stream),
        run_policy("never share (GRETA-style)", NeverShareOptimizer, workload, stream),
    ]

    header = f"{'policy':<28} {'latency ms':>11} {'events/s':>10} {'memory':>8} {'snapshots':>10} {'shared':>7}"
    print(header)
    print("-" * len(header))
    for run in runs:
        print(
            f"{run['policy']:<28} {run['latency_ms']:>11.3f} {run['throughput']:>10.0f} "
            f"{run['memory']:>8.0f} {run['snapshots']:>10d} {run['shared_fraction']:>6.0%}"
        )

    # All policies must agree on the query results — sharing only changes how
    # the aggregates are computed, never their values.
    baseline = runs[0]["totals"]
    for run in runs[1:]:
        for name, value in baseline.items():
            assert abs(run["totals"][name] - value) < 1e-6, (name, run["policy"])
    print("\nAll three policies produced identical aggregates "
          f"for all {len(baseline)} queries.")


if __name__ == "__main__":
    main()
