"""Figure 13: memory of dynamic versus static sharing decisions.

Paper's shape: dynamic sharing needs roughly 25 % less memory than the static
always-share executor because far fewer snapshots are created and kept.
"""

from __future__ import annotations

from conftest import print_rows, run_once

from repro.bench.fig13 import figure13_memory_vs_events, figure13_memory_vs_queries

EVENT_VALUES = (300, 600, 900)
QUERY_VALUES = (8, 16, 24)


def _by_approach(rows, value):
    return {row.approach: row for row in rows if row.value == value}


def test_fig13a_memory_vs_events(benchmark):
    rows = run_once(benchmark, lambda: figure13_memory_vs_events(EVENT_VALUES, num_queries=12))
    print_rows(rows, metrics=["memory_units"])
    for value in EVENT_VALUES:
        per_approach = _by_approach(rows, value)
        dynamic = per_approach["hamlet-dynamic"]
        static = per_approach["hamlet-static"]
        assert dynamic.memory_units <= static.memory_units * 1.05
        assert dynamic.extra["snapshots"] <= static.extra["snapshots"]


def test_fig13b_memory_vs_queries(benchmark):
    rows = run_once(benchmark, lambda: figure13_memory_vs_queries(QUERY_VALUES, events_per_minute=600))
    print_rows(rows, metrics=["memory_units"])
    for value in QUERY_VALUES:
        per_approach = _by_approach(rows, value)
        dynamic = per_approach["hamlet-dynamic"]
        static = per_approach["hamlet-static"]
        assert dynamic.memory_units <= static.memory_units * 1.05
