"""Figure 11: HAMLET versus GRETA on the NYC-taxi and smart-home simulators.

Paper's shape: in the high-rate setting only the two online Kleene engines
run; HAMLET's shared execution keeps latency orders of magnitude below
GRETA's, and the gap widens as the arrival rate and the workload size grow.

Streaming scenarios: the simulators model live feeds consumed online in
one pass.  They generate in-order arrivals; unsorted real feeds run
through the same executors with ``allowed_lateness`` (the reorder buffer,
PR 10) and must match these ordered runs bit-identically within the
horizon — `tests/runtime/test_reorder.py` pins that differential.
"""

from __future__ import annotations

from conftest import metric_by_approach, print_rows, run_once

from repro.bench.fig11 import (
    figure11_nyc_events_sweep,
    figure11_queries_sweep,
    figure11_smart_home_events_sweep,
)

EVENT_VALUES = (500, 1000, 1500)
QUERY_VALUES = (10, 20, 30)


def test_fig11ace_nyc_latency_throughput_memory_vs_events(benchmark):
    rows = run_once(benchmark, lambda: figure11_nyc_events_sweep(EVENT_VALUES, num_queries=10))
    print_rows(rows)
    for value in EVENT_VALUES:
        latency = metric_by_approach(rows, value)
        memory = metric_by_approach(rows, value, "memory_units")
        assert latency["hamlet"] < latency["greta"]
        assert memory["hamlet"] < memory["greta"]
    # The latency gap grows with the arrival rate.
    first = metric_by_approach(rows, EVENT_VALUES[0])
    last = metric_by_approach(rows, EVENT_VALUES[-1])
    assert (last["greta"] / last["hamlet"]) > (first["greta"] / first["hamlet"]) * 0.8


def test_fig11bdf_smart_home_vs_events(benchmark):
    rows = run_once(
        benchmark, lambda: figure11_smart_home_events_sweep(EVENT_VALUES, num_queries=10)
    )
    print_rows(rows)
    for value in EVENT_VALUES:
        latency = metric_by_approach(rows, value)
        assert latency["hamlet"] < latency["greta"]


def test_fig11gh_nyc_vs_queries(benchmark):
    rows = run_once(
        benchmark, lambda: figure11_queries_sweep(QUERY_VALUES, events_per_minute=1000)
    )
    print_rows(rows, metrics=["latency_seconds", "throughput_eps"])
    for value in QUERY_VALUES:
        latency = metric_by_approach(rows, value)
        throughput = metric_by_approach(rows, value, "throughput_eps")
        assert latency["hamlet"] < latency["greta"]
        assert throughput["hamlet"] > throughput["greta"]
