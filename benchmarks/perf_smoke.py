"""Perf smoke microbenchmark — the repo's recorded performance trajectory.

Runs a fixed-seed, fig9-style workload (shared ``Travel+`` Kleene sub-pattern
over the ridesharing stream) through the three hot paths this library cares
about:

* ``hamlet_shared`` — HAMLET with the dynamic sharing optimizer (the paper's
  headline configuration; symbolic snapshot propagation),
* ``hamlet_non_shared`` — HAMLET forced non-shared (exercises the Equation 2
  predecessor-total path),
* ``greta`` — the per-query GRETA baseline.

Each scenario is repeated and the best wall-clock time is kept; throughput is
``stream events / best wall seconds``.  Results are merged into a JSON file
(``BENCH_PR1.json`` by default) under a caller-chosen label so before/after
numbers of a PR live side by side::

    PYTHONPATH=src python benchmarks/perf_smoke.py --label before
    ... apply the optimization ...
    PYTHONPATH=src python benchmarks/perf_smoke.py --label after

Besides wall-clock numbers the harness records the engines' *abstract
operation counts*, which are deterministic for a fixed seed.  ``--gate``
compares the current operation counts against the recorded ``after`` label
and fails on regression — a machine-independent, non-flaky threshold gate
suitable for CI (wall-clock numbers are recorded but never gated).
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path
from typing import Callable

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.core.engine import HamletEngine
from repro.datasets.ridesharing import RidesharingGenerator
from repro.greta.engine import GretaEngine
from repro.optimizer.decisions import DynamicSharingOptimizer
from repro.optimizer.static import NeverShareOptimizer
from repro.query.windows import Window
from repro.runtime.executor import WorkloadExecutor
from repro.bench.workloads import kleene_sharing_workload

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR1.json"

#: Fixed workload shape (fig9-style: shared Travel+ over ridesharing).
NUM_QUERIES = 10
EVENTS_PER_MINUTE = 2400.0
DURATION_SECONDS = 120.0
SEED = 7
DISTRICTS = 5
WINDOW = Window.minutes(1)

#: Permitted relative growth of deterministic operation counts before the
#: ``--gate`` mode fails (guards against accidental algorithmic regressions
#: while tolerating benign accounting tweaks).
GATE_TOLERANCE = 0.05


def build_input():
    """The fixed-seed workload and stream shared by every scenario."""
    workload = kleene_sharing_workload(
        NUM_QUERIES, kleene_type="Travel", window=WINDOW, name="smoke"
    )
    generator = RidesharingGenerator(
        events_per_minute=EVENTS_PER_MINUTE, seed=SEED, districts=DISTRICTS
    )
    events = list(generator.generate(DURATION_SECONDS))
    return workload, events


def scenarios() -> dict[str, Callable]:
    return {
        "hamlet_shared": lambda: HamletEngine(DynamicSharingOptimizer()),
        "hamlet_non_shared": lambda: HamletEngine(NeverShareOptimizer()),
        "greta": GretaEngine,
    }


def run_scenario(name: str, factory: Callable, workload, events, repeats: int) -> dict:
    best_seconds = float("inf")
    report = None
    for _ in range(max(1, repeats)):
        executor = WorkloadExecutor(workload, factory)
        start = time.perf_counter()
        report = executor.run(events)
        elapsed = time.perf_counter() - start
        best_seconds = min(best_seconds, elapsed)
    assert report is not None
    checksum = sum(report.totals.values())
    result = {
        "wall_seconds": round(best_seconds, 4),
        "events_per_second": round(len(events) / best_seconds, 1),
        "operations": report.metrics.operations,
        "peak_memory_units": report.metrics.peak_memory_units,
        "partitions": report.metrics.partitions,
        "result_checksum": checksum,
    }
    print(
        f"  {name:<20} {result['events_per_second']:>10.0f} ev/s  "
        f"{best_seconds:8.3f} s  ops={result['operations']:>10}  "
        f"checksum={checksum:g}"
    )
    return result


def load_results(path: Path) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {
        "benchmark": "perf_smoke",
        "workload": {
            "style": "fig9-shared-kleene",
            "num_queries": NUM_QUERIES,
            "events_per_minute": EVENTS_PER_MINUTE,
            "duration_seconds": DURATION_SECONDS,
            "seed": SEED,
            "districts": DISTRICTS,
            "window_seconds": WINDOW.size,
        },
        "runs": {},
    }


def attach_speedups(results: dict) -> None:
    runs = results["runs"]
    if "before" not in runs or "after" not in runs:
        return
    speedups = {}
    for name, after in runs["after"].items():
        before = runs["before"].get(name)
        if before and before.get("wall_seconds"):
            speedups[name] = round(
                before["wall_seconds"] / after["wall_seconds"], 2
            )
    results["speedup_after_over_before"] = speedups


def gate(results: dict, current: dict) -> int:
    """Compare deterministic operation counts against the recorded baseline."""
    baseline = results["runs"].get("after") or results["runs"].get("before")
    if baseline is None:
        print("gate: no recorded baseline label; nothing to compare against")
        return 1
    failures = []
    for name, row in current.items():
        recorded = baseline.get(name)
        if recorded is None:
            continue
        # Checksums are sums of huge floats; hash randomization permutes the
        # frozenset iteration (and thus summation) order across processes,
        # so the last few bits wobble.  Compare with a relative tolerance.
        if not math.isclose(
            row["result_checksum"], recorded["result_checksum"], rel_tol=1e-9
        ):
            failures.append(
                f"{name}: result checksum changed "
                f"({recorded['result_checksum']} -> {row['result_checksum']})"
            )
        ceiling = recorded["operations"] * (1.0 + GATE_TOLERANCE)
        if row["operations"] > ceiling:
            failures.append(
                f"{name}: operations regressed {recorded['operations']} -> "
                f"{row['operations']} (> {GATE_TOLERANCE:.0%} tolerance)"
            )
    if failures:
        for failure in failures:
            print(f"gate FAILED: {failure}")
        return 1
    print("gate OK: operation counts and result checksums within tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after", help="label to record under (before/after/...)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUTPUT, help="JSON results file")
    parser.add_argument("--repeats", type=int, default=3, help="repetitions per scenario")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="do not record; fail if deterministic op counts regressed vs the file",
    )
    args = parser.parse_args(argv)

    workload, events = build_input()
    # The gate only reads deterministic op counts and checksums, which are
    # identical across repeats; one execution per scenario suffices.
    repeats = 1 if args.gate else args.repeats
    print(
        f"perf_smoke: {len(events)} events, {NUM_QUERIES} queries, "
        f"label={args.label!r}, repeats={repeats}"
    )
    current = {
        name: run_scenario(name, factory, workload, events, repeats)
        for name, factory in scenarios().items()
    }

    results = load_results(args.out)
    if args.gate:
        return gate(results, current)

    results["runs"][args.label] = current
    results.setdefault("environment", {})[args.label] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    attach_speedups(results)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"recorded label {args.label!r} in {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
