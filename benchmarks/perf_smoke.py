"""Perf smoke microbenchmark — the repo's recorded performance trajectory.

Four fixed-seed suites:

* ``smoke`` (``BENCH_PR1.json``) — the fig9-style tumbling-window workload
  (shared ``Travel+`` Kleene sub-pattern over the ridesharing stream)
  through the three engine hot paths:

  - ``hamlet_shared`` — HAMLET with the dynamic sharing optimizer,
  - ``hamlet_non_shared`` — HAMLET forced non-shared (Equation 2 path),
  - ``greta`` — the per-query GRETA baseline.

* ``overlap`` (``BENCH_PR2.json``) — an overlapping-window workload
  (slide = size/5, 20 districts, rare trend-start types) comparing the
  batch replay executor against the single-pass ``StreamingExecutor`` on
  its **per-instance** path (PR 2's runtime, pinned via
  ``shared_windows=False`` so the recorded gate keeps guarding that path).

* ``overlap-shared`` (``BENCH_PR3.json``, section ``overlap``) — the same
  input through the **shared-window** runtime: one multi-window engine per
  ``(group, unit)`` pair processes each event once for all overlapping
  instances (see ``repro/runtime/shared_windows.py``), next to the
  per-instance rows (``*_instances``) and the batch rows.  The recorded
  ``speedup_shared_over_pr2`` section divides the shared rows' throughput
  by the ``BENCH_PR2.json`` streaming rows — the PR 3 headline.

* ``deep-overlap`` (``BENCH_PR3.json``, section ``deep-overlap``) — the
  same workload with slide = size/20 (overlap factor 20).  The recorded
  ``deep_overlap_slowdown`` section divides the ``overlap`` section's
  shared throughput by this one's: near-flat scaling in the overlap factor
  means the ratio stays well below the 4x growth of the overlap factor.

* ``bursty`` (``BENCH_PR5.json``) — a rate-fluctuating multi-aggregate
  workload (storm phases of dense same-type bursts alternating with
  sparse, type-alternating trickles — the Figure 12/13 regime) through the
  adaptive streaming runtime: the static compile-time plan, the dynamic
  per-burst optimizer and both static extremes (always / never share).
  All four rows are bit-identical in results; the recorded
  ``adaptive_vs_static`` section divides the static rows' ops by the
  dynamic row's — the dynamic optimizer must beat the worse extreme.

* ``sharded`` (``BENCH_PR4.json``) — the overlap-shared workload (20
  districts, so >= 8 distinct group keys) through the sharded driver:
  single-process streaming next to ``ShardedStreamingExecutor`` with the
  in-process router (``workers=0``) and 1/4 worker processes.  The
  recorded ``speedup_sharded_over_single`` section divides each sharded
  row's wall-clock throughput by the single-process row's.  Wall-clock
  ratios are machine-dependent — the recorded ``environment`` includes
  ``cpu_count`` because parallel speedup needs cores (a 1-CPU container
  records the transport overhead, not the scale-out) — while operation
  counts and result checksums are shard-count-invariant and gated.

* ``transport`` (``BENCH_PR6.json``, section ``transport``) — the
  overlap-shared workload through 4 worker processes over both batch
  transports: pickled ``EventBatch`` blobs versus columnar buffers in
  shared-memory slab rings (``repro/runtime/transport.py``).  The recorded
  ``speedup_shm_over_pickle`` ratio is the PR 6 transport headline; the
  checksums must be identical and are gated, the wall ratio is
  machine-dependent like every other (see ``environment``).

* ``kernel`` (``BENCH_PR6.json``, section ``kernel``) — the bursty
  storm/trickle stream through the static streaming runtime under both
  kernel backends: the pure-Python reference fold versus the NumPy
  closed-form burst fold (``repro/core/kernels_numpy.py``; row skipped
  when NumPy is not installed).  Abstract operation counts are
  backend-invariant by design and gated; ``speedup_numpy_over_python``
  records the vectorization payoff.

* ``block`` (``BENCH_PR9.json``) — block ingest versus per-event ingest,
  end to end from one columnar payload: the per-event rows decode the
  payload into ``Event`` objects and stream them one by one, the block
  rows rebuild an :class:`EventBlock` over the same bytes and feed it
  whole (single-process and through the in-process sharded driver).  The
  input is a denser stream than the overlap suite's (block ingest
  amortizes per-event dispatch, so its payoff belongs to the high-rate
  regime it targets); ``speedup_block_over_per_event`` records the
  headline ratio and both sides must produce identical result digests.

* ``ooo`` (``BENCH_PR10.json``) — the reorder buffer's two recorded
  claims: enabling ``allowed_lateness`` on a fully **in-order** stream
  costs within a few percent of the strict path on the block-ingest hot
  path (one sortedness probe + zero-copy segment per block; the scalar
  pair records the honest per-event constant next to it), and a stream
  shuffled within the lateness horizon reproduces the strict run's
  result digest bit-identically — single-process and through the
  in-process sharded driver.  Digest identity across all rows is
  checked at run time and gated, like the block suite's twins.

Each scenario is repeated and the best wall-clock time is kept; throughput
is ``stream events / best wall seconds``.  Results are merged into the
suite's JSON file under a caller-chosen label so before/after numbers of a
PR live side by side::

    PYTHONPATH=src python benchmarks/perf_smoke.py --label before
    ... apply the optimization ...
    PYTHONPATH=src python benchmarks/perf_smoke.py --label after

Besides wall-clock numbers the harness records the engines' *abstract
operation counts*, which are deterministic for a fixed seed.  ``--gate``
compares the current operation counts against the recorded ``after`` label
and fails on regression — a machine-independent, non-flaky threshold gate
suitable for CI (wall-clock numbers are recorded but never gated).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import platform
import struct
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

import random

from repro.core.engine import HamletEngine
from repro.core.kernels import KERNEL_BACKEND_ENV
from repro.datasets.ridesharing import RidesharingGenerator
from repro.events.block import EventBlock
from repro.events.columnar import decode_events
from repro.events.event import Event
from repro.greta.engine import GretaEngine
from repro.optimizer.decisions import DynamicSharingOptimizer
from repro.optimizer.static import NeverShareOptimizer
from repro.query.windows import Window
from repro.runtime.executor import WorkloadExecutor
from repro.runtime.sharding import ShardedStreamingExecutor
from repro.runtime.streaming import StreamingExecutor
from repro.bench.workloads import kleene_sharing_workload, multi_aggregate_workload

#: Permitted relative growth of deterministic operation counts before the
#: ``--gate`` mode fails (guards against accidental algorithmic regressions
#: while tolerating benign accounting tweaks).
GATE_TOLERANCE = 0.05

SEED = 7
EVENTS_PER_MINUTE = 2400.0
DURATION_SECONDS = 120.0


@dataclass(frozen=True)
class Suite:
    """One recorded benchmark suite: fixed input + named executor scenarios.

    ``section`` places the suite's results under ``suites[<section>]`` of a
    shared output file (BENCH_PR3.json holds both shared-window suites);
    ``None`` keeps the whole file to the suite (the PR 1/PR 2 layout).
    """

    name: str
    output: Path
    build_input: Callable
    scenarios: Callable
    workload_meta: dict
    section: str | None = None
    #: Benchmark family name of a fresh sectioned container (files holding
    #: several sections share one; BENCH_PR3.json predates the field).
    family: str = "shared-windows"


# ---------------------------------------------------------------------- #
# Suite: smoke (fig9-style, tumbling window) -> BENCH_PR1.json
# ---------------------------------------------------------------------- #
SMOKE_QUERIES = 10
SMOKE_DISTRICTS = 5
SMOKE_WINDOW = Window.minutes(1)


def _smoke_input():
    workload = kleene_sharing_workload(
        SMOKE_QUERIES, kleene_type="Travel", window=SMOKE_WINDOW, name="smoke"
    )
    generator = RidesharingGenerator(
        events_per_minute=EVENTS_PER_MINUTE, seed=SEED, districts=SMOKE_DISTRICTS
    )
    return workload, list(generator.generate(DURATION_SECONDS))


def _smoke_scenarios() -> dict[str, Callable]:
    return {
        "hamlet_shared": lambda workload, events: WorkloadExecutor(
            workload, lambda: HamletEngine(DynamicSharingOptimizer())
        ).run(events),
        "hamlet_non_shared": lambda workload, events: WorkloadExecutor(
            workload, lambda: HamletEngine(NeverShareOptimizer())
        ).run(events),
        "greta": lambda workload, events: WorkloadExecutor(workload, GretaEngine).run(events),
    }


# ---------------------------------------------------------------------- #
# Suites: overlap (slide = size/5) and deep-overlap (slide = size/20)
# ---------------------------------------------------------------------- #
OVERLAP_QUERIES = 10
OVERLAP_DISTRICTS = 20
OVERLAP_WINDOW = Window(10.0, 2.0)  # slide = size/5
DEEP_OVERLAP_WINDOW = Window(10.0, 0.5)  # slide = size/20
#: Rare trend-start types (the paper's bursty setting: sparse requests,
#: dense Travel pings) — the regime where replaying every overlapping
#: partition from scratch wastes the most work.
OVERLAP_PREFIXES = ("Surge", "Breakdown")


def _overlap_input(window: Window = OVERLAP_WINDOW):
    workload = kleene_sharing_workload(
        OVERLAP_QUERIES,
        kleene_type="Travel",
        prefix_types=OVERLAP_PREFIXES,
        window=window,
        name="overlap",
    )
    generator = RidesharingGenerator(
        events_per_minute=EVENTS_PER_MINUTE, seed=SEED, districts=OVERLAP_DISTRICTS
    )
    return workload, list(generator.generate(DURATION_SECONDS))


def _deep_overlap_input():
    return _overlap_input(DEEP_OVERLAP_WINDOW)


#: Engine factories shared by every overlapping-window scenario builder so a
#: configuration change cannot silently diverge across suites.
_ENGINE_FACTORIES: dict[str, Callable] = {
    "hamlet": lambda: HamletEngine(DynamicSharingOptimizer()),
    "greta": GretaEngine,
}


def _batch_scenario(engine: str) -> Callable:
    factory = _ENGINE_FACTORIES[engine]
    return lambda workload, events: WorkloadExecutor(workload, factory).run(events)


def _streaming_scenario(engine: str, *, shared_windows: bool) -> Callable:
    factory = _ENGINE_FACTORIES[engine]
    return lambda workload, events: StreamingExecutor(
        workload, factory, shared_windows=shared_windows
    ).run(events)


def _overlap_scenarios() -> dict[str, Callable]:
    # PR 2's recorded suite: the per-instance streaming runtime, pinned so
    # the BENCH_PR2.json gate keeps guarding that path.
    return {
        "batch_hamlet": _batch_scenario("hamlet"),
        "streaming_hamlet": _streaming_scenario("hamlet", shared_windows=False),
        "batch_greta": _batch_scenario("greta"),
        "streaming_greta": _streaming_scenario("greta", shared_windows=False),
    }


def _shared_scenarios() -> dict[str, Callable]:
    return {
        "batch_hamlet": _batch_scenario("hamlet"),
        "streaming_hamlet": _streaming_scenario("hamlet", shared_windows=True),
        "streaming_hamlet_instances": _streaming_scenario("hamlet", shared_windows=False),
        "batch_greta": _batch_scenario("greta"),
        "streaming_greta": _streaming_scenario("greta", shared_windows=True),
        "streaming_greta_instances": _streaming_scenario("greta", shared_windows=False),
    }


def _deep_overlap_scenarios() -> dict[str, Callable]:
    # batch_greta is omitted: the 20x event duplication makes the GRETA
    # replay the slowest row by far without adding signal beyond batch_hamlet.
    return {
        "batch_hamlet": _batch_scenario("hamlet"),
        "streaming_hamlet": _streaming_scenario("hamlet", shared_windows=True),
        "streaming_hamlet_instances": _streaming_scenario("hamlet", shared_windows=False),
        "streaming_greta": _streaming_scenario("greta", shared_windows=True),
    }


# ---------------------------------------------------------------------- #
# Suite: bursty (rate-fluctuating stream, adaptive vs static sharing)
#   -> BENCH_PR5.json
# ---------------------------------------------------------------------- #
BURSTY_QUERIES = 8  # 2 prefixes x 4 aggregates = 2 classes of 4 members
BURSTY_DISTRICTS = 6
BURSTY_WINDOW = Window(20.0, 4.0)  # slide = size/5
BURSTY_PREFIXES = ("Request", "Surge")
BURSTY_PHASES = 14
#: Storm phases: dense Travel runs (long bursts, sharing clearly wins).
BURSTY_STORM_EVENTS = 900
BURSTY_STORM_INTERVAL = 0.03
BURSTY_STORM_WEIGHTS = (14.0, 1.0, 1.0)
#: Trickle phases: sparse, type-alternating traffic (short bursts where the
#: merge cost of a fresh shared run is not worth a couple of events).
BURSTY_TRICKLE_EVENTS = 60
BURSTY_TRICKLE_INTERVAL = 3.0
BURSTY_TRICKLE_WEIGHTS = (1.0, 1.5, 1.5)


def _bursty_input():
    """The Fig. 12/13 shape: stream rate fluctuating between extremes.

    Storm phases produce long same-type Travel bursts (per-burst sharing
    wins by the burst length); trickle phases alternate types so bursts
    shrink to a handful of events and sharing repeatedly has to pay for
    fresh merges.  A static plan is wrong in one of the two regimes by
    construction; the dynamic optimizer flips per burst.
    """
    workload = multi_aggregate_workload(
        BURSTY_QUERIES,
        kleene_type="Travel",
        prefix_types=BURSTY_PREFIXES,
        window=BURSTY_WINDOW,
        group_by=("district",),
        name="bursty",
    )
    rng = random.Random(SEED)
    types = ("Travel",) + BURSTY_PREFIXES
    events = []
    clock = 0.0
    for phase in range(BURSTY_PHASES):
        storm = phase % 2 == 0
        count = BURSTY_STORM_EVENTS if storm else BURSTY_TRICKLE_EVENTS
        interval = BURSTY_STORM_INTERVAL if storm else BURSTY_TRICKLE_INTERVAL
        weights = BURSTY_STORM_WEIGHTS if storm else BURSTY_TRICKLE_WEIGHTS
        for _ in range(count):
            events.append(
                Event(
                    rng.choices(types, weights=weights)[0],
                    clock,
                    {
                        "district": float(rng.randint(1, BURSTY_DISTRICTS)),
                        "speed": float(rng.randint(5, 60)),
                    },
                )
            )
            clock += interval
    return workload, events


def _adaptive_scenario(optimizer: str | None) -> Callable:
    factory = _ENGINE_FACTORIES["hamlet"]
    return lambda workload, events: StreamingExecutor(
        workload, factory, optimizer=optimizer
    ).run(events)


def _bursty_scenarios() -> dict[str, Callable]:
    # All four rows produce bit-identical totals (the differential property
    # suite guards this); only the work and memory profiles differ, which
    # is exactly what the recorded ops are gating.
    return {
        "static_compile_time": _adaptive_scenario(None),
        "adaptive_dynamic": _adaptive_scenario("dynamic"),
        "static_always_share": _adaptive_scenario("always"),
        "static_never_share": _adaptive_scenario("never"),
    }


def _sharded_scenario(workers: int, transport: str = "pickle") -> Callable:
    factory = _ENGINE_FACTORIES["hamlet"]
    return lambda workload, events: ShardedStreamingExecutor(
        workload, factory, workers=workers, transport=transport
    ).run(events)


def _sharded_scenarios() -> dict[str, Callable]:
    # Same fixed-seed input as overlap-shared (20 districts => 20 group
    # keys), so the single-process row is directly comparable to the PR 3
    # numbers; the sharded rows must reproduce its checksum bit-identically.
    return {
        "streaming_single": _streaming_scenario("hamlet", shared_windows=True),
        "sharded_inprocess": _sharded_scenario(0),
        "sharded_w1": _sharded_scenario(1),
        "sharded_w4": _sharded_scenario(4),
    }


def _transport_scenarios() -> dict[str, Callable]:
    # Same fixed-seed input as the sharded suite, so the pickle row is
    # directly comparable to BENCH_PR4's sharded_w4; both transports must
    # reproduce the single-process checksum bit-identically.
    return {
        "streaming_single": _streaming_scenario("hamlet", shared_windows=True),
        "sharded_w4_pickle": _sharded_scenario(4, "pickle"),
        "sharded_w4_shm": _sharded_scenario(4, "shm"),
    }


def _kernel_scenario(backend: str) -> Callable:
    factory = _ENGINE_FACTORIES["hamlet"]
    return lambda workload, events: StreamingExecutor(
        workload, factory, kernel_backend=backend
    ).run(events)


# ---------------------------------------------------------------------- #
# Suite: block (block ingest vs per-event ingest) -> BENCH_PR9.json
# ---------------------------------------------------------------------- #
#: Denser than the overlap suite on purpose: block ingest amortizes the
#: per-event dispatch around the folds, which dominates exactly when events
#: arrive faster than the window-close machinery runs.
BLOCK_EVENTS_PER_MINUTE = 9600.0
BLOCK_DURATION_SECONDS = 60.0
BLOCK_SHARDS = 4


def _block_input():
    workload = kleene_sharing_workload(
        OVERLAP_QUERIES,
        kleene_type="Travel",
        prefix_types=OVERLAP_PREFIXES,
        window=OVERLAP_WINDOW,
        name="overlap",
    )
    generator = RidesharingGenerator(
        events_per_minute=BLOCK_EVENTS_PER_MINUTE, seed=SEED, districts=OVERLAP_DISTRICTS
    )
    return workload, list(generator.generate(BLOCK_DURATION_SECONDS))


def _block_scenarios() -> dict[str, Callable]:
    # Both sides start from the same columnar payload, so each row measures
    # the full wire -> report path and differs only in the in-memory format
    # it rematerializes: Event objects or one EventBlock.  The payload is
    # encoded once outside the timed region (it belongs to the producer).
    payload_cache: list[bytes] = []

    def payload(events) -> bytes:
        if not payload_cache:
            payload_cache.append(EventBlock.from_events(events).to_bytes("columnar"))
        return payload_cache[0]

    factory = _ENGINE_FACTORIES["hamlet"]

    def per_event(workload, events):
        return StreamingExecutor(workload, factory).run(decode_events(payload(events)))

    def block(workload, events):
        return StreamingExecutor(workload, factory).run(
            EventBlock.from_bytes(payload(events))
        )

    def sharded_per_event(workload, events):
        return ShardedStreamingExecutor(
            workload, factory, workers=0, shards=BLOCK_SHARDS
        ).run(decode_events(payload(events)))

    def sharded_block(workload, events):
        return ShardedStreamingExecutor(
            workload, factory, workers=0, shards=BLOCK_SHARDS
        ).run(EventBlock.from_bytes(payload(events)))

    return {
        "per_event_ingest": per_event,
        "block_ingest": block,
        "sharded_per_event": sharded_per_event,
        "sharded_block": sharded_block,
    }


# ---------------------------------------------------------------------- #
# Suite: ooo (reorder buffer: in-order overhead + shuffled differential)
#   -> BENCH_PR10.json
# ---------------------------------------------------------------------- #
#: Lateness horizon for the out-of-order rows; the shuffled stream displaces
#: each sort key by at most half of it, so no event is ever late.
OOO_LATENESS = 5.0
OOO_SHARDS = 4


def _ooo_scenarios() -> dict[str, Callable]:
    # The shuffled arrival order is derived once, deterministically: each
    # event's sort key is displaced by at most OOO_LATENESS / 2, which keeps
    # every arrival within the horizon of the watermark (the reorder
    # buffer's contract regime — nothing is ever dropped or raised).
    shuffled_cache: list = []

    def shuffled(events):
        if not shuffled_cache:
            rng = random.Random(SEED + 1)
            shuffled_cache.append(
                sorted(
                    events,
                    key=lambda event: event.time
                    + rng.uniform(-OOO_LATENESS / 2, OOO_LATENESS / 2),
                )
            )
        return shuffled_cache[0]

    factory = _ENGINE_FACTORIES["hamlet"]
    block_cache: list[EventBlock] = []

    def as_block(events) -> EventBlock:
        if not block_cache:
            block_cache.append(EventBlock.from_events(events))
        return block_cache[0]

    def scalar_strict(workload, events):
        return StreamingExecutor(workload, factory).run(events)

    def scalar_buffered_inorder(workload, events):
        return StreamingExecutor(
            workload, factory, allowed_lateness=OOO_LATENESS
        ).run(events)

    def scalar_buffered_shuffled(workload, events):
        return StreamingExecutor(
            workload, factory, allowed_lateness=OOO_LATENESS
        ).run(shuffled(events))

    def block_strict(workload, events):
        return StreamingExecutor(workload, factory).run(as_block(events))

    def block_buffered_inorder(workload, events):
        return StreamingExecutor(
            workload, factory, allowed_lateness=OOO_LATENESS
        ).run(as_block(events))

    def sharded_shuffled(workload, events):
        return ShardedStreamingExecutor(
            workload, factory, workers=0, shards=OOO_SHARDS,
            allowed_lateness=OOO_LATENESS,
        ).run(shuffled(events))

    return {
        "scalar_strict": scalar_strict,
        "scalar_buffered_inorder": scalar_buffered_inorder,
        "scalar_buffered_shuffled": scalar_buffered_shuffled,
        "block_strict": block_strict,
        "block_buffered_inorder": block_buffered_inorder,
        "sharded_buffered_shuffled": sharded_shuffled,
    }


def _kernel_scenarios() -> dict[str, Callable]:
    rows: dict[str, Callable] = {"streaming_python": _kernel_scenario("python")}
    try:
        import numpy  # noqa: F401

        rows["streaming_numpy"] = _kernel_scenario("numpy")
    except ImportError:
        print("  (numpy not installed: streaming_numpy row skipped)")
    return rows


def _overlap_meta(window: Window) -> dict:
    return {
        "style": "overlapping-window-batch-vs-streaming",
        "num_queries": OVERLAP_QUERIES,
        "events_per_minute": EVENTS_PER_MINUTE,
        "duration_seconds": DURATION_SECONDS,
        "seed": SEED,
        "districts": OVERLAP_DISTRICTS,
        "window_seconds": window.size,
        "slide_seconds": window.slide,
        "overlap_factor": window.instances_per_event,
        "prefix_types": list(OVERLAP_PREFIXES),
    }


SUITES = {
    "smoke": Suite(
        name="smoke",
        output=REPO_ROOT / "BENCH_PR1.json",
        build_input=_smoke_input,
        scenarios=_smoke_scenarios,
        workload_meta={
            "style": "fig9-shared-kleene",
            "num_queries": SMOKE_QUERIES,
            "events_per_minute": EVENTS_PER_MINUTE,
            "duration_seconds": DURATION_SECONDS,
            "seed": SEED,
            "districts": SMOKE_DISTRICTS,
            "window_seconds": SMOKE_WINDOW.size,
        },
    ),
    "overlap": Suite(
        name="overlap",
        output=REPO_ROOT / "BENCH_PR2.json",
        build_input=_overlap_input,
        scenarios=_overlap_scenarios,
        workload_meta={
            "style": "overlapping-window-batch-vs-streaming",
            "num_queries": OVERLAP_QUERIES,
            "events_per_minute": EVENTS_PER_MINUTE,
            "duration_seconds": DURATION_SECONDS,
            "seed": SEED,
            "districts": OVERLAP_DISTRICTS,
            "window_seconds": OVERLAP_WINDOW.size,
            "slide_seconds": OVERLAP_WINDOW.slide,
            "prefix_types": list(OVERLAP_PREFIXES),
        },
    ),
    "overlap-shared": Suite(
        name="overlap-shared",
        output=REPO_ROOT / "BENCH_PR3.json",
        build_input=_overlap_input,
        scenarios=_shared_scenarios,
        workload_meta=_overlap_meta(OVERLAP_WINDOW),
        section="overlap",
    ),
    "deep-overlap": Suite(
        name="deep-overlap",
        output=REPO_ROOT / "BENCH_PR3.json",
        build_input=_deep_overlap_input,
        scenarios=_deep_overlap_scenarios,
        workload_meta=_overlap_meta(DEEP_OVERLAP_WINDOW),
        section="deep-overlap",
    ),
    "bursty": Suite(
        name="bursty",
        output=REPO_ROOT / "BENCH_PR5.json",
        build_input=_bursty_input,
        scenarios=_bursty_scenarios,
        workload_meta={
            "style": "bursty-adaptive-vs-static-sharing",
            "num_queries": BURSTY_QUERIES,
            "query_classes": len(BURSTY_PREFIXES),
            "members_per_class": BURSTY_QUERIES // len(BURSTY_PREFIXES),
            "seed": SEED,
            "districts": BURSTY_DISTRICTS,
            "window_seconds": BURSTY_WINDOW.size,
            "slide_seconds": BURSTY_WINDOW.slide,
            "phases": BURSTY_PHASES,
            "storm": {
                "events": BURSTY_STORM_EVENTS,
                "interval_seconds": BURSTY_STORM_INTERVAL,
            },
            "trickle": {
                "events": BURSTY_TRICKLE_EVENTS,
                "interval_seconds": BURSTY_TRICKLE_INTERVAL,
            },
            "note": (
                "all rows are bit-identical in results; ops/memory measure "
                "the sharing plans. The dynamic row must beat the worse "
                "static extreme (see adaptive_vs_static)."
            ),
        },
    ),
    "sharded": Suite(
        name="sharded",
        output=REPO_ROOT / "BENCH_PR4.json",
        build_input=_overlap_input,
        scenarios=_sharded_scenarios,
        workload_meta={
            **_overlap_meta(OVERLAP_WINDOW),
            "style": "sharded-streaming-vs-single-process",
            "group_keys": OVERLAP_DISTRICTS,
            "note": (
                "wall-clock ratios are machine-dependent: parallel speedup "
                "needs cores (see environment.cpu_count); ops/checksums are "
                "shard-count-invariant and gated"
            ),
        },
    ),
    "transport": Suite(
        name="transport",
        output=REPO_ROOT / "BENCH_PR6.json",
        build_input=_overlap_input,
        scenarios=_transport_scenarios,
        workload_meta={
            **_overlap_meta(OVERLAP_WINDOW),
            "style": "sharded-transport-pickle-vs-shm",
            "group_keys": OVERLAP_DISTRICTS,
            "note": (
                "--gate compares ops/checksums only; wall ratios (incl. "
                "speedup_shm_over_pickle) are informational — on a 1-CPU "
                "box (see environment.cpu_count) every row time-slices "
                "one core and measures transport overhead, not scale-out"
            ),
        },
        section="transport",
        family="transport-and-kernels",
    ),
    "kernel": Suite(
        name="kernel",
        output=REPO_ROOT / "BENCH_PR6.json",
        build_input=_bursty_input,
        scenarios=_kernel_scenarios,
        workload_meta={
            "style": "bursty-kernel-backend-python-vs-numpy",
            "num_queries": BURSTY_QUERIES,
            "seed": SEED,
            "districts": BURSTY_DISTRICTS,
            "window_seconds": BURSTY_WINDOW.size,
            "slide_seconds": BURSTY_WINDOW.slide,
            "phases": BURSTY_PHASES,
            "note": (
                "abstract operation counts are backend-invariant by design "
                "and gated; integer-valued measures keep the NumPy closed "
                "forms bit-identical to the reference (checksums gated), "
                "wall ratios are informational"
            ),
        },
        section="kernel",
        family="transport-and-kernels",
    ),
    "block": Suite(
        name="block",
        output=REPO_ROOT / "BENCH_PR9.json",
        build_input=_block_input,
        scenarios=_block_scenarios,
        workload_meta={
            "style": "block-ingest-vs-per-event",
            "num_queries": OVERLAP_QUERIES,
            "events_per_minute": BLOCK_EVENTS_PER_MINUTE,
            "duration_seconds": BLOCK_DURATION_SECONDS,
            "seed": SEED,
            "districts": OVERLAP_DISTRICTS,
            "window_seconds": OVERLAP_WINDOW.size,
            "slide_seconds": OVERLAP_WINDOW.slide,
            "prefix_types": list(OVERLAP_PREFIXES),
            "shards": BLOCK_SHARDS,
            "note": (
                "every row consumes the same columnar payload (wire -> "
                "report); the stream is denser than the overlap suite's "
                "because block ingest amortizes per-event dispatch, the "
                "cost that dominates the high-rate regime it targets. "
                "Result digests must match between the block and "
                "per-event rows (checked at run time and gated)."
            ),
        },
    ),
    "ooo": Suite(
        name="ooo",
        output=REPO_ROOT / "BENCH_PR10.json",
        build_input=_overlap_input,
        scenarios=_ooo_scenarios,
        workload_meta={
            **_overlap_meta(OVERLAP_WINDOW),
            "style": "reorder-buffer-inorder-overhead-and-shuffled-differential",
            "allowed_lateness_seconds": OOO_LATENESS,
            "shards": OOO_SHARDS,
            "note": (
                "all rows must produce the scalar_strict result digest "
                "bit-identically (checked at run time and gated); "
                "inorder_overhead_pct records the buffered pass-through's "
                "wall cost over the strict path on an in-order stream "
                "(block = the hot path, scalar = the per-event constant); "
                "wall ratios are machine-dependent and informational"
            ),
        },
    ),
}


def result_digest(totals: dict[str, float]) -> int:
    """Order-independent exact integer digest of the per-query totals.

    Each ``(query name, float bit pattern)`` pair hashes independently
    (BLAKE2b-64) and the pieces sum mod 2^64, so dict iteration order —
    which hash randomization permutes across processes — cannot move the
    value, while a single-ulp change in any one total changes it
    completely.  The float-sum checksum this replaces wobbled in its last
    bits for exactly that ordering reason (BENCH_PR6 recorded
    ``...774e36`` vs ``...773e36``), forcing a tolerance where the gate
    should be exact.
    """
    digest = 0
    for name, value in totals.items():
        piece = hashlib.blake2b(
            name.encode() + struct.pack("<d", value), digest_size=8
        )
        digest = (digest + int.from_bytes(piece.digest(), "little")) % 2**64
    return digest


def run_scenario(name: str, runner: Callable, workload, events, repeats: int) -> dict:
    best_seconds = float("inf")
    report = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        report = runner(workload, events)
        elapsed = time.perf_counter() - start
        best_seconds = min(best_seconds, elapsed)
    assert report is not None
    checksum = sum(report.totals.values())
    result = {
        "wall_seconds": round(best_seconds, 4),
        "events_per_second": round(len(events) / best_seconds, 1),
        "operations": report.metrics.operations,
        "peak_memory_units": report.metrics.peak_memory_units,
        "partitions": report.metrics.partitions,
        # The float sum stays recorded for the human-readable trajectory;
        # the digest is what the gate compares (exactly).
        "result_checksum": checksum,
        "result_digest": result_digest(report.totals),
    }
    if report.metrics.peak_active_windows:
        result["peak_active_windows"] = report.metrics.peak_active_windows
    if report.metrics.emission_latencies:
        result["avg_emission_latency_ms"] = round(
            report.metrics.average_emission_latency * 1e3, 4
        )
    statistics = report.optimizer_statistics
    if statistics is not None and statistics.decisions:
        # Deterministic for a fixed seed, like the operation counts.
        result["decisions"] = statistics.decisions
        result["shared_fraction"] = round(statistics.shared_fraction, 4)
        result["merges"] = statistics.merges
        result["splits"] = statistics.splits
    print(
        f"  {name:<20} {result['events_per_second']:>10.0f} ev/s  "
        f"{best_seconds:8.3f} s  ops={result['operations']:>10}  "
        f"digest={result['result_digest']:016x}"
    )
    return result


def load_container(suite: Suite) -> dict:
    """Load (or initialize) the suite's output file."""
    if suite.output.exists():
        return json.loads(suite.output.read_text())
    if suite.section is None:
        return {
            "benchmark": f"perf_smoke/{suite.name}",
            "workload": suite.workload_meta,
            "runs": {},
        }
    return {"benchmark": f"perf_smoke/{suite.family}", "suites": {}}


def suite_node(container: dict, suite: Suite) -> dict:
    """The dict holding this suite's runs (the container itself, or a section)."""
    if suite.section is None:
        return container
    sections = container.setdefault("suites", {})
    return sections.setdefault(
        suite.section, {"workload": suite.workload_meta, "runs": {}}
    )


def attach_speedups(results: dict) -> None:
    runs = results["runs"]
    if "before" in runs and "after" in runs:
        speedups = {}
        for name, after in runs["after"].items():
            before = runs["before"].get(name)
            if before and before.get("wall_seconds"):
                speedups[name] = round(before["wall_seconds"] / after["wall_seconds"], 2)
        results["speedup_after_over_before"] = speedups
    # Streaming-vs-batch pairs within each label (the overlap suite).
    for label, rows in runs.items():
        speedups = {}
        for name, row in rows.items():
            if not name.startswith("streaming_"):
                continue
            partner = rows.get("batch_" + name[len("streaming_"):])
            if partner and row.get("wall_seconds"):
                speedups[name[len("streaming_"):]] = round(
                    partner["wall_seconds"] / row["wall_seconds"], 2
                )
        if speedups:
            results.setdefault("speedup_streaming_over_batch", {})[label] = speedups


def attach_sharded_speedups(results: dict) -> None:
    """Record wall-clock speedup of each sharded row over single-process.

    Ratios use best wall-clock on the recording machine; ``cpu_count`` in
    the environment block says how many cores the parallel rows had to
    work with (with one core they measure pure transport overhead).
    """
    for label, rows in results["runs"].items():
        single = rows.get("streaming_single")
        if not single or not single.get("events_per_second"):
            continue
        ratios = {
            name: round(row["events_per_second"] / single["events_per_second"], 2)
            for name, row in rows.items()
            if name.startswith("sharded_") and row.get("events_per_second")
        }
        if ratios:
            results.setdefault("speedup_sharded_over_single", {})[label] = ratios


def attach_adaptive_ratios(results: dict) -> None:
    """Record how the dynamic row compares against the static extremes.

    ``ops_static_over_dynamic`` > 1 means the dynamic optimizer did less
    abstract work than that static plan on the bursty stream; the headline
    claim (Figures 12–13) is that it beats the *worse* extreme while
    staying close to the better one.  Wall-clock speedups are recorded
    alongside for the trajectory but, as everywhere in this harness, only
    ops and checksums are gated.
    """
    for label, rows in results["runs"].items():
        dynamic = rows.get("adaptive_dynamic")
        if not dynamic or not dynamic.get("operations"):
            continue
        ops_ratios = {}
        wall_speedups = {}
        for name in ("static_always_share", "static_never_share", "static_compile_time"):
            static = rows.get(name)
            if not static:
                continue
            ops_ratios[name] = round(static["operations"] / dynamic["operations"], 3)
            if static.get("wall_seconds") and dynamic.get("wall_seconds"):
                wall_speedups[name] = round(
                    static["wall_seconds"] / dynamic["wall_seconds"], 2
                )
        if ops_ratios:
            node = results.setdefault("adaptive_vs_static", {})
            node[label] = {
                "ops_static_over_dynamic": ops_ratios,
                "wall_speedup_dynamic_over_static": wall_speedups,
            }


def attach_transport_ratios(results: dict) -> None:
    """Throughput of the shm rows over their pickle twins (informational).

    Like every wall number in this harness the ratio is machine-dependent;
    ``--gate`` only compares ops and checksums, so a 1-CPU CI box cannot
    flake on it.
    """
    for label, rows in results["runs"].items():
        ratios = {}
        for name, row in rows.items():
            if not name.endswith("_shm"):
                continue
            partner = rows.get(name[: -len("_shm")] + "_pickle")
            if partner and partner.get("events_per_second"):
                ratios[name[: -len("_shm")]] = round(
                    row["events_per_second"] / partner["events_per_second"], 2
                )
        if ratios:
            results.setdefault("speedup_shm_over_pickle", {})[label] = ratios


def attach_block_ratios(results: dict) -> None:
    """Throughput of each block-ingest row over its per-event twin.

    ``speedup_block_over_per_event`` is the PR 9 headline: the single-
    process ratio is the acceptance number, the sharded ratio shows the
    same payoff surviving the routing layer.  As everywhere, the wall
    ratios are machine-dependent and only digests/ops are gated.
    """
    pairs = (
        ("block_ingest", "per_event_ingest"),
        ("sharded_block", "sharded_per_event"),
    )
    for label, rows in results["runs"].items():
        ratios = {}
        for block_name, per_event_name in pairs:
            block_row = rows.get(block_name)
            per_event_row = rows.get(per_event_name)
            if block_row and per_event_row and per_event_row.get("events_per_second"):
                ratios[block_name] = round(
                    block_row["events_per_second"]
                    / per_event_row["events_per_second"],
                    2,
                )
        if ratios:
            results.setdefault("speedup_block_over_per_event", {})[label] = ratios


def attach_ooo_ratios(results: dict) -> None:
    """Record the reorder buffer's wall cost against the strict paths.

    ``inorder_overhead_pct`` is the PR 10 acceptance number, measured on
    the **block ingest** path — the end-to-end hot path since PR 9 —
    where the buffer's work is one sortedness probe and a zero-copy
    segment per block, amortized across its rows.  The scalar pair is
    recorded next to it: per-event buffering pays a constant per event
    (a key compare, a tail append, a watermark check), which is visible
    on a workload this light and is the honest price of scalar ingest
    with a horizon.  Like every wall number in this harness the ratios
    are machine-dependent and recorded, never gated — the gate compares
    digests and ops.
    """
    pairs = (
        ("block", "block_buffered_inorder", "block_strict"),
        ("scalar", "scalar_buffered_inorder", "scalar_strict"),
    )
    for label, rows in results["runs"].items():
        overheads = {}
        for key, buffered_name, strict_name in pairs:
            buffered = rows.get(buffered_name)
            strict = rows.get(strict_name)
            if (
                buffered
                and strict
                and buffered.get("wall_seconds")
                and strict.get("wall_seconds")
            ):
                overheads[key] = round(
                    (buffered["wall_seconds"] / strict["wall_seconds"] - 1.0) * 100,
                    2,
                )
        if overheads:
            results.setdefault("inorder_overhead_pct", {})[label] = overheads
        strict = rows.get("scalar_strict")
        if not strict or not strict.get("wall_seconds"):
            continue
        ratios = {
            name: round(row["wall_seconds"] / strict["wall_seconds"], 3)
            for name, row in rows.items()
            if name != "scalar_strict" and row.get("wall_seconds")
        }
        if ratios:
            results.setdefault("wall_ratio_over_scalar_strict", {})[label] = ratios


def attach_kernel_ratios(results: dict) -> None:
    """Wall speedup of the NumPy fold over the reference (informational)."""
    for label, rows in results["runs"].items():
        python_row = rows.get("streaming_python")
        numpy_row = rows.get("streaming_numpy")
        if python_row and numpy_row and numpy_row.get("wall_seconds"):
            results.setdefault("speedup_numpy_over_python", {})[label] = round(
                python_row["wall_seconds"] / numpy_row["wall_seconds"], 2
            )


def gate(results: dict, current: dict, suite: Suite) -> int:
    """Compare deterministic operation counts against the recorded baseline."""
    baseline = results["runs"].get("after") or results["runs"].get("before")
    if baseline is None:
        print(f"gate[{suite.name}]: no recorded baseline label; nothing to compare against")
        return 1
    failures = []
    for name, row in current.items():
        recorded = baseline.get(name)
        if recorded is None:
            continue
        recorded_digest = recorded.get("result_digest")
        if recorded_digest is not None:
            # The order-independent digest is exact: any value change in
            # any per-query total fails the gate, no tolerance.
            if row["result_digest"] != recorded_digest:
                failures.append(
                    f"{name}: result digest changed "
                    f"({recorded_digest:016x} -> {row['result_digest']:016x})"
                )
        elif not math.isclose(
            row["result_checksum"], recorded["result_checksum"], rel_tol=1e-9
        ):
            # Legacy rows recorded only the float-sum checksum, whose last
            # bits wobble with summation order (hash randomization permutes
            # the frozenset iteration across processes) — tolerance compare.
            failures.append(
                f"{name}: result checksum changed "
                f"({recorded['result_checksum']} -> {row['result_checksum']})"
            )
        ceiling = recorded["operations"] * (1.0 + GATE_TOLERANCE)
        if row["operations"] > ceiling:
            failures.append(
                f"{name}: operations regressed {recorded['operations']} -> "
                f"{row['operations']} (> {GATE_TOLERANCE:.0%} tolerance)"
            )
    if failures:
        for failure in failures:
            print(f"gate[{suite.name}] FAILED: {failure}")
        return 1
    print(f"gate[{suite.name}] OK: operation counts and result digests match")
    return 0


def attach_cross_suite(container: dict) -> None:
    """Record the PR 3 headline ratios inside BENCH_PR3.json.

    * ``speedup_shared_over_pr2`` — shared-window streaming throughput of
      the ``overlap`` section divided by the per-instance streaming rows
      recorded in ``BENCH_PR2.json`` (same fixed-seed input).
    * ``deep_overlap_slowdown`` — ``overlap`` section shared throughput
      divided by the ``deep-overlap`` section's; the overlap factor grows
      4x between the two, so a ratio well below 4 is the near-flat-scaling
      evidence (ratios use best wall-clock, recorded on one machine).
    """
    sections = container.get("suites", {})

    def rows(section: str) -> dict:
        runs = sections.get(section, {}).get("runs", {})
        return runs.get("after") or runs.get("before") or {}

    overlap_rows = rows("overlap")
    pr2_path = REPO_ROOT / "BENCH_PR2.json"
    if overlap_rows and pr2_path.exists():
        pr2_runs = json.loads(pr2_path.read_text()).get("runs", {})
        pr2_rows = pr2_runs.get("after") or pr2_runs.get("before") or {}
        speedups = {}
        for name in ("streaming_hamlet", "streaming_greta"):
            current, recorded = overlap_rows.get(name), pr2_rows.get(name)
            if current and recorded and recorded.get("events_per_second"):
                speedups[name] = round(
                    current["events_per_second"] / recorded["events_per_second"], 2
                )
        if speedups:
            container["speedup_shared_over_pr2"] = speedups
    deep_rows = rows("deep-overlap")
    if overlap_rows and deep_rows:
        slowdowns = {}
        for name in ("streaming_hamlet", "streaming_greta"):
            shallow, deep = overlap_rows.get(name), deep_rows.get(name)
            if shallow and deep and deep.get("events_per_second"):
                slowdowns[name] = round(
                    shallow["events_per_second"] / deep["events_per_second"], 2
                )
        if slowdowns:
            container["deep_overlap_slowdown"] = slowdowns


def run_suite(suite: Suite, args) -> int:
    workload, events = suite.build_input()
    # The gate only reads deterministic op counts and checksums, which are
    # identical across repeats; one execution per scenario suffices.
    repeats = 1 if args.gate else args.repeats
    print(
        f"perf_smoke[{suite.name}]: {len(events)} events, label={args.label!r}, "
        f"repeats={repeats}"
    )
    current = {
        name: run_scenario(name, runner, workload, events, repeats)
        for name, runner in suite.scenarios().items()
    }
    if suite.name == "block":
        # The block path's whole claim is "nothing but speed": a digest
        # drift between the twins is a correctness bug, not a perf result.
        for block_name, per_event_name in (
            ("block_ingest", "per_event_ingest"),
            ("sharded_block", "sharded_per_event"),
        ):
            if (
                current[block_name]["result_digest"]
                != current[per_event_name]["result_digest"]
            ):
                print(
                    f"perf_smoke[block] FAILED: {block_name} digest diverges "
                    f"from {per_event_name}"
                )
                return 1

    if suite.name == "ooo":
        # The buffer's whole claim is determinism: every row — buffered
        # pass-through, shuffled, sharded-shuffled — must land on the
        # strict row's digest exactly, or the reorder path changed results.
        strict_digest = current["scalar_strict"]["result_digest"]
        for name, row in current.items():
            if row["result_digest"] != strict_digest:
                print(
                    f"perf_smoke[ooo] FAILED: {name} digest diverges from "
                    f"scalar_strict"
                )
                return 1

    container = load_container(suite)
    results = suite_node(container, suite)
    if args.gate:
        return gate(results, current, suite)

    results["runs"][args.label] = current
    container.setdefault("environment", {})[args.label] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        # Runtime configuration the rows defaulted to: rows that override
        # either (e.g. *_shm, streaming_numpy) say so in their names.
        "kernel_backend": os.environ.get(KERNEL_BACKEND_ENV) or "python",
        "transport": "pickle",
    }
    attach_speedups(results)
    if suite.name == "sharded":
        attach_sharded_speedups(results)
    if suite.name == "bursty":
        attach_adaptive_ratios(results)
    if suite.name == "transport":
        attach_transport_ratios(results)
    if suite.name == "kernel":
        attach_kernel_ratios(results)
    if suite.name == "ooo":
        attach_ooo_ratios(results)
    if suite.name == "block":
        attach_block_ratios(results)
    if suite.section is not None:
        attach_cross_suite(container)
    suite.output.write_text(json.dumps(container, indent=2, sort_keys=True) + "\n")
    print(f"recorded label {args.label!r} in {suite.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after", help="label to record under (before/after/...)")
    parser.add_argument(
        "--suite",
        choices=[*SUITES, "all"],
        default="all",
        help="which suite to run (default: all)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="repetitions per scenario")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="do not record; fail if deterministic op counts regressed vs the files",
    )
    args = parser.parse_args(argv)

    names = list(SUITES) if args.suite == "all" else [args.suite]
    status = 0
    for name in names:
        status = max(status, run_suite(SUITES[name], args))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
