"""Kill/restart soak for the fault-tolerant sharded runtime.

``python benchmarks/soak.py`` drives minutes-scale synthetic traffic
through the checkpointed, supervised :class:`~repro.runtime.sharding.
ShardedStreamingExecutor` while a killer thread SIGKILLs random live
shard workers at random (seeded) intervals — no cooperation from the
workers, no planted kill points: pure external violence.  After every
round it asserts the soak contract:

* the merged report is **bit-identical** (canonical serialization, see
  :func:`faultline.canonical_report`) to an uninterrupted in-process run
  of the same round's stream;
* at least one restart actually happened across the soak (otherwise the
  run proved nothing);
* the driver's RSS stays under a **flat ceiling**: recovery must not
  accumulate state — the replay buffer is bounded, dead incarnations'
  channels are reclaimed — so memory at the end of the soak looks like
  memory at the start;
* zero leaked ``/dev/shm/repro-ring-*`` segments and zero orphaned
  checkpoint ``*.tmp`` files once everything is torn down.

Time-boxed by ``--seconds`` (default 90): rounds repeat, alternating
randomized kill schedules, until the budget is spent.  ``--transport
both`` splits the budget between the pickle and shm transports.  Exit
status 0 on a fully green soak, 1 on any violation.

This is the *soak tier* (see docs/TESTING.md): too slow for the default
pytest run, wired into CI as its own time-boxed job.
"""

from __future__ import annotations

import argparse
import glob
import os
import random
import signal
import sys
import threading
import time
from typing import Optional, Sequence

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))

from repro.events.event import Event
from repro.query import Query, Window, kleene, seq
from repro.runtime import ShardedStreamingExecutor

from faultline import canonical_report, checkpoint_temp_files

#: Driver-RSS growth allowed over a soak before "flat ceiling" is judged
#: violated.  Generous: Python heaps fragment and arenas are sticky; the
#: failure mode hunted here is *unbounded* growth (a replay buffer or
#: channel leak scales with restart count), which blows through this in
#: any minutes-scale run.
DEFAULT_RSS_CEILING_MIB = 256.0


def _workload(window: Window) -> list[Query]:
    return [
        Query.build(seq("A", kleene("B")), group_by=("g",), window=window, name="skq1"),
        Query.build(seq("C", kleene("B")), group_by=("g",), window=window, name="skq2"),
    ]


def _stream(size: int, seed: int, groups: int) -> list[Event]:
    rng = random.Random(seed)
    events = []
    for index in range(size):
        type_name = rng.choices(("A", "B", "C"), weights=(1, 3, 1))[0]
        events.append(
            Event(type_name, float(index) * 0.25, {"g": float(rng.randint(1, groups))})
        )
    return events


def _rss_mib() -> float:
    """The driver's resident set size, in MiB (Linux /proc)."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return 0.0


class _Killer(threading.Thread):
    """SIGKILL a random live shard worker at random (seeded) intervals."""

    def __init__(
        self, executor: ShardedStreamingExecutor, seed: int, min_gap: float, max_gap: float
    ) -> None:
        super().__init__(name="soak-killer", daemon=True)
        self._executor = executor
        self._rng = random.Random(seed)
        self._min_gap = min_gap
        self._max_gap = max_gap
        # Name avoids threading.Thread's internal _stop attribute.
        self._halt = threading.Event()
        self.kills = 0
        self.peak_rss_mib = _rss_mib()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        while not self._halt.wait(self._rng.uniform(self._min_gap, self._max_gap)):
            self.peak_rss_mib = max(self.peak_rss_mib, _rss_mib())
            processes = list(getattr(self._executor, "_processes", []) or [])
            live = [p for p in processes if p is not None and p.is_alive()]
            if not live:
                continue
            victim = self._rng.choice(live)
            try:
                os.kill(victim.pid, signal.SIGKILL)
                self.kills += 1
            except (ProcessLookupError, TypeError):
                continue
        self.peak_rss_mib = max(self.peak_rss_mib, _rss_mib())


def _soak_transport(
    transport: str,
    *,
    deadline: float,
    workers: int,
    events: int,
    base_seed: int,
    checkpoint_dir: str,
    kill_gap: tuple[float, float],
    verbose: bool,
) -> tuple[int, int, int, float]:
    """Soak one transport until ``deadline``; returns
    (rounds, total kills, total restarts, peak driver RSS MiB)."""
    window = Window(16.0, 4.0)
    rounds = kills = restarts = 0
    peak_rss = _rss_mib()
    failures = 0
    while time.perf_counter() < deadline:
        seed = base_seed + rounds
        stream = _stream(events, seed, groups=8)
        baseline = canonical_report(
            ShardedStreamingExecutor(_workload(window), workers=0, shards=workers).run(
                stream
            )
        )
        executor = ShardedStreamingExecutor(
            _workload(window),
            workers=workers,
            batch_size=64,
            transport=transport,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=4,
            max_restarts=10_000,
        )
        killer = _Killer(executor, seed, *kill_gap)
        killer.start()
        try:
            report = executor.run(stream)
        finally:
            killer.stop()
            killer.join(timeout=5.0)
        rounds += 1
        kills += killer.kills
        round_restarts = report.recovery.restarts if report.recovery else 0
        restarts += round_restarts
        peak_rss = max(peak_rss, killer.peak_rss_mib)
        identical = canonical_report(report) == baseline
        if not identical:
            failures += 1
        if verbose or not identical:
            print(
                f"  [{transport}] round {rounds}: identical={identical} "
                f"kills={killer.kills} restarts={round_restarts} "
                f"replayed={report.recovery.replayed_batches if report.recovery else 0} "
                f"rss={killer.peak_rss_mib:.0f}MiB"
            )
        if not identical:
            raise AssertionError(
                f"soak round {rounds} ({transport}): recovered report is NOT "
                f"bit-identical to the uninterrupted run (seed {seed})"
            )
    return rounds, kills, restarts, peak_rss


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soak",
        description="Randomized kill/restart soak of the fault-tolerant sharded runtime.",
    )
    parser.add_argument(
        "--seconds", type=float, default=90.0, help="total soak budget (default: 90)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="shard worker processes (default: 2)"
    )
    parser.add_argument(
        "--events", type=int, default=4000, help="events per round (default: 4000)"
    )
    parser.add_argument("--seed", type=int, default=7, help="base seed (default: 7)")
    parser.add_argument(
        "--transport",
        choices=("pickle", "shm", "both"),
        default="both",
        help="transport(s) to soak (default: both, splitting the budget)",
    )
    parser.add_argument(
        "--kill-min-gap",
        type=float,
        default=0.2,
        help="minimum seconds between kills (default: 0.2)",
    )
    parser.add_argument(
        "--kill-max-gap",
        type=float,
        default=0.8,
        help="maximum seconds between kills (default: 0.8)",
    )
    parser.add_argument(
        "--rss-ceiling-mib",
        type=float,
        default=DEFAULT_RSS_CEILING_MIB,
        help=f"allowed driver RSS growth (default: {DEFAULT_RSS_CEILING_MIB:.0f})",
    )
    parser.add_argument(
        "--no-memory-check",
        action="store_true",
        help="skip the flat-memory-ceiling assertion",
    )
    parser.add_argument("--verbose", action="store_true", help="print every round")
    arguments = parser.parse_args(argv)
    if arguments.workers < 1:
        parser.error("--workers must be >= 1 (the soak needs processes to kill)")

    import tempfile

    transports = (
        ["pickle", "shm"] if arguments.transport == "both" else [arguments.transport]
    )
    started = time.perf_counter()
    start_rss = _rss_mib()
    budget_each = arguments.seconds / len(transports)
    total_rounds = total_kills = total_restarts = 0
    peak_rss = start_rss
    ok = True
    for transport in transports:
        deadline = time.perf_counter() + budget_each
        with tempfile.TemporaryDirectory(prefix=f"soak-ckpt-{transport}-") as ckpt_dir:
            try:
                rounds, kills, restarts, rss = _soak_transport(
                    transport,
                    deadline=deadline,
                    workers=arguments.workers,
                    events=arguments.events,
                    base_seed=arguments.seed,
                    checkpoint_dir=ckpt_dir,
                    kill_gap=(arguments.kill_min_gap, arguments.kill_max_gap),
                    verbose=arguments.verbose,
                )
            except AssertionError as error:
                print(f"SOAK FAILURE: {error}")
                ok = False
                break
            leaked_tmp = checkpoint_temp_files(ckpt_dir)
            if leaked_tmp:
                print(f"SOAK FAILURE: orphaned checkpoint temp files: {leaked_tmp}")
                ok = False
            total_rounds += rounds
            total_kills += kills
            total_restarts += restarts
            peak_rss = max(peak_rss, rss)
            print(
                f"[{transport}] {rounds} rounds, {kills} kills, "
                f"{restarts} restarts — all bit-identical"
            )
    leaked_shm = sorted(glob.glob("/dev/shm/repro-ring-*"))
    if leaked_shm:
        print(f"SOAK FAILURE: leaked shared-memory segments: {leaked_shm}")
        ok = False
    if total_restarts < 1 and ok:
        print("SOAK FAILURE: no worker restart happened — nothing was proven")
        ok = False
    growth = peak_rss - start_rss
    if not arguments.no_memory_check and growth > arguments.rss_ceiling_mib:
        print(
            f"SOAK FAILURE: driver RSS grew {growth:.0f}MiB "
            f"(ceiling {arguments.rss_ceiling_mib:.0f}MiB) — recovery is leaking"
        )
        ok = False
    elapsed = time.perf_counter() - started
    print(
        f"soak {'PASSED' if ok else 'FAILED'}: {total_rounds} rounds / "
        f"{total_kills} kills / {total_restarts} restarts in {elapsed:.0f}s, "
        f"driver RSS {start_rss:.0f} -> peak {peak_rss:.0f}MiB"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
