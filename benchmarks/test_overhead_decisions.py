"""Section 6.2 in-text claims: the sharing decisions themselves are cheap.

Paper: 400–600 decisions per window cost under 20 ms (< 0.2 % of latency) and
the one-time static workload analysis stays within 81 ms.  Python constants
are larger than the paper's Java implementation, so the bound asserted here
is looser, but the decision overhead must remain a small fraction of the
total engine time and the workload analysis must stay well under a second.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.overhead import measure_overhead


def test_decision_overhead_is_negligible(benchmark):
    report = run_once(
        benchmark,
        lambda: measure_overhead(num_queries=12, events_per_minute=600, duration_seconds=120.0),
    )
    print()
    print(f"decisions={report.decisions}, shared={report.shared_fraction:.0%}, "
          f"decision_time={report.decision_seconds * 1e3:.2f} ms "
          f"({report.decision_fraction:.2%} of engine time), "
          f"analysis={report.workload_analysis_seconds * 1e3:.2f} ms, "
          f"snapshots={report.snapshots_created}")
    assert report.decisions > 0
    assert report.decision_fraction < 0.25
    assert report.workload_analysis_seconds < 1.0
    assert 0.0 <= report.shared_fraction <= 1.0
