"""Figure 10: peak memory of HAMLET versus the state of the art.

Paper's shape: HAMLET, GRETA and MCEP are comparable (they store matched
events), while SHARON needs 2–3 orders of magnitude more memory because every
Kleene query is flattened into one fixed-length query per possible length.
In this reproduction the two-step engine additionally materializes every
constructed trend, which dominates its footprint.
"""

from __future__ import annotations

from conftest import metric_by_approach, print_rows, run_once

from repro.bench.fig10 import figure10_memory_vs_events, figure10_memory_vs_queries

EVENT_VALUES = (100, 150, 200)
QUERY_VALUES = (5, 15, 25)


def test_fig10a_memory_vs_events(benchmark):
    rows = run_once(benchmark, lambda: figure10_memory_vs_events(EVENT_VALUES, num_queries=5))
    print_rows(rows, metrics=["memory_units"])
    for value in EVENT_VALUES:
        memory = metric_by_approach(rows, value, "memory_units")
        assert memory["hamlet"] < memory["sharon-flat"]
        assert memory["hamlet"] <= memory["greta"]


def test_fig10b_memory_vs_queries(benchmark):
    rows = run_once(benchmark, lambda: figure10_memory_vs_queries(QUERY_VALUES, events_per_minute=150))
    print_rows(rows, metrics=["memory_units"])
    for value in QUERY_VALUES:
        memory = metric_by_approach(rows, value, "memory_units")
        assert memory["hamlet"] < memory["sharon-flat"]
        assert memory["hamlet"] <= memory["greta"]
    # GRETA replicates events per query, so its footprint grows with the
    # workload size much faster than HAMLET's.
    small = metric_by_approach(rows, QUERY_VALUES[0], "memory_units")
    large = metric_by_approach(rows, QUERY_VALUES[-1], "memory_units")
    assert (large["greta"] - small["greta"]) > (large["hamlet"] - small["hamlet"])
