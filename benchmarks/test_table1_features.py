"""Table 1: the qualitative feature matrix, derived from the implemented engines."""

from __future__ import annotations

from conftest import run_once

from repro.bench.table1 import format_table1, table1_features


def test_table1_feature_matrix(benchmark):
    features = run_once(benchmark, table1_features)
    by_name = {row.approach: row for row in features}
    print()
    print(format_table1())
    # Only HAMLET combines Kleene closure, online aggregation and dynamic sharing.
    hamlet = by_name["hamlet"]
    assert hamlet.kleene_closure and hamlet.online_aggregation
    assert hamlet.sharing_decisions == "dynamic"
    others = [row for name, row in by_name.items() if name != "hamlet"]
    assert all(
        not (row.kleene_closure and row.online_aggregation and row.sharing_decisions == "dynamic")
        for row in others
    )
