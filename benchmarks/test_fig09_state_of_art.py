"""Figure 9: HAMLET versus MCEP-style, SHARON-style and GRETA baselines.

Paper's shape (ridesharing, low setting so every baseline terminates):
HAMLET beats the two-step MCEP-style engine 7–76x and the SHARON-style
flattening by orders of magnitude; GRETA is the closest competitor because it
is online and Kleene-native, just not shared.
"""

from __future__ import annotations

from conftest import metric_by_approach, print_rows, run_once

from repro.bench.fig9 import figure9_events_sweep, figure9_queries_sweep

EVENT_VALUES = (100, 150, 200)
QUERY_VALUES = (5, 15, 25)
QUERY_SWEEP_RATE = 150


def test_fig9a_latency_vs_events(benchmark):
    rows = run_once(benchmark, lambda: figure9_events_sweep(EVENT_VALUES, num_queries=5))
    print_rows(rows)
    # The two-step baseline must lose at the highest rate (trend construction
    # blows up with the events per window); the online engines stay flat.
    top = metric_by_approach(rows, EVENT_VALUES[-1])
    assert top["hamlet"] < top["mcep-two-step"]
    assert top["hamlet"] < top["sharon-flat"] * 5


def test_fig9b_latency_vs_queries(benchmark):
    rows = run_once(
        benchmark, lambda: figure9_queries_sweep(QUERY_VALUES, events_per_minute=QUERY_SWEEP_RATE)
    )
    print_rows(rows)
    for value in QUERY_VALUES:
        latency = metric_by_approach(rows, value)
        assert latency["hamlet"] < latency["mcep-two-step"]


def test_fig9c_throughput_vs_events(benchmark):
    rows = run_once(benchmark, lambda: figure9_events_sweep(EVENT_VALUES, num_queries=5))
    print_rows(rows, metrics=["throughput_eps"])
    top = metric_by_approach(rows, EVENT_VALUES[-1], "throughput_eps")
    assert top["hamlet"] > top["mcep-two-step"]


def test_fig9d_throughput_vs_queries(benchmark):
    rows = run_once(
        benchmark, lambda: figure9_queries_sweep(QUERY_VALUES, events_per_minute=QUERY_SWEEP_RATE)
    )
    print_rows(rows, metrics=["throughput_eps"])
    for value in QUERY_VALUES:
        throughput = metric_by_approach(rows, value, "throughput_eps")
        assert throughput["hamlet"] > throughput["mcep-two-step"]
        assert throughput["hamlet"] > throughput["sharon-flat"] / 5
