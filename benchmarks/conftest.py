"""Shared helpers for the benchmark targets.

Every benchmark regenerates one figure (or table) of the paper at
laptop scale: it runs the corresponding experiment from :mod:`repro.bench`
exactly once inside ``benchmark.pedantic`` (the experiments are minutes-scale
sweeps, not micro-benchmarks), prints the resulting series, and checks the
qualitative shape the paper reports (who wins, roughly by how much).

Absolute numbers are not expected to match the paper — the substrate here is
a pure-Python simulator, not the authors' Java system on a 16-core server —
but the orderings and trends should hold.  EXPERIMENTS.md records both.
"""

from __future__ import annotations

from typing import Sequence

import pytest

from repro.bench.reporting import ExperimentRow, format_table


def run_once(benchmark, experiment) -> list[ExperimentRow]:
    """Run an experiment callable exactly once under pytest-benchmark."""
    return benchmark.pedantic(experiment, rounds=1, iterations=1)


def metric_by_approach(
    rows: Sequence[ExperimentRow], value: float, metric: str = "latency_seconds"
) -> dict[str, float]:
    """Extract ``approach -> metric`` for one swept-parameter value."""
    result: dict[str, float] = {}
    for row in rows:
        if row.value == value:
            result[row.approach] = getattr(row, metric)
    return result


def print_rows(rows: Sequence[ExperimentRow], metrics: Sequence[str] = ()) -> None:
    """Print the series behind a figure (captured by pytest, shown with -s)."""
    print()
    print(format_table(rows, metrics=metrics))


@pytest.fixture(scope="session")
def benchmark_disabled_warning():  # pragma: no cover - informational only
    return None
