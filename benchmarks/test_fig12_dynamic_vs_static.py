"""Figure 12: dynamic versus static sharing decisions on the stock stream.

Paper's shape: the dynamic optimizer shares roughly 90 % of the bursts,
creates about half as many snapshots as the static always-share plan and
achieves a 21–34 % latency / 27–52 % throughput improvement over it.
"""

from __future__ import annotations

from conftest import print_rows, run_once

from repro.bench.fig12 import figure12_events_sweep, figure12_queries_sweep

EVENT_VALUES = (300, 600, 900)
QUERY_VALUES = (8, 16, 24)


def _by_approach(rows, value):
    return {row.approach: row for row in rows if row.value == value}


def test_fig12ac_latency_throughput_vs_events(benchmark):
    rows = run_once(benchmark, lambda: figure12_events_sweep(EVENT_VALUES, num_queries=12))
    print_rows(rows, metrics=["latency_seconds", "throughput_eps"])
    for value in EVENT_VALUES:
        per_approach = _by_approach(rows, value)
        dynamic = per_approach["hamlet-dynamic"]
        static = per_approach["hamlet-static"]
        # The dynamic optimizer never creates more snapshots than always-share
        # and stays within a tight latency envelope of the better plan.
        assert dynamic.extra["snapshots"] <= static.extra["snapshots"]
        assert dynamic.latency_seconds <= static.latency_seconds * 1.35
        assert 0.0 < dynamic.extra["shared_fraction"] <= 1.0


def test_fig12bd_latency_throughput_vs_queries(benchmark):
    rows = run_once(benchmark, lambda: figure12_queries_sweep(QUERY_VALUES, events_per_minute=600))
    print_rows(rows, metrics=["latency_seconds", "throughput_eps"])
    for value in QUERY_VALUES:
        per_approach = _by_approach(rows, value)
        dynamic = per_approach["hamlet-dynamic"]
        static = per_approach["hamlet-static"]
        assert dynamic.extra["snapshots"] <= static.extra["snapshots"]
        assert dynamic.latency_seconds <= static.latency_seconds * 1.35
