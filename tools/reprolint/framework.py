"""Rule framework: module contexts, suppression parsing, the lint runner.

The framework is deliberately small.  A :class:`Rule` is a class with an
``id``, a one-line ``title``, a ``rationale`` paragraph (printed by
``reprolint --list-rules`` and mirrored in docs/DESIGN.md), a path
``scope``, and a ``check`` method that yields :class:`Violation`\\ s from a
parsed module.  The runner parses each file once, hands the shared
:class:`ModuleContext` to every in-scope rule, and filters findings
through per-line ``# reprolint: disable=RLxxx`` suppressions.

Path scoping is expressed against *package-relative* paths: the runner
normalizes every file path to start at its ``repro`` package directory
when one appears in the path (``src/repro/runtime/sharding.py`` and a
test fixture ``tmp/.../repro/runtime/mod.py`` both normalize to
``repro/runtime/sharding.py``-shaped keys), so rules behave identically
on the shipped tree and on fixtures.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Sequence

__all__ = [
    "LintRunner",
    "ModuleContext",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "normalize_relpath",
]

#: ``# reprolint: disable=RL001`` or ``disable=RL001,RL006`` (spaces allowed).
_SUPPRESSION = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule fired at a location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"


def parse_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    suppressed: dict[int, frozenset[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESSION.search(text)
        if match is not None:
            ids = frozenset(
                part.strip().upper() for part in match.group(1).split(",") if part.strip()
            )
            if ids:
                suppressed[number] = ids
    return suppressed


def normalize_relpath(path: Path, root: Path | None = None) -> str:
    """Normalize ``path`` to the package-relative key rules match against.

    If any path component is ``repro``, the key starts there (the shipped
    tree and test fixtures agree on this shape); otherwise the key is the
    path relative to ``root`` (or the bare file name).
    """
    parts = path.as_posix().split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro") :])
    if root is not None:
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            pass
    return path.name


class ModuleContext:
    """A parsed module plus the helpers rules need to inspect it."""

    __slots__ = ("path", "relpath", "tree", "lines", "suppressions")

    def __init__(self, path: str, relpath: str, tree: ast.Module, lines: Sequence[str]) -> None:
        self.path = path
        self.relpath = relpath
        self.tree = tree
        self.lines = lines
        self.suppressions = parse_suppressions(lines)

    def violation(self, rule: "Rule", node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(rule_id=rule.id, path=self.path, line=line, col=col, message=message)

    def is_suppressed(self, violation: Violation) -> bool:
        ids = self.suppressions.get(violation.line)
        if ids is None:
            return False
        return violation.rule_id in ids or "ALL" in ids


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` entries are matched as prefixes of the normalized relpath
    (``"repro/runtime/"`` scopes a rule to that package); an empty scope
    means every file.  ``exclude`` wins over ``scope``.
    """

    id: ClassVar[str] = "RL000"
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    scope: ClassVar[tuple[str, ...]] = ()
    exclude: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, relpath: str) -> bool:
        if any(relpath == entry or relpath.startswith(entry) for entry in self.exclude):
            return False
        if not self.scope:
            return True
        return any(relpath == entry or relpath.startswith(entry) for entry in self.scope)

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> str:
        return f"{cls.id}  {cls.title}"


# --------------------------------------------------------------------- #
# Shared AST helpers (used by several rules)
# --------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> str | None:
    """Render a Name/Attribute chain as ``"a.b.c"``; None for other shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, if it is a plain name chain."""
    return dotted_name(node.func)


def name_matches(dotted: str | None, pattern: str) -> bool:
    """True if ``dotted``'s trailing segments equal ``pattern``'s segments.

    ``name_matches("datetime.datetime.now", "datetime.now")`` is True;
    ``name_matches("self._clock.now", "datetime.now")`` is False.
    """
    if dotted is None:
        return False
    have = dotted.split(".")
    want = pattern.split(".")
    return len(have) >= len(want) and have[-len(want) :] == want


def attach_parents(tree: ast.Module) -> None:
    """Annotate every node with a ``_reprolint_parent`` backlink."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._reprolint_parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    parent = getattr(node, "_reprolint_parent", None)
    return parent if isinstance(parent, ast.AST) else None


def enclosing_function(node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    current = parent_of(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parent_of(current)
    return None


def enclosing_statement(node: ast.AST) -> ast.stmt | None:
    """The innermost statement containing ``node``."""
    current: ast.AST | None = node
    while current is not None and not isinstance(current, ast.stmt):
        current = parent_of(current)
    return current if isinstance(current, ast.stmt) else None


# --------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------- #
class LintRunner:
    """Parse files once and fan each module out to its in-scope rules."""

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules = list(rules)

    def lint_module(self, source: str, path: str, relpath: str | None = None) -> list[Violation]:
        key = relpath if relpath is not None else normalize_relpath(Path(path))
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            line = error.lineno or 1
            col = (error.offset or 1) - 1
            return [
                Violation(
                    rule_id="RL000",
                    path=path,
                    line=line,
                    col=max(col, 0),
                    message=f"syntax error: {error.msg}",
                )
            ]
        attach_parents(tree)
        module = ModuleContext(path=path, relpath=key, tree=tree, lines=source.splitlines())
        found: list[Violation] = []
        for rule in self.rules:
            if not rule.applies_to(key):
                continue
            for violation in rule.check(module):
                if not module.is_suppressed(violation):
                    found.append(violation)
        found.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return found

    def lint_file(self, path: Path, root: Path | None = None) -> list[Violation]:
        source = path.read_text(encoding="utf-8")
        return self.lint_module(source, str(path), normalize_relpath(path, root))

    def lint_paths(self, paths: Sequence[Path]) -> list[Violation]:
        violations: list[Violation] = []
        for root in paths:
            if root.is_dir():
                for file_path in sorted(root.rglob("*.py")):
                    violations.extend(self.lint_file(file_path, root))
            else:
                violations.extend(self.lint_file(root, root.parent))
        return violations


def _default_runner(rules: Iterable[Rule] | None) -> LintRunner:
    if rules is None:
        from reprolint.rules import ALL_RULES

        rules = [rule_class() for rule_class in ALL_RULES]
    return LintRunner(rules)


def lint_paths(paths: Sequence[str | Path], rules: Iterable[Rule] | None = None) -> list[Violation]:
    """Lint files/directories with the given rules (default: all rules)."""
    return _default_runner(rules).lint_paths([Path(p) for p in paths])


def lint_source(
    source: str,
    relpath: str = "module.py",
    rules: Iterable[Rule] | None = None,
) -> list[Violation]:
    """Lint a source string as if it lived at ``relpath`` (test helper)."""
    return _default_runner(rules).lint_module(source, relpath, relpath)
