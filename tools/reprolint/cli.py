"""Console entry point: ``reprolint [paths...]``.

Exit status: 0 when clean, 1 when violations were found, 2 on usage
errors.  Files that fail to parse are reported as RL000 findings and
count as violations.
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from pathlib import Path
from typing import Sequence

from reprolint.framework import LintRunner
from reprolint.rules import ALL_RULES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant checker for the HAMLET reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    return parser


def _print_rules() -> None:
    for rule_class in ALL_RULES:
        print(rule_class.describe())
        print(textwrap.indent(textwrap.fill(rule_class.rationale, width=76), "    "))
        if rule_class.scope:
            print(f"    scope: {', '.join(rule_class.scope)}")
        print()


def main(argv: Sequence[str] | None = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.list_rules:
        _print_rules()
        return 0

    selected = None
    if arguments.select is not None:
        wanted = {part.strip().upper() for part in arguments.select.split(",") if part.strip()}
        known = {rule_class.id for rule_class in ALL_RULES}
        unknown = wanted - known
        if unknown:
            print(f"reprolint: unknown rule ids: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        selected = wanted

    paths = [Path(entry) for entry in arguments.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"reprolint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    rules = [
        rule_class()
        for rule_class in ALL_RULES
        if selected is None or rule_class.id in selected
    ]
    violations = LintRunner(rules).lint_paths(paths)
    for violation in violations:
        print(violation.render())
    if not arguments.quiet:
        checked = ", ".join(str(path) for path in paths)
        if violations:
            print(f"reprolint: {len(violations)} violation(s) in {checked}")
        else:
            print(f"reprolint: clean ({checked})")
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
