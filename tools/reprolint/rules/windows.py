"""RL002 — integer arithmetic only on window-instance indices.

PR 2's incident: computing window-instance keys as ``k * slide`` floats
made logically-identical instances hash to different dict keys once the
float error crossed an ulp, silently splitting aggregation state.  The
fix routed all instance geometry through the integer helpers on
:class:`repro.query.windows.Window` (``_floor_index``,
``instance_indices_covering``, ``instance_bounds``); this rule keeps
float division over window geometry from creeping back in anywhere else.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from reprolint.framework import ModuleContext, Rule, Violation, call_name

__all__ = ["FloatWindowIndexRule"]

#: Window helpers whose arguments must already be plain timestamps or
#: integer indices — an inline division inside the call re-introduces
#: float index math at the call site.
_INDEX_HELPERS = {
    "instance_indices_covering",
    "instance_bounds",
    "instances_per_event",
    "last_instance_index",
}

#: Attribute / parameter names that denote window geometry.
_GEOMETRY_NAMES = {"slide", "window_slide"}


def _mentions_geometry(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in _GEOMETRY_NAMES:
            return True
        if isinstance(child, ast.Attribute) and child.attr in _GEOMETRY_NAMES:
            return True
    return False


def _contains_true_division(node: ast.expr) -> bool:
    return any(
        isinstance(child, ast.BinOp) and isinstance(child.op, ast.Div)
        for child in ast.walk(node)
    )


class FloatWindowIndexRule(Rule):
    id: ClassVar[str] = "RL002"
    title: ClassVar[str] = "no float arithmetic on window-instance indices"
    rationale: ClassVar[str] = (
        "Window-instance identity is an integer index; true division over "
        "window geometry (slide) produces floats whose rounding splits "
        "instance state across dict keys (PR 2 incident).  All index math "
        "lives in repro.query.windows.Window (snapped _floor_index); call "
        "its helpers with raw timestamps, never with inline divisions."
    )
    scope: ClassVar[tuple[str, ...]] = ("repro/",)
    exclude: ClassVar[tuple[str, ...]] = ("repro/query/windows.py",)

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Div)
                and (_mentions_geometry(node.left) or _mentions_geometry(node.right))
            ):
                yield module.violation(
                    self,
                    node,
                    "true division over window geometry produces float "
                    "indices; use Window._floor_index / the instance_* "
                    "helpers, which snap to integers",
                )
            if isinstance(node, ast.Call):
                callee = call_name(node)
                short = callee.split(".")[-1] if callee else None
                if short in _INDEX_HELPERS:
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        if _contains_true_division(arg):
                            yield module.violation(
                                self,
                                arg,
                                f"argument to {short}() contains a float "
                                "division; pass raw timestamps and let the "
                                "Window helpers do integer index math",
                            )
