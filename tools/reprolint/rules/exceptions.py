"""RL008 — no bare ``except`` / swallowed exceptions in worker loops.

A worker process that swallows an exception turns a crash into a hang:
the driver waits forever on results that will never arrive.  The runtime
discipline is that worker loops catch broadly *once*, ship the formatted
traceback back to the driver, and the driver re-raises it as
:class:`~repro.errors.ExecutionError`.  Narrow, commented best-effort
handlers (``except OSError: pass`` on teardown) remain legal.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from reprolint.framework import (
    ModuleContext,
    Rule,
    Violation,
    dotted_name,
    enclosing_function,
)

__all__ = ["ExceptionDisciplineRule"]

_BROAD = {"Exception", "BaseException"}


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return []
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = []
    for entry in types:
        name = dotted_name(entry)
        if name is not None:
            names.append(name.split(".")[-1])
    return names


def _is_broad(handler: ast.ExceptHandler) -> bool:
    return any(name in _BROAD for name in _caught_names(handler))


def _only_swallows(handler: ast.ExceptHandler) -> bool:
    meaningful = [
        statement
        for statement in handler.body
        if not (isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant))
    ]
    return all(isinstance(statement, (ast.Pass, ast.Continue)) for statement in meaningful)


def _reports_failure(handler: ast.ExceptHandler) -> bool:
    """True if the handler re-raises or ships the traceback to the driver."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted_name(node)
            if name is not None:
                short = name.split(".")[-1]
                if short in {"ExecutionError", "format_exc", "print_exc", "format_exception"}:
                    return True
    return False


class ExceptionDisciplineRule(Rule):
    id: ClassVar[str] = "RL008"
    title: ClassVar[str] = "no bare except / swallowed exceptions in worker loops"
    rationale: ClassVar[str] = (
        "A swallowed exception in a worker turns a crash into a driver "
        "hang.  Bare except is always banned; except Exception with a "
        "pass-only body is banned; and inside *worker* functions a broad "
        "handler must re-raise or ship the traceback (ExecutionError / "
        "traceback.format_exc) back to the driver."
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.violation(
                    self,
                    node,
                    "bare except catches SystemExit/KeyboardInterrupt and "
                    "hides the failure; catch a specific exception type",
                )
                continue
            if not _is_broad(node):
                continue
            if _only_swallows(node):
                yield module.violation(
                    self,
                    node,
                    "broad except with a pass-only body swallows the "
                    "failure; handle it, narrow it, or re-raise",
                )
                continue
            function = enclosing_function(node)
            if (
                function is not None
                and "worker" in function.name.lower()
                and not _reports_failure(node)
            ):
                yield module.violation(
                    self,
                    node,
                    "broad except in a worker loop must re-raise as "
                    "ExecutionError or ship traceback.format_exc() to the "
                    "driver",
                )
