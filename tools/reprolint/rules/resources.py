"""RL004 — every created shared-memory segment is unlink-guarded.

PR 6's incident class: a ``SharedMemory(create=True)`` segment outlives
the interpreter unless some path calls ``unlink()`` — /dev/shm fills up
silently across crashed runs.  The repo's discipline is that the
*creating scope* installs the guard **immediately**: either the very next
statement registers a ``weakref.finalize`` cleanup, or the creation sits
inside a ``try`` whose ``finally`` unlinks.  "Immediately" matters — an
exception thrown by any statement between creation and guard leaks the
segment (the original bug was a ``Pipe()`` constructor sitting in that
gap).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from reprolint.framework import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    enclosing_statement,
    parent_of,
)

__all__ = ["SharedMemoryUnlinkRule"]


def _is_create_call(node: ast.Call) -> bool:
    callee = call_name(node)
    if callee is None or callee.split(".")[-1] != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _contains_finalize(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            callee = call_name(child)
            if callee is not None and callee.split(".")[-1] == "finalize":
                return True
    return False


def _contains_unlink(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            callee = call_name(child)
            if callee is not None and "unlink" in callee.split(".")[-1].lower():
                return True
    return False


def _guarded_by_try_finally(statement: ast.stmt) -> bool:
    current = parent_of(statement)
    while current is not None:
        if isinstance(current, ast.Try) and any(
            _contains_unlink(final) for final in current.finalbody
        ):
            return True
        current = parent_of(current)
    return False


def _next_statement_guards(statement: ast.stmt) -> bool:
    parent = parent_of(statement)
    if parent is None:
        return False
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(parent, field_name, None)
        if isinstance(block, list) and statement in block:
            index = block.index(statement)
            if index + 1 < len(block):
                return _contains_finalize(block[index + 1])
            return False
    return False


class SharedMemoryUnlinkRule(Rule):
    id: ClassVar[str] = "RL004"
    title: ClassVar[str] = "SharedMemory(create=True) needs an immediate unlink guard"
    rationale: ClassVar[str] = (
        "A created shared-memory segment persists in /dev/shm until "
        "unlink(); crashes between creation and cleanup registration leak "
        "it (PR 6 incident).  Register a weakref.finalize guard in the very "
        "next statement, or create inside a try whose finally unlinks — "
        "nothing that can raise may sit between creation and guard."
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_create_call(node)):
                continue
            statement = enclosing_statement(node)
            if statement is None:
                continue
            if _contains_finalize(statement):
                continue  # guard registered in the creating statement itself
            if _guarded_by_try_finally(statement) or _next_statement_guards(statement):
                continue
            yield module.violation(
                self,
                node,
                "SharedMemory(create=True) without an immediate unlink "
                "guard; register weakref.finalize in the next statement or "
                "wrap in try/finally that unlinks",
            )
